"""Training loop with validation-driven early stopping.

Matches the protocol of the paper's pipeline: Adam, gradient clipping,
evaluate NDCG@10 on the validation split each epoch, stop after ``patience``
epochs without improvement, restore the best checkpoint.

The loop is fully instrumented through :mod:`repro.obs` — nested spans
around the fit / epoch / train-pass / eval-pass / step stages, per-epoch
``epoch`` events, and a :class:`~repro.obs.health.TrainerCallback` protocol
for training-health monitors (loss-component tracking, gradient norms,
NaN watchdog).  All of it is zero-cost when telemetry is disabled and no
callbacks are attached.  When a checkpoint path is configured, a JSON run
manifest (config, seed, git SHA, final metrics) is written next to the
checkpoint at the end of ``fit``.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import asdict, dataclass
from typing import Sequence

import numpy as np

from repro.data.pipeline import PrefetchLoader, fork_available
from repro.data.sampling import NegativeSampler
from repro.data.splits import DataSplit
from repro.eval.evaluator import EvalShardPool, evaluate_ranking, precollate
from repro.eval.protocol import CandidateSets
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.schedule import ConstantLR, StepDecay, WarmupCosine
from repro.obs import get_logger, get_telemetry, span

from .ddp import DataParallelEngine
from .history import EpochRecord, History

__all__ = ["TrainConfig", "Trainer"]


@dataclass(frozen=True)
class TrainConfig:
    """Optimization hyper-parameters (model hyper-parameters live elsewhere)."""

    epochs: int = 30
    batch_size: int = 128
    learning_rate: float = 3e-3
    weight_decay: float = 0.0
    clip_norm: float = 5.0
    patience: int = 5
    monitor: str = "NDCG@10"
    num_eval_negatives: int = 99
    seed: int = 0
    num_workers: int = 0
    """Input-pipeline worker processes (0 = in-process assembly; any value
    yields a bitwise-identical batch stream for a fixed seed)."""
    prefetch: int = 2
    """Batches kept in flight per worker (bounded prefetch depth)."""
    data_parallel: bool = False
    """Shard each optimizer step's forward/backward across ``num_workers``
    replicas with a fixed-order gradient allreduce (see
    :mod:`repro.train.ddp`).  Off by default: the sharded loss decomposes
    batch-coupled SSL terms into micro-batches, so it is a different (still
    deterministic) training trajectory than the serial path."""
    grad_shards: int = 4
    """Micro-batches per optimizer step under ``data_parallel``.  Fixes the
    gradient reduction order — results are bitwise-identical across any
    ``num_workers`` for the same ``grad_shards``."""
    worker_timeout: float | None = None
    """Heartbeat timeout (seconds) for loader / data-parallel / eval worker
    pools; ``None`` defers to ``REPRO_POOL_TIMEOUT`` (default 120)."""
    checkpoint_path: str | None = None
    """When set, the best-so-far model is also written to this .npz path
    (plus a ``<path>.manifest.json`` run manifest at the end of fit)."""
    lr_schedule: str = "constant"
    """Per-epoch LR schedule: "constant", "warmup_cosine", or "step"."""
    warmup_epochs: int = 2
    """Warmup length for the warmup_cosine schedule."""
    step_size: int = 10
    step_gamma: float = 0.5
    """Decay interval/factor for the step schedule."""

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("need at least one epoch")
        if self.patience < 1:
            raise ValueError("patience must be positive")
        if self.lr_schedule not in ("constant", "warmup_cosine", "step"):
            raise ValueError(f"unknown lr_schedule {self.lr_schedule!r}")
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if self.prefetch < 1:
            raise ValueError("prefetch depth must be >= 1")
        if self.grad_shards < 1:
            raise ValueError("grad_shards must be >= 1")
        if self.worker_timeout is not None and self.worker_timeout <= 0:
            raise ValueError("worker_timeout must be positive")


class Trainer:
    """Fits any :class:`~repro.core.base.SequentialRecommender` on a split.

    Args:
        model: the recommender to fit.
        split: train/valid/test split (validation drives early stopping).
        config: optimization hyper-parameters.
        callbacks: :class:`~repro.obs.health.TrainerCallback` observers
            invoked through the loop (health monitors, custom telemetry).
    """

    def __init__(self, model, split: DataSplit, config: TrainConfig | None = None,
                 callbacks: Sequence = ()):
        self.model = model
        self.split = split
        self.config = config or TrainConfig()
        self.callbacks = list(callbacks)
        self.dataset = split.dataset
        self.sampler = NegativeSampler(self.dataset, np.random.default_rng(self.config.seed + 1))
        # Clamp the negative count so tiny corpora remain evaluable.
        num_negatives = self.config.num_eval_negatives
        if self.dataset.users:
            max_profile = max(len(self.dataset.items_of_user(u))
                              for u in self.dataset.users)
            num_negatives = min(num_negatives,
                                max(1, self.dataset.num_items - max_profile - 1))
        self.valid_candidates = CandidateSets(
            self.dataset, split.valid, num_negatives, seed=self.config.seed + 2,
        )
        # Validation examples and candidates never change between epochs, so
        # the collated evaluation batches are built once (lazily) and reused
        # by every per-epoch ranking pass.
        self._valid_batches: list[tuple] | None = None

    def _validation_batches(self) -> list[tuple]:
        if self._valid_batches is None:
            self._valid_batches = precollate(self.split.valid, self.valid_candidates,
                                             self.dataset.schema,
                                             num_workers=self.config.num_workers)
        return self._valid_batches

    def _train_negatives(self) -> int:
        """Negatives per row the model's ``training_loss`` will request.

        Used to presample candidates on the input pipeline (``Batch.
        candidates``); models expose the count either as a config field
        (``num_train_negatives``) or as the ``num_negatives`` default of
        ``training_loss``.  Returns 0 (no presampling) when undiscoverable.
        """
        model_config = getattr(self.model, "config", None)
        count = getattr(model_config, "num_train_negatives", None)
        if count is None:
            try:
                parameters = inspect.signature(self.model.training_loss).parameters
            except (TypeError, ValueError):
                return 0
            default = parameters.get("num_negatives")
            if default is None or not isinstance(default.default, int):
                return 0
            count = default.default
        return max(int(count), 0)

    def _supports_breakdown(self) -> bool:
        """Whether ``model.training_loss`` can return a per-component split."""
        try:
            parameters = inspect.signature(self.model.training_loss).parameters
        except (TypeError, ValueError):  # builtins / odd callables
            return False
        return "return_breakdown" in parameters

    def _dispatch(self, hook: str, *args) -> None:
        for callback in self.callbacks:
            getattr(callback, hook)(self, *args)

    def _train_epoch(self, epoch: int, loader, optimizer,
                     want_breakdown: bool) -> list[float]:
        """One pass over the training loader; returns per-batch losses."""
        losses = []
        for step, batch in enumerate(loader):
            with span("train.step", epoch=epoch, step=step):
                self._dispatch("on_batch_start", epoch, step)
                optimizer.zero_grad()
                if want_breakdown:
                    loss, breakdown = self.model.training_loss(
                        batch, self.sampler, return_breakdown=True)
                else:
                    loss, breakdown = self.model.training_loss(batch, self.sampler), None
                loss.backward()
                clip_grad_norm(self.model.parameters(), self.config.clip_norm)
                optimizer.step()
                value = float(loss.data)
                losses.append(value)
                if self.callbacks:
                    self._dispatch("on_batch_end", epoch, step, value,
                                   breakdown if breakdown is not None
                                   else {"total": value})
        return losses

    def _train_epoch_ddp(self, epoch: int, engine: DataParallelEngine,
                         optimizer) -> list[float]:
        """One data-parallel pass: the engine produces each step's combined
        gradient; clipping, the optimizer step, and every callback hook run
        here on the parent, exactly as in the serial loop."""
        losses = []
        for step, rows in enumerate(engine.epoch_chunks(epoch)):
            with span("train.step", epoch=epoch, step=step):
                self._dispatch("on_batch_start", epoch, step)
                value, breakdown = engine.step(epoch, step, rows)
                clip_grad_norm(self.model.parameters(), self.config.clip_norm)
                optimizer.step()
                losses.append(value)
                if self.callbacks:
                    self._dispatch("on_batch_end", epoch, step, value,
                                   breakdown if breakdown is not None
                                   else {"total": value})
        return losses

    def fit(self, verbose: bool = False) -> History:
        """Train with early stopping; the model ends at its best checkpoint."""
        config = self.config
        logger = get_logger("repro.train")
        optimizer = Adam(self.model.parameters(), lr=config.learning_rate,
                         weight_decay=config.weight_decay)
        if config.lr_schedule == "warmup_cosine":
            schedule = WarmupCosine(optimizer, warmup_steps=config.warmup_epochs,
                                    total_steps=max(config.epochs, config.warmup_epochs + 1))
        elif config.lr_schedule == "step":
            schedule = StepDecay(optimizer, step_size=config.step_size,
                                 gamma=config.step_gamma)
        else:
            schedule = ConstantLR(optimizer)
        # The breakdown dict is assembled inside training_loss either way,
        # so requesting it costs nothing — but only bother when someone
        # (callbacks or telemetry) will consume it.
        want_breakdown = ((bool(self.callbacks) or get_telemetry() is not None)
                          and self._supports_breakdown())
        loader: PrefetchLoader | None = None
        engine: DataParallelEngine | None = None
        self.ddp_engine = None
        if config.data_parallel:
            # Sharded forward/backward: the engine assembles each shard's
            # micro-batch from the packed split directly (workers inherit it
            # by reference), so no loader is needed.
            from repro.data.pipeline import PackedExamples
            engine = DataParallelEngine(
                self.model, self.sampler,
                PackedExamples.from_examples(self.split.train, self.dataset.schema),
                config.batch_size, negatives=self._train_negatives(),
                seed=config.seed, grad_shards=config.grad_shards,
                num_workers=config.num_workers,
                want_breakdown=want_breakdown, timeout=config.worker_timeout)
            # Exposed so health callbacks can name the shard/worker behind a
            # bad gradient (engine.last_shard_health) during on_batch_end.
            self.ddp_engine = engine
        else:
            # Prefetching loader: batch assembly + negative presampling run
            # off the main process when num_workers > 0, and the stream is
            # seeded so every worker count produces identical batches.
            loader = PrefetchLoader(
                self.split.train, self.dataset.schema, config.batch_size,
                seed=config.seed, num_workers=config.num_workers,
                prefetch=config.prefetch, negatives=self._train_negatives(),
                dataset=self.dataset, timeout=config.worker_timeout)
        # Per-epoch validation reuses one long-lived sharded ranking pool
        # (parameters resynchronized through shared memory each pass) —
        # forking a fresh pool per epoch is what made sharded evaluation
        # lose to serial.
        eval_pool: EvalShardPool | None = None
        if (config.num_workers > 0 and fork_available()
                and len(self._validation_batches()) > 1):
            eval_pool = EvalShardPool(self.model, self._validation_batches(),
                                      num_workers=config.num_workers,
                                      timeout=config.worker_timeout)
        history = History()
        best_state = None
        epochs_since_best = 0
        self._dispatch("on_fit_start")
        try:
            with span("train.fit", model=type(self.model).__name__,
                      epochs=config.epochs, batch_size=config.batch_size):
                for epoch in range(config.epochs):
                    with span("train.epoch", epoch=epoch) as epoch_span:
                        self._dispatch("on_epoch_start", epoch)
                        train_start = time.perf_counter()
                        schedule.step()
                        self.model.train()
                        with span("train.train_pass", epoch=epoch):
                            if engine is not None:
                                losses = self._train_epoch_ddp(epoch, engine,
                                                               optimizer)
                            else:
                                losses = self._train_epoch(epoch, loader, optimizer,
                                                           want_breakdown)
                        eval_start = time.perf_counter()
                        self.model.eval()
                        with span("train.eval_pass", epoch=epoch):
                            if eval_pool is not None:
                                metrics = eval_pool.evaluate()
                            else:
                                metrics = evaluate_ranking(
                                    self.model, self.split.valid, self.valid_candidates,
                                    self.dataset.schema,
                                    precollated=self._validation_batches())
                        now = time.perf_counter()
                        train_seconds = eval_start - train_start
                        eval_seconds = now - eval_start
                        record = EpochRecord(
                            epoch=epoch,
                            train_loss=float(np.mean(losses)) if losses else float("nan"),
                            valid_metrics=dict(metrics),
                            seconds=now - train_start,
                            learning_rate=optimizer.lr,
                            train_seconds=train_seconds,
                            eval_seconds=eval_seconds,
                        )
                        history.append(record)
                        self._dispatch("on_epoch_end", record)
                        epoch_span.set(train_loss=record.train_loss,
                                       monitored=metrics.get(config.monitor, 0.0))
                        telemetry = get_telemetry()
                        if telemetry is not None:
                            telemetry.emit(
                                "epoch", epoch=epoch, train_loss=record.train_loss,
                                train_seconds=train_seconds, eval_seconds=eval_seconds,
                                learning_rate=optimizer.lr,
                                monitored=metrics.get(config.monitor, 0.0),
                                metrics=dict(metrics))
                        if verbose:
                            logger.info(
                                "[epoch %02d] loss=%.4f %s (train %.1fs, eval %.1fs)",
                                epoch, record.train_loss, metrics,
                                train_seconds, eval_seconds)
                        monitored = metrics.get(config.monitor, 0.0)
                        if monitored > history.best_metric:
                            history.best_metric = monitored
                            history.best_epoch = epoch
                            best_state = self.model.state_dict()
                            if config.checkpoint_path is not None:
                                from repro.nn.serialization import save_checkpoint
                                save_checkpoint(self.model, config.checkpoint_path,
                                                extra={"epoch": epoch, config.monitor: monitored})
                            epochs_since_best = 0
                        else:
                            epochs_since_best += 1
                            if epochs_since_best >= config.patience:
                                history.stopped_early = True
                                break
        finally:
            if loader is not None:
                loader.close()
            if engine is not None:
                engine.close()
            self.ddp_engine = None
            if eval_pool is not None:
                eval_pool.close()
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        self._dispatch("on_fit_end", history)
        if config.checkpoint_path is not None:
            self._write_manifest(history)
        return history

    def _write_manifest(self, history: History) -> None:
        """Run manifest (config, seed, git SHA, final metrics) next to the
        checkpoint — written best-effort; training never fails on it."""
        from pathlib import Path

        from repro.obs import write_run_manifest

        checkpoint = Path(self.config.checkpoint_path)
        if checkpoint.suffix != ".npz":
            checkpoint = checkpoint.with_suffix(".npz")
        best = (history.records[history.best_epoch].valid_metrics
                if 0 <= history.best_epoch < len(history.records) else {})
        try:
            write_run_manifest(
                checkpoint.with_name(checkpoint.name + ".manifest.json"),
                config=asdict(self.config),
                seed=self.config.seed,
                metrics={"best_epoch": history.best_epoch,
                         "best_metric": history.best_metric,
                         "monitor": self.config.monitor,
                         "valid": best},
                extra={"model": type(self.model).__name__,
                       "epochs_run": history.num_epochs,
                       "stopped_early": history.stopped_early,
                       "train_seconds": history.total_train_seconds(),
                       "eval_seconds": history.total_eval_seconds()},
            )
        except OSError:
            get_logger("repro.train").warning(
                "could not write run manifest next to %s", checkpoint)
