"""Training loop with validation-driven early stopping.

Matches the protocol of the paper's pipeline: Adam, gradient clipping,
evaluate NDCG@10 on the validation split each epoch, stop after ``patience``
epochs without improvement, restore the best checkpoint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.data.batching import BatchLoader
from repro.data.sampling import NegativeSampler
from repro.data.splits import DataSplit
from repro.eval.evaluator import evaluate_ranking, precollate
from repro.eval.protocol import CandidateSets
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.schedule import ConstantLR, StepDecay, WarmupCosine

from .history import EpochRecord, History

__all__ = ["TrainConfig", "Trainer"]


@dataclass(frozen=True)
class TrainConfig:
    """Optimization hyper-parameters (model hyper-parameters live elsewhere)."""

    epochs: int = 30
    batch_size: int = 128
    learning_rate: float = 3e-3
    weight_decay: float = 0.0
    clip_norm: float = 5.0
    patience: int = 5
    monitor: str = "NDCG@10"
    num_eval_negatives: int = 99
    seed: int = 0
    checkpoint_path: str | None = None
    """When set, the best-so-far model is also written to this .npz path."""
    lr_schedule: str = "constant"
    """Per-epoch LR schedule: "constant", "warmup_cosine", or "step"."""
    warmup_epochs: int = 2
    """Warmup length for the warmup_cosine schedule."""
    step_size: int = 10
    step_gamma: float = 0.5
    """Decay interval/factor for the step schedule."""

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("need at least one epoch")
        if self.patience < 1:
            raise ValueError("patience must be positive")
        if self.lr_schedule not in ("constant", "warmup_cosine", "step"):
            raise ValueError(f"unknown lr_schedule {self.lr_schedule!r}")


class Trainer:
    """Fits any :class:`~repro.core.base.SequentialRecommender` on a split."""

    def __init__(self, model, split: DataSplit, config: TrainConfig | None = None):
        self.model = model
        self.split = split
        self.config = config or TrainConfig()
        self.dataset = split.dataset
        rng = np.random.default_rng(self.config.seed)
        self._loader_rng = rng
        self.sampler = NegativeSampler(self.dataset, np.random.default_rng(self.config.seed + 1))
        # Clamp the negative count so tiny corpora remain evaluable.
        num_negatives = self.config.num_eval_negatives
        if self.dataset.users:
            max_profile = max(len(self.dataset.items_of_user(u))
                              for u in self.dataset.users)
            num_negatives = min(num_negatives,
                                max(1, self.dataset.num_items - max_profile - 1))
        self.valid_candidates = CandidateSets(
            self.dataset, split.valid, num_negatives, seed=self.config.seed + 2,
        )
        # Validation examples and candidates never change between epochs, so
        # the collated evaluation batches are built once (lazily) and reused
        # by every per-epoch ranking pass.
        self._valid_batches: list[tuple] | None = None

    def _validation_batches(self) -> list[tuple]:
        if self._valid_batches is None:
            self._valid_batches = precollate(self.split.valid, self.valid_candidates,
                                             self.dataset.schema)
        return self._valid_batches

    def fit(self, verbose: bool = False) -> History:
        """Train with early stopping; the model ends at its best checkpoint."""
        config = self.config
        optimizer = Adam(self.model.parameters(), lr=config.learning_rate,
                         weight_decay=config.weight_decay)
        if config.lr_schedule == "warmup_cosine":
            schedule = WarmupCosine(optimizer, warmup_steps=config.warmup_epochs,
                                    total_steps=max(config.epochs, config.warmup_epochs + 1))
        elif config.lr_schedule == "step":
            schedule = StepDecay(optimizer, step_size=config.step_size,
                                 gamma=config.step_gamma)
        else:
            schedule = ConstantLR(optimizer)
        loader = BatchLoader(self.split.train, self.dataset.schema, config.batch_size,
                             rng=self._loader_rng)
        history = History()
        best_state = None
        epochs_since_best = 0
        for epoch in range(config.epochs):
            start = time.perf_counter()
            schedule.step()
            self.model.train()
            losses = []
            for batch in loader:
                optimizer.zero_grad()
                loss = self.model.training_loss(batch, self.sampler)
                loss.backward()
                clip_grad_norm(self.model.parameters(), config.clip_norm)
                optimizer.step()
                losses.append(float(loss.data))
            metrics = evaluate_ranking(self.model, self.split.valid, self.valid_candidates,
                                       self.dataset.schema,
                                       precollated=self._validation_batches())
            record = EpochRecord(
                epoch=epoch,
                train_loss=float(np.mean(losses)) if losses else float("nan"),
                valid_metrics=dict(metrics),
                seconds=time.perf_counter() - start,
                learning_rate=optimizer.lr,
            )
            history.append(record)
            if verbose:
                print(f"[epoch {epoch:02d}] loss={record.train_loss:.4f} {metrics}")
            monitored = metrics.get(config.monitor, 0.0)
            if monitored > history.best_metric:
                history.best_metric = monitored
                history.best_epoch = epoch
                best_state = self.model.state_dict()
                if config.checkpoint_path is not None:
                    from repro.nn.serialization import save_checkpoint
                    save_checkpoint(self.model, config.checkpoint_path,
                                    extra={"epoch": epoch, config.monitor: monitored})
                epochs_since_best = 0
            else:
                epochs_since_best += 1
                if epochs_since_best >= config.patience:
                    history.stopped_early = True
                    break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return history
