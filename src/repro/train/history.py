"""Training history: per-epoch records of losses, metrics and timing."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EpochRecord", "History"]


@dataclass
class EpochRecord:
    """One epoch's summary.

    ``seconds`` is the epoch's total wall clock (optimization + validation);
    ``train_seconds`` / ``eval_seconds`` split it so efficiency numbers
    (e.g. the T4 benchmark's s/epoch) can exclude validation time.
    """

    epoch: int
    train_loss: float
    valid_metrics: dict[str, float] = field(default_factory=dict)
    seconds: float = 0.0
    learning_rate: float = 0.0
    train_seconds: float = 0.0
    eval_seconds: float = 0.0


@dataclass
class History:
    """Sequence of epoch records plus the early-stopping outcome."""

    records: list[EpochRecord] = field(default_factory=list)
    best_epoch: int = -1
    best_metric: float = -float("inf")
    stopped_early: bool = False

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    @property
    def num_epochs(self) -> int:
        return len(self.records)

    def train_losses(self) -> list[float]:
        return [r.train_loss for r in self.records]

    def metric_curve(self, name: str) -> list[float]:
        return [r.valid_metrics.get(name, float("nan")) for r in self.records]

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def total_train_seconds(self) -> float:
        """Wall clock spent optimizing (validation passes excluded)."""
        return sum(r.train_seconds for r in self.records)

    def total_eval_seconds(self) -> float:
        """Wall clock spent in per-epoch validation ranking passes."""
        return sum(r.eval_seconds for r in self.records)
