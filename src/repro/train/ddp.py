"""Data-parallel training: sharded forward/backward with a flat allreduce.

One optimizer step is decomposed into ``grad_shards`` micro-batches.  Each
shard runs a full forward/backward on a replica of the model (a forked
worker process, or the parent itself in the in-process reference mode),
its gradient is flattened into one vector
(:func:`repro.nn.optim.gather_flat_gradients`) and shipped back through a
shared-memory arena, and the parent reduces the shard gradients in **fixed
shard order** with weights ``n_s / n`` before a single optimizer step on
the combined gradient — so clipping, Adam state, and every
:class:`~repro.obs.health.TrainerCallback` hook see exactly one gradient
per step, same as serial training.

Determinism guarantee: the shard decomposition is a pure function of
``(seed, epoch, step, grad_shards)`` — never of the worker count — and
every stochastic surface (dropout generators, augmentation generator, the
negative sampler) is reseeded per ``(seed, epoch, step, shard)`` before a
shard's forward (:func:`reseed_stochastic`).  Worker replicas are
refreshed from a version-stamped
:class:`~repro.data.shm.ShmParamMirror` the parent publishes before each
step, so shard ``s`` of step ``t`` computes bitwise the same gradient in a
worker as it would in-process; the fixed-order reduction then makes
``fit`` with any ``num_workers`` (including 0) produce bitwise-identical
parameters for a fixed ``grad_shards``.

Semantics note: batch-coupled loss terms (the SSL contrastive objectives
contrast rows *within* a shard) see micro-batches rather than the full
batch — the standard data-parallel trade, equivalent to training with
``batch_size / grad_shards`` contrast groups.  The single-process legacy
path in :class:`~repro.train.trainer.Trainer` is untouched and remains the
default (``data_parallel=False``).

Telemetry: ``ddp.steps`` / ``ddp.shards`` counters, a ``ddp.sync_seconds``
histogram of publish+reduce overhead, and a ``ddp.grad_bytes`` counter of
gradient traffic, all in the session registry (zero-cost when disabled).
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.data.pipeline import (PackedExamples, WorkerPool, epoch_order,
                                 fork_available)
from repro.data.sampling import NegativeSampler
from repro.data.shm import ShmArena, ShmParamMirror
from repro.nn.optim import assign_flat_gradients, gather_flat_gradients
from repro.obs import get_logger, get_telemetry

__all__ = ["DataParallelEngine", "discover_generators", "reseed_stochastic",
           "shard_rows"]

_log = get_logger(__name__)

_MASK32 = 0xFFFFFFFF
_SAMPLING_SALT = 0x5EED  # keeps candidate draws off the module generators


def discover_generators(model, sampler: NegativeSampler | None = None) -> list:
    """Every ``np.random.Generator`` reachable from the model (plus sampler).

    Traverses ``model.modules()`` in registration order and scans each
    module's attributes in insertion order, de-duplicating shared generator
    objects — the result is a deterministic list identical across forked
    replicas, so index ``i`` names the same stream in every process.
    """
    seen: set[int] = set()
    generators = []
    for module in model.modules():
        for value in vars(module).values():
            if isinstance(value, np.random.Generator) and id(value) not in seen:
                seen.add(id(value))
                generators.append(value)
    rng = getattr(sampler, "rng", None)
    if isinstance(rng, np.random.Generator) and id(rng) not in seen:
        generators.append(rng)
    return generators


def _shard_sequence(seed: int, epoch: int, step: int, shard: int,
                    salt: int) -> np.random.SeedSequence:
    return np.random.SeedSequence((seed & _MASK32, epoch & _MASK32,
                                   step & _MASK32, shard & _MASK32,
                                   salt & _MASK32))


def reseed_stochastic(generators: Sequence, seed: int, epoch: int, step: int,
                      shard: int) -> None:
    """Reset every generator's stream to a pure function of the shard key.

    The generators are *shared object references* (one dropout generator
    threads through many layers), so the state is replaced **in place** —
    every module holding the reference sees the fresh stream.  Generator
    ``i`` draws from ``SeedSequence((seed, epoch, step, shard, i))``, making
    a shard's stochastic forward identical no matter which process runs it.
    """
    for index, generator in enumerate(generators):
        sequence = _shard_sequence(seed, epoch, step, shard, index)
        fresh = type(generator.bit_generator)(sequence)
        generator.bit_generator.state = fresh.state


def shard_rows(rows: np.ndarray, grad_shards: int) -> list[np.ndarray]:
    """Split one batch's example rows into contiguous micro-batch shards.

    Pure function of ``(rows, grad_shards)``: empty tails are dropped, so a
    8-row batch at 4 shards yields 4×2 rows and a 3-row batch yields 3×1.
    """
    splits = np.array_split(np.asarray(rows, dtype=np.int64),
                            min(grad_shards, len(rows)))
    return [split for split in splits if split.size]


def _shard_step(model, sampler: NegativeSampler | None, packed: PackedExamples,
                negatives: int, max_len: int | None, generators: Sequence,
                seed: int, epoch: int, step: int, shard: int,
                rows: np.ndarray, want_breakdown: bool):
    """Forward/backward one shard; returns ``(loss, breakdown, n, flat_grad)``.

    The single shared recipe: the in-process mode and every worker run
    exactly this function, with all randomness pinned by
    :func:`reseed_stochastic` and the shard-keyed candidate generator —
    which is what makes the gradient independent of where it is computed.
    """
    reseed_stochastic(generators, seed, epoch, step, shard)
    batch = packed.collate_rows(rows, max_len)
    if negatives and sampler is not None:
        rng = np.random.default_rng(
            _shard_sequence(seed, epoch, step, shard, _SAMPLING_SALT))
        negs = sampler.sample_matrix(batch.users, batch.targets, negatives,
                                     rng=rng)
        batch.candidates = np.concatenate([batch.targets[:, None], negs], axis=1)
    model.zero_grad()
    if want_breakdown:
        loss, breakdown = model.training_loss(batch, sampler,
                                              return_breakdown=True)
        breakdown = dict(breakdown)
    else:
        loss, breakdown = model.training_loss(batch, sampler), None
    loss.backward()
    flat = gather_flat_gradients(model.parameters())
    return float(loss.data), breakdown, int(rows.size), flat


def _ddp_worker(model, sampler: NegativeSampler | None, packed: PackedExamples,
                negatives: int, max_len: int | None, seed: int,
                mirror: ShmParamMirror, want_breakdown: bool) -> Callable:
    """Worker factory: bind the forked replica, serve shard tasks.

    Before each task the replica's parameters are refreshed from the mirror
    when the parent has published a newer version (one version check per
    task, one flat copy per optimizer step).
    """
    model.train()
    buffer = np.empty(mirror.count, dtype=mirror.dtype)
    generators = discover_generators(model, sampler)

    def run(task):
        epoch, step, shard, rows = task
        if mirror.refresh(buffer):
            model.load_parameter_vector(buffer)
        return _shard_step(model, sampler, packed, negatives, max_len,
                           generators, seed, epoch, step, shard, rows,
                           want_breakdown)
    return run


class DataParallelEngine:
    """Runs the sharded forward/backward for :class:`~repro.train.trainer.Trainer`.

    Owns the worker pool, the parameter mirror, and the gradient arena; the
    trainer drives it one batch at a time via :meth:`step` and keeps
    clipping / optimizer / callback logic unchanged on the combined
    gradient.  With ``num_workers=0`` (or no ``fork``) the same shard loop
    runs in-process — the bitwise reference for any worker count.

    Args:
        model: the live model (parent copy; workers fork replicas of it).
        sampler: training negative sampler (reseeded per shard).
        packed: CSR-packed training examples (inherited by workers).
        batch_size: examples per optimizer step (pre-shard).
        negatives: presampled negatives per row (0 = model samples inline).
        seed: base seed; shard randomness derives from it.
        grad_shards: micro-batches per step — fixes the gradient's reduction
            order, so it must stay constant to compare runs bitwise.
        num_workers: worker processes (capped at ``grad_shards``).
        max_len: optional padding cap, as in the loader.
        want_breakdown: request per-component losses from the model.
        timeout: worker heartbeat timeout (``None`` = env default).
    """

    def __init__(self, model, sampler: NegativeSampler | None,
                 packed: PackedExamples, batch_size: int, *, negatives: int = 0,
                 seed: int = 0, grad_shards: int = 4, num_workers: int = 0,
                 max_len: int | None = None, want_breakdown: bool = False,
                 timeout: float | None = None):
        if grad_shards < 1:
            raise ValueError(f"grad_shards must be >= 1, got {grad_shards}")
        self.model = model
        self.sampler = sampler
        self.packed = packed
        self.batch_size = batch_size
        self.negatives = negatives
        self.seed = seed
        self.grad_shards = grad_shards
        self.max_len = max_len
        self.want_breakdown = want_breakdown
        self._generators = discover_generators(model, sampler)
        flat = model.parameter_vector()
        self._flat_size = flat.size
        self._dtype = flat.dtype
        self._acc = np.zeros(self._flat_size, dtype=self._dtype)
        self._pool: WorkerPool | None = None
        self._mirror: ShmParamMirror | None = None
        self._arena: ShmArena | None = None
        if num_workers > 0 and not fork_available():
            _log.warning("fork start method unavailable; data-parallel fit "
                         "runs its shard loop in-process")
            num_workers = 0
        self.num_workers = min(num_workers, grad_shards)
        if self.num_workers > 0:
            # A failure partway through setup (e.g. the pool's fork) must
            # not leak the shm segments already created; close() releases
            # whichever of the three came into existence.
            try:
                self._mirror = ShmParamMirror(self._flat_size,
                                              dtype=self._dtype)
                self._mirror.publish(flat)
                slot_bytes = self._flat_size * self._dtype.itemsize + 256
                self._arena = ShmArena(slot_bytes, grad_shards + 2)
                self._pool = WorkerPool(
                    _ddp_worker,
                    (model, sampler, packed, negatives, max_len, seed,
                     self._mirror, want_breakdown),
                    num_workers=self.num_workers, timeout=timeout,
                    transport=self._arena, transport_copy=False,
                    process_role="ddp")
            except BaseException:
                self.close()
                raise
        self.last_shard_health: list[dict] = []

    def epoch_chunks(self, epoch: int) -> list[np.ndarray]:
        """The batch schedule for one epoch (shuffled, loader-compatible)."""
        order = epoch_order(self.seed, epoch, len(self.packed), shuffle=True)
        return [order[start:start + self.batch_size]
                for start in range(0, len(order), self.batch_size)]

    def step(self, epoch: int, step: int, rows: np.ndarray):
        """One optimizer step's worth of shards → combined grads on the model.

        Publishes current parameters (worker mode), fans the shards out,
        reduces the shard gradients in shard order with ``n_s / n`` weights,
        and assigns the result onto ``param.grad`` windows.  Returns
        ``(loss, breakdown)`` for the combined step.
        """
        shards = shard_rows(rows, self.grad_shards)
        sync_seconds = 0.0
        if self._pool is not None:
            started = time.perf_counter()
            # Parent writes straight into the mirror segment; no in-flight
            # tasks exist between steps, so workers never observe a torn
            # publish.
            self.model.parameter_vector(out=self._mirror.data)
            self._mirror.publish()
            sync_seconds += time.perf_counter() - started
            for shard, shard_rows_ in enumerate(shards):
                self._pool.submit(shard, (epoch, step, shard, shard_rows_))
            results: dict[int, tuple] = {}
            workers: dict[int, int | None] = {}
            for _ in shards:
                worker_id, shard, value = self._pool.next_result()
                results[shard] = value
                workers[shard] = worker_id
        else:
            results = {
                shard: _shard_step(self.model, self.sampler, self.packed,
                                   self.negatives, self.max_len,
                                   self._generators, self.seed, epoch, step,
                                   shard, shard_rows_, self.want_breakdown)
                for shard, shard_rows_ in enumerate(shards)
            }
            workers = {shard: None for shard in results}
        started = time.perf_counter()
        total_rows = sum(value[2] for value in results.values())
        self._acc[:] = 0.0
        loss = 0.0
        breakdown: dict[str, float] | None = {} if self.want_breakdown else None
        health: list[dict] = []
        for shard in range(len(shards)):
            shard_loss, shard_breakdown, shard_rows_count, flat = results[shard]
            weight = shard_rows_count / total_rows
            self._acc += flat * weight
            loss += shard_loss * weight
            # One SIMD reduction per shard: a non-finite element poisons the
            # sum, which is how a NaN gradient gets attributed to the shard
            # (and worker) that produced it rather than just the parameter.
            health.append({
                "epoch": epoch, "step": step, "shard": shard,
                "worker": workers.get(shard), "rows": shard_rows_count,
                "loss": shard_loss,
                "finite_grad": bool(np.isfinite(np.sum(flat))),
            })
            if breakdown is not None and shard_breakdown is not None:
                for key, value in shard_breakdown.items():
                    breakdown[key] = breakdown.get(key, 0.0) + value * weight
        results.clear()  # drop shm views so the gradient slots recycle
        self.last_shard_health = health
        assign_flat_gradients(self.model.parameters(), self._acc)
        sync_seconds += time.perf_counter() - started
        telemetry = get_telemetry()
        if telemetry is not None:
            registry = telemetry.registry
            registry.counter("ddp.steps").inc()
            registry.counter("ddp.shards").inc(len(shards))
            registry.counter("ddp.grad_bytes").inc(
                len(shards) * self._flat_size * self._dtype.itemsize)
            registry.histogram("ddp.sync_seconds").record(sync_seconds)
        if breakdown is not None and not breakdown:
            breakdown = None
        return loss, breakdown

    def close(self) -> None:
        """Tear down the pool, mirror, and gradient arena (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._mirror is not None:
            self._mirror.close()
            self._mirror = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "DataParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
