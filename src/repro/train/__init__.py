"""``repro.train`` — optimization loop and history tracking."""

from .history import EpochRecord, History
from .trainer import TrainConfig, Trainer

__all__ = ["TrainConfig", "Trainer", "History", "EpochRecord"]
