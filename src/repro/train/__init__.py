"""``repro.train`` — optimization loop, data-parallel engine, and history."""

from .ddp import DataParallelEngine
from .history import EpochRecord, History
from .trainer import TrainConfig, Trainer

__all__ = ["TrainConfig", "Trainer", "History", "EpochRecord",
           "DataParallelEngine"]
