"""Full-catalog ranking evaluation (the un-sampled protocol).

The sampled 99-negative protocol is the paper's headline setting; the
all-item protocol is the stricter alternative reviewers increasingly ask
for.  For every test example the model scores the entire catalog, items the
user already interacted with (except the target) are masked out, and the
target's rank among the remainder is recorded.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import collate
from repro.data.dataset import MultiBehaviorDataset
from repro.data.splits import SequenceExample
from repro.nn.tensor import no_grad

from .metrics import MetricReport

__all__ = ["full_ranking_ranks", "evaluate_full_ranking"]


def full_ranking_ranks(model, dataset: MultiBehaviorDataset,
                       examples: list[SequenceExample], batch_size: int = 64
                       ) -> np.ndarray:
    """0-based rank of each example's target among all non-seen items."""
    model.eval()
    all_items = np.arange(1, dataset.num_items + 1)
    ranks: list[int] = []
    with no_grad():
        for start in range(0, len(examples), batch_size):
            chunk = examples[start:start + batch_size]
            batch = collate(chunk, dataset.schema)
            candidates = np.tile(all_items, (len(chunk), 1))
            scores = model.score_candidates(batch, candidates).numpy()
            for row, example in enumerate(chunk):
                seen = dataset.items_of_user(example.user) - {example.target}
                row_scores = scores[row].copy()
                if seen:
                    row_scores[np.fromiter(seen, dtype=np.int64) - 1] = -np.inf
                target_score = row_scores[example.target - 1]
                better = int((row_scores > target_score).sum())
                ties = int((row_scores == target_score).sum()) - 1
                ranks.append(better + ties)
    model.train()
    return np.asarray(ranks, dtype=np.int64)


def evaluate_full_ranking(model, dataset: MultiBehaviorDataset,
                          examples: list[SequenceExample],
                          ks: tuple[int, ...] = (10, 20, 50),
                          batch_size: int = 64) -> MetricReport:
    """HR@K / NDCG@K / MRR against the whole catalog."""
    ranks = full_ranking_ranks(model, dataset, examples, batch_size=batch_size)
    return MetricReport.from_ranks(ranks, ks=ks)
