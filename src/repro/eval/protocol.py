"""Evaluation protocol: fixed candidate sets shared across models.

The paper's protocol pairs each positive test item with 99 uniformly sampled
negatives.  To compare models fairly (and to keep benchmark tables stable),
the candidate sets are drawn **once** per split from a seeded generator and
reused for every model — the same trick the original pipeline framework uses
when re-running all baselines.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import MultiBehaviorDataset
from repro.data.sampling import NegativeSampler
from repro.data.splits import SequenceExample

__all__ = ["CandidateSets"]


class CandidateSets:
    """Pre-drawn ranking candidates for a list of evaluation examples.

    ``candidates[i]`` is the ``(1 + num_negatives,)`` id array for example i,
    with the positive in column 0.
    """

    def __init__(self, dataset: MultiBehaviorDataset, examples: list[SequenceExample],
                 num_negatives: int = 99, seed: int = 7):
        rng = np.random.default_rng(seed)
        sampler = NegativeSampler(dataset, rng, mode="uniform")
        self.num_negatives = num_negatives
        self.examples = examples
        self.candidates = np.stack([
            sampler.candidates_for(example, num_negatives) for example in examples
        ]) if examples else np.zeros((0, num_negatives + 1), dtype=np.int64)

    def __len__(self) -> int:
        return len(self.examples)

    def slice(self, indices: np.ndarray) -> np.ndarray:
        """Candidate matrix rows for a batch of example indices."""
        return self.candidates[indices]
