"""Statistical significance testing for metric differences.

Implements the paired bootstrap test standard in IR evaluation: given the
per-instance ranks of two systems on the *same* test examples and candidate
sets, estimate the probability that system A's metric advantage over system B
would survive resampling of the test set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .metrics import ndcg

__all__ = ["paired_bootstrap", "BootstrapResult"]


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of a paired bootstrap comparison.

    Attributes:
        metric_a / metric_b: point estimates on the full test set.
        delta: ``metric_a - metric_b``.
        p_value: fraction of bootstrap resamples where A does NOT beat B
            (one-sided); small values mean A's win is stable.
        ci_low / ci_high: 95% percentile confidence interval of the delta.
    """

    metric_a: float
    metric_b: float
    delta: float
    p_value: float
    ci_low: float
    ci_high: float

    @property
    def significant(self) -> bool:
        """True when A beats B at the 0.05 level."""
        return self.p_value < 0.05

    def __str__(self) -> str:
        marker = "*" if self.significant else " "
        return (f"A={self.metric_a:.4f} B={self.metric_b:.4f} "
                f"Δ={self.delta:+.4f} [{self.ci_low:+.4f}, {self.ci_high:+.4f}] "
                f"p={self.p_value:.3f}{marker}")


def paired_bootstrap(ranks_a: np.ndarray, ranks_b: np.ndarray,
                     metric: Callable[[np.ndarray], float] | None = None,
                     num_resamples: int = 2000, seed: int = 0) -> BootstrapResult:
    """Compare two systems' per-instance ranks with a paired bootstrap.

    Args:
        ranks_a / ranks_b: 0-based positive-item ranks, aligned by instance
            (same test examples, same candidate sets).
        metric: rank-array → scalar; defaults to NDCG@10.
        num_resamples: bootstrap iterations.
        seed: resampling seed.
    """
    ranks_a = np.asarray(ranks_a)
    ranks_b = np.asarray(ranks_b)
    if ranks_a.shape != ranks_b.shape:
        raise ValueError(f"rank arrays misaligned: {ranks_a.shape} vs {ranks_b.shape}")
    if ranks_a.size == 0:
        raise ValueError("cannot bootstrap an empty test set")
    if metric is None:
        metric = lambda ranks: ndcg(ranks, 10)

    n = ranks_a.size
    rng = np.random.default_rng(seed)
    deltas = np.empty(num_resamples)
    for i in range(num_resamples):
        idx = rng.integers(0, n, size=n)
        deltas[i] = metric(ranks_a[idx]) - metric(ranks_b[idx])
    point_a = metric(ranks_a)
    point_b = metric(ranks_b)
    return BootstrapResult(
        metric_a=point_a,
        metric_b=point_b,
        delta=point_a - point_b,
        p_value=float((deltas <= 0).mean()),
        ci_low=float(np.percentile(deltas, 2.5)),
        ci_high=float(np.percentile(deltas, 97.5)),
    )
