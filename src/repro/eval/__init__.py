"""``repro.eval`` — ranking metrics and the sampled evaluation protocol."""

from .evaluator import EvalShardPool, evaluate_ranking, precollate, rank_all
from .full_ranking import evaluate_full_ranking, full_ranking_ranks
from .metrics import (MetricReport, hit_rate, item_coverage, mrr, ndcg, ranks_from_scores,
                      recall, top_k_items)
from .protocol import CandidateSets
from .significance import BootstrapResult, paired_bootstrap

__all__ = [
    "hit_rate", "ndcg", "mrr", "recall", "ranks_from_scores", "MetricReport",
    "item_coverage", "top_k_items",
    "CandidateSets", "evaluate_ranking", "rank_all", "precollate",
    "EvalShardPool",
    "evaluate_full_ranking", "full_ranking_ranks",
    "paired_bootstrap", "BootstrapResult",
]
