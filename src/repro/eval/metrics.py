"""Ranking metrics: HR@K, NDCG@K, MRR, Recall@K.

All metrics consume an array of **ranks**: for each evaluation instance, the
0-based position of the positive item in the model's sorted candidate list
(rank 0 = the model put the positive first).
"""

from __future__ import annotations

import numpy as np

__all__ = ["hit_rate", "ndcg", "mrr", "recall", "ranks_from_scores", "MetricReport",
           "item_coverage", "top_k_items"]


def ranks_from_scores(scores: np.ndarray, positive_column: int = 0) -> np.ndarray:
    """Rank of the positive candidate within each row of ``scores``.

    ``scores`` is ``(N, C)``; higher is better.  Ties are resolved
    pessimistically (tied candidates count as ranked above the positive),
    which penalizes degenerate constant scorers instead of rewarding them.
    """
    positive = scores[:, positive_column][:, None]
    better = (scores > positive).sum(axis=1)
    ties = (scores == positive).sum(axis=1) - 1  # exclude the positive itself
    return better + ties


def hit_rate(ranks: np.ndarray, k: int) -> float:
    """Fraction of instances whose positive lands in the top-k."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        return 0.0
    return float((ranks < k).mean())


def ndcg(ranks: np.ndarray, k: int) -> float:
    """Normalized discounted cumulative gain with a single relevant item.

    With one positive, NDCG@k reduces to ``1 / log2(rank + 2)`` when the
    positive is in the top-k, else 0.
    """
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        return 0.0
    gains = np.where(ranks < k, 1.0 / np.log2(ranks + 2.0), 0.0)
    return float(gains.mean())


def mrr(ranks: np.ndarray) -> float:
    """Mean reciprocal rank."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        return 0.0
    return float((1.0 / (ranks + 1.0)).mean())


def recall(ranks: np.ndarray, k: int) -> float:
    """Recall@k; identical to HR@k in the one-positive protocol."""
    return hit_rate(ranks, k)


def top_k_items(scores: np.ndarray, candidates: np.ndarray, k: int) -> np.ndarray:
    """Top-k candidate item ids per row, ordered by descending score."""
    if scores.shape != candidates.shape:
        raise ValueError(f"shapes differ: {scores.shape} vs {candidates.shape}")
    order = np.argsort(-scores, axis=1)[:, :k]
    return np.take_along_axis(candidates, order, axis=1)


def item_coverage(recommended: np.ndarray, num_items: int) -> float:
    """Catalog coverage: fraction of the item vocabulary ever recommended.

    ``recommended`` holds top-k item ids per test instance (any shape); a
    low value signals popularity bias in the recommender.
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    unique = np.unique(np.asarray(recommended).ravel())
    unique = unique[unique > 0]
    return float(unique.size / num_items)


class MetricReport(dict):
    """Metric-name → value mapping with a compact renderer."""

    @classmethod
    def from_ranks(cls, ranks: np.ndarray, ks: tuple[int, ...] = (5, 10, 20)) -> "MetricReport":
        report = cls()
        for k in ks:
            report[f"HR@{k}"] = hit_rate(ranks, k)
            report[f"NDCG@{k}"] = ndcg(ranks, k)
        report["MRR"] = mrr(ranks)
        return report

    def __str__(self) -> str:
        return "  ".join(f"{name}={value:.4f}" for name, value in self.items())
