"""Ranking evaluator driving any model that implements ``score_candidates``.

The model contract (see :class:`repro.baselines.base.SequentialRecommender`):
``score_candidates(batch, candidates)`` returns a ``(B, C)`` score tensor for
the ``(B, C)`` candidate item-id matrix, higher = more likely next item.

Both :func:`precollate` and :func:`rank_all` accept ``num_workers`` to shard
their work across a :class:`repro.data.pipeline.WorkerPool` — batch assembly
and candidate scoring partition over evaluation users with an order-stable
merge, so the sharded path reproduces the serial ranks exactly.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import collate
from repro.data.pipeline import fork_available, parallel_map
from repro.data.schema import BehaviorSchema
from repro.data.splits import SequenceExample
from repro.nn.tensor import no_grad
from repro.obs import get_logger, span

from .metrics import MetricReport, ranks_from_scores
from .protocol import CandidateSets

__all__ = ["evaluate_ranking", "rank_all", "precollate"]

_log = get_logger(__name__)


def _use_workers(num_workers: int, task_count: int) -> bool:
    """Whether sharding is worth it (and safe) for this call.

    Worker shards inherit the model / example list by reference via the
    ``fork`` start method; without fork we would have to pickle live model
    state mid-evaluation, so the sharded path degrades to serial instead.
    """
    if num_workers <= 0 or task_count <= 1:
        return False
    if not fork_available():
        _log.warning("fork start method unavailable; evaluating serially")
        return False
    return True


def _collate_shard(examples: list, candidate_sets: CandidateSets,
                   schema: BehaviorSchema):
    """Worker factory: collate one index chunk per task."""
    def build(chunk_idx: np.ndarray):
        batch = collate([examples[i] for i in chunk_idx], schema)
        return batch, candidate_sets.slice(chunk_idx)
    return build


def precollate(examples: list[SequenceExample], candidate_sets: CandidateSets,
               schema: BehaviorSchema, batch_size: int = 128,
               num_workers: int = 0) -> list[tuple]:
    """Pre-collate evaluation batches for repeated ranking passes.

    Returns ``[(batch, candidates), ...]`` chunks ready for
    ``model.score_candidates``.  Evaluation examples and candidate sets are
    fixed for the lifetime of a split, so a trainer that evaluates every
    epoch can collate once and pass the result to :func:`rank_all` via
    ``precollated=`` instead of re-building identical batches each time.
    ``num_workers > 0`` assembles the chunks on a worker pool (order-stable,
    identical output to the serial path).
    """
    if len(examples) != len(candidate_sets):
        raise ValueError("examples and candidate sets are misaligned")
    chunks = [np.arange(start, min(start + batch_size, len(examples)))
              for start in range(0, len(examples), batch_size)]
    if _use_workers(num_workers, len(chunks)):
        return parallel_map(_collate_shard, (examples, candidate_sets, schema),
                            chunks, num_workers=num_workers)
    build = _collate_shard(examples, candidate_sets, schema)
    return [build(chunk_idx) for chunk_idx in chunks]


def _rank_shard(model, batches: list[tuple]):
    """Worker factory: score one precollated batch per task (by index)."""
    def score(index: int) -> np.ndarray:
        batch, candidates = batches[index]
        with no_grad():
            scores = model.score_candidates(batch, candidates)
        return ranks_from_scores(scores.numpy())
    return score


def rank_all(model, examples: list[SequenceExample], candidate_sets: CandidateSets,
             schema: BehaviorSchema, batch_size: int = 128,
             precollated: list[tuple] | None = None,
             num_workers: int = 0) -> np.ndarray:
    """Compute the positive item's rank for every example.

    Returns an ``(N,)`` int array of 0-based ranks; input ordering preserved.
    ``precollated`` (from :func:`precollate`) skips per-call batch collation.
    The model's train/eval mode is restored on exit rather than forced to
    train mode: evaluating an already-eval model must not flip it back to
    training (which would, e.g., invalidate cached inference tables).

    With ``num_workers > 0`` batches are scored on a worker pool: the first
    batch runs on the main process (in eval mode, priming any lazily-built
    inference caches before the fork), the rest fan out, and shard results
    merge back in batch order — bitwise-identical ranks to the serial path.
    """
    with span("eval.rank_all", examples=len(examples),
              model=type(model).__name__, num_workers=num_workers):
        if precollated is None:
            precollated = precollate(examples, candidate_sets, schema,
                                     batch_size=batch_size, num_workers=num_workers)
        was_training = bool(getattr(model, "training", False))
        model.eval()
        try:
            score = _rank_shard(model, precollated)
            if _use_workers(num_workers, len(precollated)):
                first = score(0)
                rest = parallel_map(_rank_shard, (model, precollated),
                                    list(range(1, len(precollated))),
                                    num_workers=num_workers)
                ranks = [first, *rest]
            else:
                ranks = [score(index) for index in range(len(precollated))]
        finally:
            if was_training:
                model.train()
        return np.concatenate(ranks) if ranks else np.zeros(0, dtype=np.int64)


def evaluate_ranking(model, examples: list[SequenceExample], candidate_sets: CandidateSets,
                     schema: BehaviorSchema, ks: tuple[int, ...] = (5, 10, 20),
                     batch_size: int = 128,
                     precollated: list[tuple] | None = None,
                     num_workers: int = 0) -> MetricReport:
    """Full sampled-ranking evaluation → HR@K / NDCG@K / MRR report."""
    ranks = rank_all(model, examples, candidate_sets, schema, batch_size=batch_size,
                     precollated=precollated, num_workers=num_workers)
    return MetricReport.from_ranks(ranks, ks=ks)
