"""Ranking evaluator driving any model that implements ``score_candidates``.

The model contract (see :class:`repro.baselines.base.SequentialRecommender`):
``score_candidates(batch, candidates)`` returns a ``(B, C)`` score tensor for
the ``(B, C)`` candidate item-id matrix, higher = more likely next item.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import collate
from repro.data.schema import BehaviorSchema
from repro.data.splits import SequenceExample
from repro.nn.tensor import no_grad

from .metrics import MetricReport, ranks_from_scores
from .protocol import CandidateSets

__all__ = ["evaluate_ranking", "rank_all"]


def rank_all(model, examples: list[SequenceExample], candidate_sets: CandidateSets,
             schema: BehaviorSchema, batch_size: int = 128) -> np.ndarray:
    """Compute the positive item's rank for every example.

    Returns an ``(N,)`` int array of 0-based ranks; input ordering preserved.
    """
    if len(examples) != len(candidate_sets):
        raise ValueError("examples and candidate sets are misaligned")
    model.eval()
    ranks: list[np.ndarray] = []
    with no_grad():
        for start in range(0, len(examples), batch_size):
            chunk_idx = np.arange(start, min(start + batch_size, len(examples)))
            batch = collate([examples[i] for i in chunk_idx], schema)
            candidates = candidate_sets.slice(chunk_idx)
            scores = model.score_candidates(batch, candidates)
            ranks.append(ranks_from_scores(scores.numpy()))
    model.train()
    return np.concatenate(ranks) if ranks else np.zeros(0, dtype=np.int64)


def evaluate_ranking(model, examples: list[SequenceExample], candidate_sets: CandidateSets,
                     schema: BehaviorSchema, ks: tuple[int, ...] = (5, 10, 20),
                     batch_size: int = 128) -> MetricReport:
    """Full sampled-ranking evaluation → HR@K / NDCG@K / MRR report."""
    ranks = rank_all(model, examples, candidate_sets, schema, batch_size=batch_size)
    return MetricReport.from_ranks(ranks, ks=ks)
