"""Ranking evaluator driving any model that implements ``score_candidates``.

The model contract (see :class:`repro.baselines.base.SequentialRecommender`):
``score_candidates(batch, candidates)`` returns a ``(B, C)`` score tensor for
the ``(B, C)`` candidate item-id matrix, higher = more likely next item.

Both :func:`precollate` and :func:`rank_all` accept ``num_workers`` to shard
their work across a :class:`repro.data.pipeline.WorkerPool` — batch assembly
and candidate scoring partition over evaluation users with an order-stable
merge, so the sharded path reproduces the serial ranks exactly.  Collated
shards come back through a shared-memory arena (descriptors on the queue)
instead of the pickle path.

For per-epoch validation inside a training loop, :class:`EvalShardPool`
keeps the worker pool alive *across* ranking passes — the per-call pools
above pay a fork + teardown per evaluation, which is exactly the overhead
that made sharded evaluation slower than serial at small scale.  Workers
hold a forked model replica and resynchronize parameters from a
version-stamped :class:`~repro.data.shm.ShmParamMirror` before scoring, so
each pass ranks with the parent's current weights.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import collate
from repro.data.pipeline import WorkerPool, fork_available, parallel_map
from repro.data.schema import BehaviorSchema
from repro.data.shm import ShmArena, ShmParamMirror
from repro.data.splits import SequenceExample
from repro.nn.tensor import no_grad
from repro.obs import get_logger, span

from .metrics import MetricReport, ranks_from_scores
from .protocol import CandidateSets

__all__ = ["evaluate_ranking", "rank_all", "precollate", "EvalShardPool"]

_log = get_logger(__name__)


def _use_workers(num_workers: int, task_count: int) -> bool:
    """Whether sharding is worth it (and safe) for this call.

    Worker shards inherit the model / example list by reference via the
    ``fork`` start method; without fork we would have to pickle live model
    state mid-evaluation, so the sharded path degrades to serial instead.
    """
    if num_workers <= 0 or task_count <= 1:
        return False
    if not fork_available():
        _log.warning("fork start method unavailable; evaluating serially")
        return False
    return True


def _collate_shard(examples: list, candidate_sets: CandidateSets,
                   schema: BehaviorSchema):
    """Worker factory: collate one index chunk per task."""
    def build(chunk_idx: np.ndarray):
        batch = collate([examples[i] for i in chunk_idx], schema)
        return batch, candidate_sets.slice(chunk_idx)
    return build


def _collate_bytes_bound(examples: list, candidate_sets: CandidateSets,
                         schema: BehaviorSchema, batch_size: int) -> int:
    """Upper bound on one collated ``(batch, candidates)`` shard's bytes.

    Sized analytically from the longest sequences in the split so the arena
    never needs a measure-first pass (left-padded matrices are
    ``batch_size × longest``, int64 items plus bool masks).
    """
    longest_behavior = {behavior: 1 for behavior in schema.behaviors}
    longest_merged = 1
    for example in examples:
        for behavior in schema.behaviors:
            longest_behavior[behavior] = max(longest_behavior[behavior],
                                             len(example.inputs[behavior]))
        longest_merged = max(longest_merged, len(example.merged_items))
    rows = batch_size
    total = 2 * rows * 8                                    # users, targets
    for width in longest_behavior.values():
        total += rows * width * (8 + 1)                     # items + mask
    total += rows * longest_merged * (8 + 8 + 1)            # merged triple
    total += rows * candidate_sets.candidates.shape[1] * 8  # candidate matrix
    arrays = 6 + 2 * len(schema.behaviors)
    return total + 64 * (arrays + 1)


def precollate(examples: list[SequenceExample], candidate_sets: CandidateSets,
               schema: BehaviorSchema, batch_size: int = 128,
               num_workers: int = 0) -> list[tuple]:
    """Pre-collate evaluation batches for repeated ranking passes.

    Returns ``[(batch, candidates), ...]`` chunks ready for
    ``model.score_candidates``.  Evaluation examples and candidate sets are
    fixed for the lifetime of a split, so a trainer that evaluates every
    epoch can collate once and pass the result to :func:`rank_all` via
    ``precollated=`` instead of re-building identical batches each time.
    ``num_workers > 0`` assembles the chunks on a worker pool (order-stable,
    identical output to the serial path).
    """
    if len(examples) != len(candidate_sets):
        raise ValueError("examples and candidate sets are misaligned")
    chunks = [np.arange(start, min(start + batch_size, len(examples)))
              for start in range(0, len(examples), batch_size)]
    if _use_workers(num_workers, len(chunks)):
        # Collated shards are mostly batch arrays — route them through a
        # shared-memory arena (decoded as private copies, since precollated
        # batches live for the whole training run).
        with ShmArena(_collate_bytes_bound(examples, candidate_sets, schema,
                                           batch_size),
                      num_slots=num_workers * 2 + 2) as arena:
            return parallel_map(_collate_shard, (examples, candidate_sets, schema),
                                chunks, num_workers=num_workers,
                                transport=arena, transport_copy=True,
                                process_role="eval")
    build = _collate_shard(examples, candidate_sets, schema)
    return [build(chunk_idx) for chunk_idx in chunks]


def _rank_shard(model, batches: list[tuple]):
    """Worker factory: score one precollated batch per task (by index)."""
    def score(index: int) -> np.ndarray:
        batch, candidates = batches[index]
        with no_grad():
            scores = model.score_candidates(batch, candidates)
        return ranks_from_scores(scores.numpy())
    return score


def rank_all(model, examples: list[SequenceExample], candidate_sets: CandidateSets,
             schema: BehaviorSchema, batch_size: int = 128,
             precollated: list[tuple] | None = None,
             num_workers: int = 0) -> np.ndarray:
    """Compute the positive item's rank for every example.

    Returns an ``(N,)`` int array of 0-based ranks; input ordering preserved.
    ``precollated`` (from :func:`precollate`) skips per-call batch collation.
    The model's train/eval mode is restored on exit rather than forced to
    train mode: evaluating an already-eval model must not flip it back to
    training (which would, e.g., invalidate cached inference tables).

    With ``num_workers > 0`` batches are scored on a worker pool: the first
    batch runs on the main process (in eval mode, priming any lazily-built
    inference caches before the fork), the rest fan out, and shard results
    merge back in batch order — bitwise-identical ranks to the serial path.
    """
    with span("eval.rank_all", examples=len(examples),
              model=type(model).__name__, num_workers=num_workers):
        if precollated is None:
            precollated = precollate(examples, candidate_sets, schema,
                                     batch_size=batch_size, num_workers=num_workers)
        was_training = bool(getattr(model, "training", False))
        model.eval()
        try:
            score = _rank_shard(model, precollated)
            if _use_workers(num_workers, len(precollated)):
                first = score(0)
                rest = parallel_map(_rank_shard, (model, precollated),
                                    list(range(1, len(precollated))),
                                    num_workers=num_workers,
                                    process_role="eval")
                ranks = [first, *rest]
            else:
                ranks = [score(index) for index in range(len(precollated))]
        finally:
            if was_training:
                model.train()
        return np.concatenate(ranks) if ranks else np.zeros(0, dtype=np.int64)


def evaluate_ranking(model, examples: list[SequenceExample], candidate_sets: CandidateSets,
                     schema: BehaviorSchema, ks: tuple[int, ...] = (5, 10, 20),
                     batch_size: int = 128,
                     precollated: list[tuple] | None = None,
                     num_workers: int = 0) -> MetricReport:
    """Full sampled-ranking evaluation → HR@K / NDCG@K / MRR report."""
    ranks = rank_all(model, examples, candidate_sets, schema, batch_size=batch_size,
                     precollated=precollated, num_workers=num_workers)
    return MetricReport.from_ranks(ranks, ks=ks)


def _mirror_rank_shard(model, batches: list[tuple], mirror: ShmParamMirror):
    """Worker factory for :class:`EvalShardPool`: sync params, then score.

    On the first task after the parent publishes new weights, the replica
    reloads its parameters and cycles ``train()``/``eval()`` so any
    eval-only inference caches (e.g. MISSL's item table) built against the
    stale weights are dropped and lazily rebuilt.
    """
    model.eval()
    buffer = np.empty(mirror.count, dtype=mirror.dtype)

    def score(index: int) -> np.ndarray:
        if mirror.refresh(buffer):
            model.load_parameter_vector(buffer)
            model.train()
            model.eval()
        batch, candidates = batches[index]
        with no_grad():
            scores = model.score_candidates(batch, candidates)
        return ranks_from_scores(scores.numpy())
    return score


class EvalShardPool:
    """A persistent sharded ranking pool for repeated evaluation passes.

    :func:`rank_all`'s per-call sharding forks and tears down a pool every
    evaluation — at per-epoch validation scale that fixed cost outweighs the
    parallel scoring win.  This pool forks **once** over the precollated
    validation batches (inherited by reference), and each :meth:`rank_all`
    call publishes the model's current parameters through a
    :class:`~repro.data.shm.ShmParamMirror` before fanning out, so workers
    score with the weights the parent holds *now*.  Results merge
    order-stably: ranks are bitwise-identical to the serial path.

    Args:
        model: the live (parent) model; workers fork replicas at init.
        precollated: ``[(batch, candidates), ...]`` from :func:`precollate`.
        num_workers: shard worker count (capped at the batch count).
        timeout: worker heartbeat timeout (``None`` = env default).
    """

    def __init__(self, model, precollated: list[tuple], num_workers: int,
                 timeout: float | None = None):
        if num_workers < 1:
            raise ValueError(f"need at least one worker, got {num_workers}")
        if not precollated:
            raise ValueError("no precollated batches to rank")
        if not fork_available():
            raise RuntimeError("EvalShardPool requires the fork start method")
        self.model = model
        self.num_batches = len(precollated)
        self.num_workers = min(num_workers, self.num_batches)
        flat = model.parameter_vector()
        self._mirror = ShmParamMirror(flat.size, dtype=flat.dtype)
        self._mirror.publish(flat)
        self._pool = WorkerPool(
            _mirror_rank_shard, (model, precollated, self._mirror),
            num_workers=self.num_workers, timeout=timeout,
            process_role="eval")

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (the pool cannot rank again)."""
        return self._pool.closed

    def rank_all(self) -> np.ndarray:
        """Rank every precollated batch with the model's current weights."""
        with span("eval.rank_all", model=type(self.model).__name__,
                  num_workers=self.num_workers, persistent=True):
            self.model.parameter_vector(out=self._mirror.data)
            self._mirror.publish()
            for index in range(self.num_batches):
                self._pool.submit(index, index)
            ranks: list = [None] * self.num_batches
            for _ in range(self.num_batches):
                _, index, value = self._pool.next_result()
                ranks[index] = value
        return np.concatenate(ranks)

    def evaluate(self, ks: tuple[int, ...] = (5, 10, 20)) -> MetricReport:
        """Full HR@K / NDCG@K / MRR report from one sharded ranking pass."""
        return MetricReport.from_ranks(self.rank_all(), ks=ks)

    def close(self) -> None:
        """Tear down the worker pool and the parameter mirror (idempotent)."""
        self._pool.close()
        self._mirror.close()

    def __enter__(self) -> "EvalShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
