"""Ranking evaluator driving any model that implements ``score_candidates``.

The model contract (see :class:`repro.baselines.base.SequentialRecommender`):
``score_candidates(batch, candidates)`` returns a ``(B, C)`` score tensor for
the ``(B, C)`` candidate item-id matrix, higher = more likely next item.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import collate
from repro.data.schema import BehaviorSchema
from repro.data.splits import SequenceExample
from repro.nn.tensor import no_grad
from repro.obs import span

from .metrics import MetricReport, ranks_from_scores
from .protocol import CandidateSets

__all__ = ["evaluate_ranking", "rank_all", "precollate"]


def precollate(examples: list[SequenceExample], candidate_sets: CandidateSets,
               schema: BehaviorSchema, batch_size: int = 128) -> list[tuple]:
    """Pre-collate evaluation batches for repeated ranking passes.

    Returns ``[(batch, candidates), ...]`` chunks ready for
    ``model.score_candidates``.  Evaluation examples and candidate sets are
    fixed for the lifetime of a split, so a trainer that evaluates every
    epoch can collate once and pass the result to :func:`rank_all` via
    ``precollated=`` instead of re-building identical batches each time.
    """
    if len(examples) != len(candidate_sets):
        raise ValueError("examples and candidate sets are misaligned")
    batches = []
    for start in range(0, len(examples), batch_size):
        chunk_idx = np.arange(start, min(start + batch_size, len(examples)))
        batch = collate([examples[i] for i in chunk_idx], schema)
        batches.append((batch, candidate_sets.slice(chunk_idx)))
    return batches


def rank_all(model, examples: list[SequenceExample], candidate_sets: CandidateSets,
             schema: BehaviorSchema, batch_size: int = 128,
             precollated: list[tuple] | None = None) -> np.ndarray:
    """Compute the positive item's rank for every example.

    Returns an ``(N,)`` int array of 0-based ranks; input ordering preserved.
    ``precollated`` (from :func:`precollate`) skips per-call batch collation.
    The model's train/eval mode is restored on exit rather than forced to
    train mode: evaluating an already-eval model must not flip it back to
    training (which would, e.g., invalidate cached inference tables).
    """
    with span("eval.rank_all", examples=len(examples),
              model=type(model).__name__):
        if precollated is None:
            precollated = precollate(examples, candidate_sets, schema, batch_size=batch_size)
        was_training = bool(getattr(model, "training", False))
        model.eval()
        ranks: list[np.ndarray] = []
        with no_grad():
            for batch, candidates in precollated:
                scores = model.score_candidates(batch, candidates)
                ranks.append(ranks_from_scores(scores.numpy()))
        if was_training:
            model.train()
        return np.concatenate(ranks) if ranks else np.zeros(0, dtype=np.int64)


def evaluate_ranking(model, examples: list[SequenceExample], candidate_sets: CandidateSets,
                     schema: BehaviorSchema, ks: tuple[int, ...] = (5, 10, 20),
                     batch_size: int = 128,
                     precollated: list[tuple] | None = None) -> MetricReport:
    """Full sampled-ranking evaluation → HR@K / NDCG@K / MRR report."""
    ranks = rank_all(model, examples, candidate_sets, schema, batch_size=batch_size,
                     precollated=precollated)
    return MetricReport.from_ranks(ranks, ks=ks)
