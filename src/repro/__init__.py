"""repro — reproduction of MISSL (ICDE 2024).

"When Multi-Behavior Meets Multi-Interest: Multi-Behavior Sequential
Recommendation with Multi-Interest Self-Supervised Learning."

Top-level subpackages:

- :mod:`repro.nn` — NumPy autodiff + neural-network substrate.
- :mod:`repro.data` — multi-behavior interaction data model and generators.
- :mod:`repro.hypergraph` — hypergraph construction and transformer layers.
- :mod:`repro.core` — the MISSL model itself.
- :mod:`repro.baselines` — reimplemented comparison methods.
- :mod:`repro.train` / :mod:`repro.eval` — training and evaluation harness.
- :mod:`repro.experiments` — the registry that regenerates every table/figure.
- :mod:`repro.serve` — online serving: frozen inference artifacts,
  multi-interest retrieval index, micro-batching engine and serving metrics.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
