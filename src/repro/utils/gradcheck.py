"""Finite-difference gradient checking for the autodiff engine.

Used heavily by the test suite: every primitive op and every layer is checked
against central differences in float64.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of ``fn(*inputs).sum()`` w.r.t. ``inputs[index]``."""
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).sum().data)
        flat[i] = original - eps
        minus = float(fn(*inputs).sum().data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(fn: Callable[..., Tensor], inputs: Sequence[Tensor], eps: float = 1e-5,
              atol: float = 1e-4, rtol: float = 1e-3) -> bool:
    """Compare analytic and numerical gradients for every grad-requiring input.

    ``inputs`` should hold float64 tensors for the tolerances to be
    meaningful.  Raises ``AssertionError`` with diagnostics on mismatch.
    """
    for t in inputs:
        t.grad = None
    output = fn(*inputs)
    output.sum().backward()
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad
        if analytic is None:
            raise AssertionError(f"input {i} received no gradient")
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
