"""Plain-text / markdown / CSV table rendering for experiment outputs."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["format_table", "write_csv", "write_markdown"]


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned monospace table (the experiment harness's output)."""
    rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [fmt(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def write_csv(path: str | Path, headers: Sequence[str], rows: Iterable[Sequence]) -> Path:
    """Write headers+rows as CSV, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def write_markdown(path: str | Path, headers: Sequence[str], rows: Iterable[Sequence],
                   title: str | None = None) -> Path:
    """Write headers+rows as a markdown table, with an optional title."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = []
    if title:
        lines.append(f"## {title}\n")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_stringify(cell) for cell in row) + " |")
    path.write_text("\n".join(lines) + "\n")
    return path
