"""Shared utilities: seeding, simple logging, table formatting, gradcheck."""

from .gradcheck import gradcheck, numerical_gradient
from .seed import seeded_rng, spawn_rngs
from .tables import format_table, write_csv, write_markdown

__all__ = [
    "seeded_rng",
    "spawn_rngs",
    "gradcheck",
    "numerical_gradient",
    "format_table",
    "write_csv",
    "write_markdown",
]
