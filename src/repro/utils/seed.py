"""Deterministic random-number-generator plumbing.

Every stochastic component in this project (initialization, dropout, negative
sampling, data generation, augmentation) draws from an explicitly passed
``numpy.random.Generator``.  These helpers create and fan out generators so
that a single integer seed reproduces an entire experiment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["seeded_rng", "spawn_rngs"]


def seeded_rng(seed: int) -> np.random.Generator:
    """Create a PCG64 generator from an integer seed."""
    return np.random.default_rng(int(seed))


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent generators derived from one seed.

    Uses ``SeedSequence.spawn`` so the streams are statistically independent —
    safer than seeding with ``seed + i``.
    """
    sequence = np.random.SeedSequence(int(seed))
    return [np.random.default_rng(child) for child in sequence.spawn(n)]
