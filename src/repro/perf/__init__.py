"""``repro.perf`` — opt-in op-level profiling and the seed reference mode.

See :mod:`repro.perf.profiler` for the instrumentation design and
:mod:`repro.perf.reference` for the knobs reference mode flips.  The CLI
front-end is ``python -m repro profile``; the end-to-end numbers live in
``benchmarks/bench_p1_hotpaths.py``.
"""

from .profiler import (OpStats, Profiler, disable_profiling, enable_profiling,
                       get_profiler, profile_report, profiled, reset_profile)
from .reference import reference_mode

__all__ = [
    "OpStats", "Profiler", "enable_profiling", "disable_profiling",
    "reset_profile", "profiled", "profile_report", "get_profiler",
    "reference_mode",
]
