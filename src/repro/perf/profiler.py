"""Opt-in per-op profiler for the autodiff engine.

The profiler is a tiny hook object installed into :mod:`repro.nn.tensor`:

* ``on_node(op, data)`` fires from ``Tensor._make`` for every graph node
  created while enabled — counting nodes and output bytes per op.
* ``on_backward(op, seconds)`` fires from the backward sweep with the
  wall-clock time of each node's backward closure.

When no profiler is installed the engine pays a single ``is None`` check per
node, so instrumentation is free in normal runs.  Typical use::

    from repro.perf import profiled, profile_report

    with profiled():
        loss = model.training_loss(batch, sampler)
        loss.backward()
    print(profile_report())
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.nn.tensor import _install_profile_hook

__all__ = [
    "OpStats",
    "Profiler",
    "enable_profiling",
    "disable_profiling",
    "reset_profile",
    "profiled",
    "profile_report",
    "get_profiler",
]


@dataclass
class OpStats:
    """Aggregate counters for one op name."""

    nodes: int = 0
    output_bytes: int = 0
    backward_calls: int = 0
    backward_seconds: float = 0.0


@dataclass
class Profiler:
    """Accumulates per-op node counts and backward wall-clock time."""

    stats: dict[str, OpStats] = field(default_factory=dict)

    # Hook protocol (called from repro.nn.tensor) -------------------------
    def on_node(self, op: str, data) -> None:
        stat = self.stats.get(op)
        if stat is None:
            stat = self.stats[op] = OpStats()
        stat.nodes += 1
        stat.output_bytes += data.nbytes

    def on_backward(self, op: str, seconds: float) -> None:
        stat = self.stats.get(op)
        if stat is None:
            stat = self.stats[op] = OpStats()
        stat.backward_calls += 1
        stat.backward_seconds += seconds

    # Reporting -----------------------------------------------------------
    def reset(self) -> None:
        self.stats.clear()

    def total_backward_seconds(self) -> float:
        return sum(s.backward_seconds for s in self.stats.values())

    def report(self, limit: int | None = 25) -> str:
        """Render a table of ops sorted by total backward time."""
        from repro.utils import format_table

        ordered = sorted(self.stats.items(),
                         key=lambda kv: kv[1].backward_seconds, reverse=True)
        if limit is not None:
            ordered = ordered[:limit]
        total = self.total_backward_seconds()
        rows = []
        for op, stat in ordered:
            share = 100.0 * stat.backward_seconds / total if total > 0 else 0.0
            rows.append([
                op,
                stat.nodes,
                f"{stat.output_bytes / 1e6:.2f}",
                stat.backward_calls,
                f"{stat.backward_seconds * 1e3:.2f}",
                f"{share:.1f}%",
            ])
        header = ["op", "nodes", "out MB", "bwd calls", "bwd ms", "bwd %"]
        table = format_table(header, rows)
        return f"{table}\ntotal backward: {total * 1e3:.2f} ms"


_PROFILER: Profiler | None = None


def get_profiler() -> Profiler | None:
    """The currently installed profiler, or None when disabled."""
    return _PROFILER


def enable_profiling() -> Profiler:
    """Install the global profiler (reusing it, and its stats, if one exists)."""
    global _PROFILER
    if _PROFILER is None:
        _PROFILER = Profiler()
    _install_profile_hook(_PROFILER)
    return _PROFILER


def disable_profiling() -> None:
    """Uninstall the profiling hook; the profiler's stats remain readable
    via :func:`get_profiler` / :func:`profile_report` until the next
    :func:`enable_profiling` (which resumes accumulating into them)."""
    _install_profile_hook(None)


def reset_profile() -> None:
    """Clear accumulated stats on the installed profiler, if any."""
    if _PROFILER is not None:
        _PROFILER.reset()


@contextlib.contextmanager
def profiled():
    """Context manager: profile the enclosed block, yield the Profiler.

    Starts from a clean slate — each ``profiled()`` block measures exactly
    the work it encloses.  Use :func:`enable_profiling` /
    :func:`disable_profiling` directly to accumulate across blocks.
    """
    profiler = enable_profiling()
    profiler.reset()
    try:
        yield profiler
    finally:
        disable_profiling()


def profile_report(limit: int | None = 25) -> str:
    """Format the most recent profiler's stats (raises if never enabled)."""
    if _PROFILER is None:
        raise RuntimeError("profiling is not enabled; use profiled() or "
                           "enable_profiling() first")
    return _PROFILER.report(limit=limit)
