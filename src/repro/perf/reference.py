"""Reference mode: run the engine on the retained seed implementations.

The hot-path overhaul keeps every original kernel selectable so that the new
fast paths can be validated (equivalence tests) and measured (benchmarks)
against them.  :func:`reference_mode` flips all four knobs at once:

* scatter/segment kernels → ``np.add.at`` / ``np.maximum.at`` loops
  (:func:`repro.nn.scatter.scatter_backend`),
* fused ops → the composed multi-node chains
  (:func:`repro.nn.functional.set_fused_ops`),
* gradient accumulation → copy-per-hop
  (:func:`repro.nn.tensor.set_fast_accumulate`),
* hypergraph propagation operator → the seed's float64 CSR, which silently
  promoted the whole downstream forward to float64
  (:func:`repro.hypergraph.incidence.set_reference_dtype`).

Models must be *constructed* inside the context for the dtype knob to take
effect (the propagation operator is built at model construction).
"""

from __future__ import annotations

import contextlib

__all__ = ["reference_mode"]


@contextlib.contextmanager
def reference_mode():
    """Temporarily run on the seed implementations (see module docstring)."""
    from repro.hypergraph.incidence import reference_dtype_enabled, set_reference_dtype
    from repro.nn import functional as F
    from repro.nn.scatter import get_scatter_backend, set_scatter_backend
    from repro.nn.tensor import fast_accumulate_enabled, set_fast_accumulate

    previous = (get_scatter_backend(), F.fused_ops_enabled(),
                fast_accumulate_enabled(), reference_dtype_enabled())
    set_scatter_backend("reference")
    F.set_fused_ops(False)
    set_fast_accumulate(False)
    set_reference_dtype(True)
    try:
        yield
    finally:
        set_scatter_backend(previous[0])
        F.set_fused_ops(previous[1])
        set_fast_accumulate(previous[2])
        set_reference_dtype(previous[3])
