"""Hypergraph incidence structure.

A hypergraph over the item vocabulary is stored as a sparse incidence matrix
``H`` of shape ``(num_nodes, num_edges)`` with ``H[v, e] = 1`` when item ``v``
belongs to hyperedge ``e``, plus per-edge metadata (the behavior that created
the edge and the user it came from).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["Hypergraph", "hgnn_propagation_matrix", "set_reference_dtype",
           "reference_dtype_enabled"]

# When True, hgnn_propagation_matrix returns its float64 assembly unchanged,
# reproducing the seed implementation (whose float64 CSR silently promoted the
# whole downstream forward).  Flipped by repro.perf.reference_mode so the
# benchmark baseline measures the true seed path; never enable in training.
_REFERENCE_DTYPE = False


def set_reference_dtype(enabled: bool) -> None:
    """Toggle the seed's float64 propagation-operator behavior (perf baseline)."""
    global _REFERENCE_DTYPE
    _REFERENCE_DTYPE = bool(enabled)


def reference_dtype_enabled() -> bool:
    """Return True when the seed float64 operator behavior is active."""
    return _REFERENCE_DTYPE


@dataclass
class Hypergraph:
    """Incidence matrix plus edge metadata.

    Attributes:
        incidence: ``(num_nodes, num_edges)`` CSR binary matrix.  Node index
            equals item id (index 0 is the padding item and never appears in
            an edge).
        edge_behavior: ``(num_edges,)`` behavior-type id of each hyperedge.
        edge_user: ``(num_edges,)`` the user whose history created the edge
            (-1 for global edges).
    """

    incidence: sp.csr_matrix
    edge_behavior: np.ndarray
    edge_user: np.ndarray

    def __post_init__(self) -> None:
        edges = self.incidence.shape[1]
        if self.edge_behavior.shape != (edges,):
            raise ValueError("edge_behavior length must equal number of edges")
        if self.edge_user.shape != (edges,):
            raise ValueError("edge_user length must equal number of edges")

    @property
    def num_nodes(self) -> int:
        return self.incidence.shape[0]

    @property
    def num_edges(self) -> int:
        return self.incidence.shape[1]

    def node_degrees(self) -> np.ndarray:
        """Number of hyperedges each node belongs to."""
        return np.asarray(self.incidence.sum(axis=1)).ravel()

    def edge_sizes(self) -> np.ndarray:
        """Number of member nodes of each hyperedge."""
        return np.asarray(self.incidence.sum(axis=0)).ravel()

    def coo_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """(node_index, edge_index) arrays of all memberships (COO order)."""
        coo = self.incidence.tocoo()
        return coo.row, coo.col

    def to_networkx(self):
        """The bipartite expansion as a ``networkx.Graph``.

        Item nodes are the integers ``0..num_nodes-1``; hyperedge nodes are
        strings ``"e<i>"`` carrying ``behavior`` and ``user`` attributes.
        Intended for offline analysis (connectivity, component structure),
        not for message passing.
        """
        import networkx as nx
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_nodes), kind="item")
        for edge in range(self.num_edges):
            graph.add_node(f"e{edge}", kind="hyperedge",
                           behavior=int(self.edge_behavior[edge]),
                           user=int(self.edge_user[edge]))
        rows, cols = self.coo_pairs()
        graph.add_edges_from((int(v), f"e{e}") for v, e in zip(rows, cols))
        return graph

    def connected_item_fraction(self) -> float:
        """Fraction of item nodes reachable from the largest component.

        A diagnostic for hypergraph construction: low values mean the graph
        is fragmented and message passing cannot bridge users/behaviors.
        """
        import networkx as nx
        graph = self.to_networkx()
        items_with_edges = [n for n in graph.nodes
                            if graph.nodes[n].get("kind") == "item"
                            and graph.degree(n) > 0]
        if not items_with_edges:
            return 0.0
        largest = max(nx.connected_components(graph), key=len)
        covered = sum(1 for n in items_with_edges if n in largest)
        return covered / max(1, self.num_nodes - 1)  # exclude the padding node

    def restrict_edges(self, keep: np.ndarray) -> "Hypergraph":
        """Sub-hypergraph with only the selected edges (boolean or index array)."""
        keep = np.asarray(keep)
        if keep.dtype == bool:
            keep = np.flatnonzero(keep)
        return Hypergraph(
            incidence=self.incidence[:, keep].tocsr(),
            edge_behavior=self.edge_behavior[keep],
            edge_user=self.edge_user[keep],
        )


def hgnn_propagation_matrix(graph: Hypergraph, edge_weights: np.ndarray | None = None
                            ) -> sp.csr_matrix:
    """The symmetric HGNN operator ``Dv^-1/2 H W De^-1 H^T Dv^-1/2``.

    Isolated nodes (degree 0, e.g. the padding row) receive zero rows, which
    leaves their embeddings untouched when the layer adds a residual.

    The operator is assembled in float64 for accuracy but returned in the
    active :func:`repro.nn.tensor.get_default_dtype` — a float64 CSR here
    would silently promote every downstream ``sparse_mm`` (and the entire
    model forward fed by the enhanced item table) to float64.  Gradcheck
    mode sets the default dtype to float64 and keeps full precision.
    """
    h = graph.incidence.astype(np.float64)
    num_edges = graph.num_edges
    if edge_weights is None:
        edge_weights = np.ones(num_edges)
    node_deg = np.asarray(h.sum(axis=1)).ravel()
    edge_deg = np.asarray(h.sum(axis=0)).ravel()
    inv_sqrt_nd = np.where(node_deg > 0, 1.0 / np.sqrt(np.maximum(node_deg, 1e-12)), 0.0)
    inv_ed = np.where(edge_deg > 0, 1.0 / np.maximum(edge_deg, 1e-12), 0.0)
    dv = sp.diags(inv_sqrt_nd)
    de = sp.diags(inv_ed * edge_weights)
    operator = (dv @ h @ de @ h.T @ dv).tocsr()
    if _REFERENCE_DTYPE:
        return operator
    from repro.nn.tensor import get_default_dtype
    return operator.astype(get_default_dtype())
