"""Spectral hypergraph convolution (HGNN, Feng et al. 2019).

The simpler, non-attentive propagation rule — used both as an ablation
reference inside MISSL ("replace the hypergraph transformer with plain HGNN")
and as part of the MB-HT-lite baseline.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor

from .incidence import Hypergraph, hgnn_propagation_matrix
from .ops import sparse_mm

__all__ = ["HGNNConv", "HGNNEncoder"]


class HGNNConv(Module):
    """One HGNN layer: ``X' = X + Drop(Act(P X W))`` with ``P`` precomputed.

    The residual connection keeps isolated nodes (padding item) unchanged and
    stabilizes deep stacks.
    """

    def __init__(self, dim: int, graph: Hypergraph, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        self.propagation: sp.csr_matrix = hgnn_propagation_matrix(graph)
        self.linear = Linear(dim, dim, rng)
        self.norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor) -> Tensor:
        propagated = sparse_mm(self.propagation, x)
        return self.norm(x + self.dropout(self.linear(propagated).relu()))


class HGNNEncoder(Module):
    """A stack of HGNN convolutions over the item-node embedding table."""

    def __init__(self, dim: int, graph: Hypergraph, num_layers: int,
                 rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        from repro.nn.module import ModuleList
        self.layers = ModuleList([
            HGNNConv(dim, graph, rng, dropout=dropout) for _ in range(num_layers)
        ])

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
