"""Hypergraph transformer: attention-based node ↔ hyperedge message passing.

The core structural encoder of MISSL.  Each layer runs two attention phases
over the incidence structure:

1. **node → edge**: every hyperedge attends over its member items to build an
   edge representation (seeded by the mean of its members plus a learned
   behavior-type embedding, so "view edges" and "buy edges" aggregate
   differently).
2. **edge → node**: every item attends over its incident hyperedges to update
   its representation, letting signal flow across behaviors (via the
   cross-behavior user edges) and across users (via shared items).

Attention over the ragged incidence structure is computed on the COO
membership pairs with :func:`~repro.hypergraph.ops.segment_softmax`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.nn import functional as F
from repro.nn.layers import Dropout, FeedForward, LayerNorm, Linear
from repro.nn.layers import Embedding
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor

from repro.nn.scatter import SegmentPlan
from repro.nn.tensor import get_default_dtype

from .builder import CROSS_BEHAVIOR_EDGE
from .incidence import Hypergraph, hgnn_propagation_matrix
from .ops import segment_softmax, segment_sum, sparse_mm

__all__ = ["HypergraphTransformerLayer", "HypergraphTransformer"]


def _edge_mean_matrix(graph: Hypergraph) -> sp.csr_matrix:
    """``De^-1 H^T``: averages member-node features into each edge.

    Computed in float64 for accuracy, then cast to the active default dtype so
    ``sparse_mm`` does not silently promote the whole encoder to float64.
    """
    h = graph.incidence.astype(np.float64)
    sizes = np.asarray(h.sum(axis=0)).ravel()
    inv = np.where(sizes > 0, 1.0 / np.maximum(sizes, 1e-12), 0.0)
    return (sp.diags(inv) @ h.T).tocsr().astype(get_default_dtype())


class HypergraphTransformerLayer(Module):
    """One round of node→edge→node attention with residual + FFN."""

    def __init__(self, dim: int, graph: Hypergraph, num_edge_types: int,
                 rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.dim = dim
        self.node_index, self.edge_index = graph.coo_pairs()
        self.num_nodes = graph.num_nodes
        self.num_edges = graph.num_edges
        # The COO index arrays are static, so the segment kernels' sort is
        # precomputed once per layer instead of once per call.
        self._node_plan = SegmentPlan(self.node_index, self.num_nodes)
        self._edge_plan = SegmentPlan(self.edge_index, self.num_edges)
        self.edge_mean = _edge_mean_matrix(graph)
        # Behavior-type id per edge; the cross-behavior sentinel maps to the
        # last row of the type embedding table.
        types = graph.edge_behavior.copy()
        types[types == CROSS_BEHAVIOR_EDGE] = num_edge_types - 1
        self.edge_type = types
        self.type_embedding = Embedding(num_edge_types, dim, rng)

        scale = 1.0 / np.sqrt(dim)
        self._scale = scale
        # node→edge attention projections
        self.n2e_query = Linear(dim, dim, rng, bias=False)
        self.n2e_key = Linear(dim, dim, rng, bias=False)
        self.n2e_value = Linear(dim, dim, rng, bias=False)
        # edge→node attention projections
        self.e2n_query = Linear(dim, dim, rng, bias=False)
        self.e2n_key = Linear(dim, dim, rng, bias=False)
        self.e2n_value = Linear(dim, dim, rng, bias=False)

        self.ffn_norm = LayerNorm(dim)
        self.ffn = FeedForward(dim, 2 * dim, rng, dropout=dropout)
        self.dropout = Dropout(dropout, rng)
        # Three gated residual terms, strongest first:
        #   prop_gate — plain symmetric-normalized propagation (HGNN smoothing,
        #       parameter-free), the reliably useful signal; starts at 0.5.
        #   attn_gate — the learned node↔edge attention refinement; starts
        #       small (0.1) so its early-training noise cannot wash out item
        #       identity.
        #   ffn_gate — position-wise transformation, also starts small.
        # All three are learned scalars, so the layer can interpolate between
        # "pure smoothing" and "full transformer" as the data demands.
        self.propagation = hgnn_propagation_matrix(graph)
        from repro.nn.module import Parameter
        self.prop_gate = Parameter(np.array(0.5))
        self.attn_gate = Parameter(np.array(0.1))
        self.ffn_gate = Parameter(np.array(0.1))

    def forward(self, x: Tensor) -> Tensor:
        """Update node features ``x`` of shape ``(num_nodes, dim)``."""
        node_idx, edge_idx = self.node_index, self.edge_index
        # Edge seed: mean of members + behavior-type embedding.
        edge_seed = sparse_mm(self.edge_mean, x) + self.type_embedding(self.edge_type)

        # Phase 1: edges attend over member nodes.
        queries = self.n2e_query(edge_seed)          # (E, D)
        keys = self.n2e_key(x)                       # (V, D)
        values = self.n2e_value(x)                   # (V, D)
        scores = (queries[edge_idx] * keys[node_idx]).sum(axis=-1) * self._scale
        alpha = segment_softmax(scores, edge_idx, self.num_edges, plan=self._edge_plan)
        edge_repr = segment_sum(values[node_idx] * alpha.expand_dims(-1),
                                edge_idx, self.num_edges, plan=self._edge_plan)
        edge_repr = edge_repr + edge_seed            # residual keeps empty edges sane

        # Phase 2: nodes attend over incident edges.
        node_queries = self.e2n_query(x)             # (V, D)
        edge_keys = self.e2n_key(edge_repr)          # (E, D)
        edge_values = self.e2n_value(edge_repr)      # (E, D)
        scores = (node_queries[node_idx] * edge_keys[edge_idx]).sum(axis=-1) * self._scale
        beta = segment_softmax(scores, node_idx, self.num_nodes, plan=self._node_plan)
        node_update = segment_sum(edge_values[edge_idx] * beta.expand_dims(-1),
                                  node_idx, self.num_nodes, plan=self._node_plan)

        x = x + self.prop_gate * sparse_mm(self.propagation, x)
        x = x + self.attn_gate * self.dropout(node_update)
        x = x + self.ffn_gate * self.dropout(self.ffn(self.ffn_norm(x)))
        return x


class HypergraphTransformer(Module):
    """Stack of hypergraph transformer layers over the item embedding table.

    ``num_edge_types`` is ``schema.num_behaviors + 1`` (the +1 hosts the
    cross-behavior user edges).
    """

    def __init__(self, dim: int, graph: Hypergraph, num_edge_types: int, num_layers: int,
                 rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.layers = ModuleList([
            HypergraphTransformerLayer(dim, graph, num_edge_types, rng, dropout=dropout)
            for _ in range(num_layers)
        ])

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
