"""``repro.hypergraph`` — hypergraph substrate for MISSL's structural encoder."""

from .builder import CROSS_BEHAVIOR_EDGE, BuilderConfig, build_hypergraph
from .hgnn import HGNNConv, HGNNEncoder
from .incidence import Hypergraph, hgnn_propagation_matrix
from .ops import segment_max, segment_softmax, segment_sum, sparse_mm
from .transformer import HypergraphTransformer, HypergraphTransformerLayer

__all__ = [
    "Hypergraph", "hgnn_propagation_matrix",
    "BuilderConfig", "build_hypergraph", "CROSS_BEHAVIOR_EDGE",
    "sparse_mm", "segment_sum", "segment_softmax", "segment_max",
    "HGNNConv", "HGNNEncoder",
    "HypergraphTransformer", "HypergraphTransformerLayer",
]
