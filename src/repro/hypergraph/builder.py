"""Hypergraph construction from multi-behavior interaction histories.

Two families of hyperedges, following the multi-behavior hypergraph
literature (MB-HT, MISSL):

* **Behavior-sequence edges** — for every (user, behavior), consecutive
  windows of the user's behavior sequence form hyperedges.  These capture
  within-behavior co-occurrence ("items browsed together").
* **Cross-behavior user edges** — for every user, one hyperedge joins the
  items of *all* of the user's behaviors.  These let the sparse target
  behavior borrow signal from dense auxiliary behaviors of the same user.

The graph must be built from **training data only**: pass the number of
trailing target-behavior events to exclude (2 for the leave-one-out
valid+test items) so no test signal leaks into item representations.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import MultiBehaviorDataset
from repro.obs import span

from .incidence import Hypergraph

__all__ = ["build_hypergraph", "BuilderConfig"]

CROSS_BEHAVIOR_EDGE = -1
"""Sentinel used in ``edge_behavior`` for cross-behavior user edges."""


class BuilderConfig:
    """Construction knobs.

    Attributes:
        window: behavior-sequence edges cover non-overlapping windows of this
            many consecutive events (None = one edge per whole sequence).
        min_edge_size: hyperedges with fewer distinct items are dropped
            (singleton edges carry no co-occurrence signal).
        include_cross_behavior: emit the per-user cross-behavior edges.
        holdout_targets: number of trailing target-behavior events per user
            to exclude (leave-one-out leakage guard).
    """

    def __init__(self, window: int | None = 10, min_edge_size: int = 2,
                 include_cross_behavior: bool = True, holdout_targets: int = 2):
        if window is not None and window < 2:
            raise ValueError("window must be at least 2 (or None)")
        if min_edge_size < 2:
            raise ValueError("min_edge_size must be at least 2")
        self.window = window
        self.min_edge_size = min_edge_size
        self.include_cross_behavior = include_cross_behavior
        self.holdout_targets = holdout_targets


def build_hypergraph(dataset: MultiBehaviorDataset, config: BuilderConfig | None = None
                     ) -> Hypergraph:
    """Build the training hypergraph over items ``0..num_items`` (0 isolated)."""
    with span("hypergraph.build", users=len(dataset.users),
              items=dataset.num_items) as build_span:
        graph = _build_hypergraph(dataset, config)
        build_span.set(edges=graph.num_edges)
        return graph


def _build_hypergraph(dataset: MultiBehaviorDataset,
                      config: BuilderConfig | None) -> Hypergraph:
    config = config or BuilderConfig()
    schema = dataset.schema
    rows: list[int] = []
    cols: list[int] = []
    edge_behavior: list[int] = []
    edge_user: list[int] = []
    edge_count = 0

    def add_edge(items: set[int], behavior_id: int, user: int) -> None:
        nonlocal edge_count
        if len(items) < config.min_edge_size:
            return
        for item in items:
            rows.append(item)
            cols.append(edge_count)
        edge_behavior.append(behavior_id)
        edge_user.append(user)
        edge_count += 1

    for user in dataset.users:
        holdout_cutoff = None
        target_seq = dataset.sequence_with_times(user, schema.target)
        if config.holdout_targets > 0 and len(target_seq) > config.holdout_targets:
            holdout_cutoff = target_seq[-config.holdout_targets][1]

        user_items: set[int] = set()
        for behavior in schema.behaviors:
            sequence = [
                item for item, ts in dataset.sequence_with_times(user, behavior)
                if holdout_cutoff is None or ts < holdout_cutoff
            ]
            user_items.update(sequence)
            if not sequence:
                continue
            behavior_id = schema.behavior_id(behavior)
            if config.window is None:
                add_edge(set(sequence), behavior_id, user)
            else:
                for start in range(0, len(sequence), config.window):
                    add_edge(set(sequence[start:start + config.window]), behavior_id, user)
        if config.include_cross_behavior:
            add_edge(user_items, CROSS_BEHAVIOR_EDGE, user)

    num_nodes = dataset.num_items + 1  # index 0 = padding, stays isolated
    incidence = sp.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(num_nodes, max(edge_count, 1))
    )
    if edge_count == 0:
        edge_behavior = [CROSS_BEHAVIOR_EDGE]
        edge_user = [-1]
    return Hypergraph(
        incidence=incidence,
        edge_behavior=np.array(edge_behavior, dtype=np.int64),
        edge_user=np.array(edge_user, dtype=np.int64),
    )
