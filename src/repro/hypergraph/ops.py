"""Differentiable sparse/segment primitives for hypergraph message passing.

Three custom autodiff ops bridge scipy-sparse structures into the
:mod:`repro.nn` graph:

* :func:`sparse_mm` — multiply a **constant** sparse matrix with a dense
  tensor (backward: transpose-multiply).
* :func:`segment_sum` — scatter-add rows into groups (backward: gather).
* :func:`segment_softmax` — softmax over variable-size groups, the core of
  attention on incidence structures (backward: per-group softmax Jacobian).

All segment kernels are scatter-free on the fast backend (sort +
``reduceat`` / ``bincount``; see :mod:`repro.nn.scatter`) and accept an
optional precomputed :class:`~repro.nn.scatter.SegmentPlan` so static index
structures (the incidence COO pairs, identical every step) pay for their
sort exactly once.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.nn.scatter import (SegmentPlan, scatter_add_1d, scatter_add_rows,
                              segment_max_1d)
from repro.nn.tensor import Tensor

__all__ = ["sparse_mm", "segment_sum", "segment_softmax", "segment_max",
           "SegmentPlan"]


def sparse_mm(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """``matrix @ x`` where ``matrix`` is a constant scipy sparse matrix.

    ``x`` is ``(N, D)``; the result is ``(M, D)`` for an ``(M, N)`` matrix.
    """
    matrix = matrix.tocsr()
    if matrix.shape[1] != x.shape[0]:
        raise ValueError(f"shape mismatch: {matrix.shape} @ {x.shape}")
    out = Tensor._make(np.asarray(matrix @ x.data), (x,), "sparse_mm")
    if out.requires_grad:
        # Cache the transpose on the matrix object: layers call sparse_mm
        # with the same constant matrix every step.
        transposed = getattr(matrix, "_repro_transpose_cache", None)
        if transposed is None:
            transposed = matrix.T.tocsr()
            matrix._repro_transpose_cache = transposed

        def _backward() -> None:
            x._accumulate(np.asarray(transposed @ out.grad))
        out._backward = _backward
    return out


def _check_segments(segment_ids: np.ndarray, num_segments: int,
                    plan: SegmentPlan | None) -> np.ndarray:
    if plan is not None:
        if plan.num_segments != num_segments or plan.segment_ids.size != np.asarray(segment_ids).size:
            raise ValueError("segment plan does not match segment_ids")
        return plan.segment_ids
    segment_ids = np.asarray(segment_ids)
    if segment_ids.ndim != 1:
        raise ValueError("segment_ids must be 1-D")
    if segment_ids.size and (segment_ids.min() < 0 or segment_ids.max() >= num_segments):
        raise ValueError("segment id out of range")
    return segment_ids


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int,
                plan: SegmentPlan | None = None) -> Tensor:
    """Sum rows of ``values`` ``(N, ...)`` into ``num_segments`` groups."""
    segment_ids = _check_segments(segment_ids, num_segments, plan)
    out_data = scatter_add_rows(segment_ids, values.data, num_segments, plan=plan)
    out = Tensor._make(out_data, (values,), "segment_sum")
    if out.requires_grad:
        def _backward() -> None:
            values._accumulate(out.grad[segment_ids])
        out._backward = _backward
    return out


def segment_max(values: np.ndarray, segment_ids: np.ndarray, num_segments: int,
                plan: SegmentPlan | None = None) -> np.ndarray:
    """Per-segment maximum of a raw 1-D array (non-differentiable helper)."""
    return segment_max_1d(values, segment_ids, num_segments, plan=plan)


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int,
                    plan: SegmentPlan | None = None) -> Tensor:
    """Softmax of 1-D ``scores`` within each segment.

    Entries sharing a segment id compete in one softmax; the output sums to 1
    within every non-empty segment.  Numerically stabilized with a per-segment
    max shift.
    """
    segment_ids = _check_segments(segment_ids, num_segments, plan)
    if scores.ndim != 1:
        raise ValueError("segment_softmax expects 1-D scores")
    shift = segment_max_1d(scores.data, segment_ids, num_segments, plan=plan)
    exp = np.exp(scores.data - shift[segment_ids])
    denom = scatter_add_1d(segment_ids, exp, num_segments)
    value = exp / denom[segment_ids]
    out = Tensor._make(value, (scores,), "segment_softmax")
    if out.requires_grad:
        def _backward() -> None:
            g = out.grad
            s = out.data
            weighted = scatter_add_1d(segment_ids, g * s, num_segments)
            scores._accumulate(s * (g - weighted[segment_ids]))
        out._backward = _backward
    return out
