"""Loss functions: cross-entropy, BPR, and InfoNCE contrastive losses."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = [
    "cross_entropy",
    "cross_entropy_with_candidates",
    "bpr_loss",
    "info_nce",
    "info_nce_from_logits",
]


def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: int | None = None,
                  label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy of ``logits`` ``(N, C)`` against integer ``targets`` ``(N,)``.

    Rows whose target equals ``ignore_index`` contribute nothing to the mean.
    ``label_smoothing`` mixes the one-hot target with the uniform distribution.
    """
    return F.softmax_cross_entropy(logits, targets, ignore_index=ignore_index,
                                   label_smoothing=label_smoothing)


def cross_entropy_with_candidates(scores: Tensor, positive_column: int = 0) -> Tensor:
    """Softmax CE over per-row candidate scores ``(N, 1 + num_negatives)``.

    The standard sampled-softmax objective for next-item prediction: column
    ``positive_column`` holds the positive item's score.
    """
    targets = np.full(scores.shape[0], positive_column, dtype=np.int64)
    return F.softmax_cross_entropy(scores, targets)


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Bayesian personalized ranking: -mean log σ(pos - neg), broadcastable."""
    diff = pos_scores - neg_scores
    # -log σ(x) = softplus(-x); computed stably.
    x = -diff
    loss = F.relu(x) + ((-(x.abs())).exp() + 1.0).log()
    return loss.mean()


def info_nce(anchor: Tensor, positive: Tensor, temperature: float = 0.2,
             normalize: bool = True) -> Tensor:
    """Symmetric in-batch InfoNCE between aligned rows of two ``(N, D)`` views.

    Row i of ``anchor`` and row i of ``positive`` are a positive pair; every
    other row of the opposite view is a negative.  Returns the mean of the
    two directional losses.
    """
    if anchor.shape != positive.shape:
        raise ValueError(f"view shapes differ: {anchor.shape} vs {positive.shape}")
    if normalize:
        anchor = F.l2_normalize(anchor, axis=-1)
        positive = F.l2_normalize(positive, axis=-1)
    logits = (anchor @ positive.T) * (1.0 / temperature)  # (N, N)
    n = logits.shape[0]
    labels = np.arange(n, dtype=np.intp)
    loss_ab = cross_entropy(logits, labels)
    loss_ba = cross_entropy(logits.T, labels)
    return (loss_ab + loss_ba) * 0.5


def info_nce_from_logits(logits: Tensor, positive_index: np.ndarray,
                         temperature: float = 1.0) -> Tensor:
    """InfoNCE where the caller pre-computed a similarity matrix.

    ``logits`` is ``(N, M)``; ``positive_index[i]`` names the positive column
    for row i.  Temperature is applied here for convenience.
    """
    scaled = logits * (1.0 / temperature)
    return cross_entropy(scaled, np.asarray(positive_index))
