"""Functional neural-network operations on :class:`~repro.nn.tensor.Tensor`.

Stateless counterparts of the layers in :mod:`repro.nn.layers`.  The hot-path
primitives — softmax, masked softmax, layer norm, GELU and softmax
cross-entropy — are implemented as **fused** single-node autodiff ops: one
graph node with a hand-derived backward instead of a chain of elementwise
nodes.  This cuts graph-node count, closure overhead and temporary
allocations on every attention layer, feed-forward block and loss call.

The original composed implementations are retained and selectable with
:func:`set_fused_ops` (used by ``repro.perf.reference_mode`` and the
equivalence tests).
"""

from __future__ import annotations

import contextlib

import numpy as np

from .tensor import Tensor, unbroadcast

__all__ = [
    "softmax",
    "log_softmax",
    "masked_softmax",
    "layer_norm",
    "softmax_cross_entropy",
    "relu",
    "gelu",
    "sigmoid",
    "tanh",
    "dropout",
    "l2_normalize",
    "cosine_similarity",
    "set_fused_ops",
    "fused_ops_enabled",
    "fused_ops",
]

_NEG_INF = -1e9

_FUSED = True


def set_fused_ops(enabled: bool) -> None:
    """Toggle fused kernels globally; False falls back to composed ops."""
    global _FUSED
    _FUSED = bool(enabled)


def fused_ops_enabled() -> bool:
    """Return True when the fused single-node kernels are active."""
    return _FUSED


@contextlib.contextmanager
def fused_ops(enabled: bool):
    """Temporarily enable/disable fused kernels (tests and benchmarks)."""
    previous = _FUSED
    set_fused_ops(enabled)
    try:
        yield
    finally:
        set_fused_ops(previous)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` (fused forward/backward)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    value = exp / exp.sum(axis=axis, keepdims=True)
    out = Tensor._make(value, (x,), "softmax")
    if out.requires_grad:
        def _backward() -> None:
            g = out.grad
            s = out.data
            inner = (g * s).sum(axis=axis, keepdims=True)
            x._accumulate(s * (g - inner))
        out._backward = _backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    value = shifted - log_sum
    out = Tensor._make(value, (x,), "log_softmax")
    if out.requires_grad:
        def _backward() -> None:
            g = out.grad
            softmax_value = np.exp(out.data)
            x._accumulate(g - softmax_value * g.sum(axis=axis, keepdims=True))
        out._backward = _backward
    return out


def masked_softmax(x: Tensor, mask: np.ndarray | None, axis: int = -1,
                   neg: float = _NEG_INF) -> Tensor:
    """Softmax over ``x`` with ``mask`` positions (True = block) zeroed out.

    Equivalent to ``softmax(x.masked_fill(mask, neg), axis)`` but fused into
    one graph node: the fill, the softmax and the mask's gradient gate share
    a single backward.  ``mask`` is boolean, broadcastable to ``x``.
    """
    if mask is None:
        return softmax(x, axis=axis)
    mask = mask.data if isinstance(mask, Tensor) else np.asarray(mask)
    mask = mask.astype(bool)
    if not _FUSED:
        return softmax(x.masked_fill(mask, neg), axis=axis)
    filled = np.where(mask, np.asarray(neg, dtype=x.data.dtype), x.data)
    shifted = filled - filled.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    value = exp / exp.sum(axis=axis, keepdims=True)
    out = Tensor._make(value, (x,), "masked_softmax")
    if out.requires_grad:
        def _backward() -> None:
            g = out.grad
            s = out.data
            inner = (g * s).sum(axis=axis, keepdims=True)
            grad = s * (g - inner)
            grad = grad * ~mask  # no gradient flows into blocked positions
            x._accumulate(unbroadcast(grad, x.shape))
        out._backward = _backward
    return out


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis: ``(x - μ)/σ · γ + β``.

    Fused single-node forward/backward; the composed fallback reproduces the
    seed's 10-node chain (mean, center, var, sqrt, div, scale, shift).
    """
    if not _FUSED:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + eps).sqrt()
        return normalized * gamma + beta
    data = x.data
    mean = data.mean(axis=-1, keepdims=True)
    centered = data - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(variance + eps)
    normalized = centered * inv_std
    value = normalized * gamma.data + beta.data
    out = Tensor._make(value, (x, gamma, beta), "layer_norm")
    if out.requires_grad:
        def _backward() -> None:
            g = out.grad
            if gamma.requires_grad:
                gamma._accumulate(unbroadcast(g * normalized, gamma.shape))
            if beta.requires_grad:
                beta._accumulate(unbroadcast(g, beta.shape))
            if x.requires_grad:
                g_norm = g * gamma.data
                mean_g = g_norm.mean(axis=-1, keepdims=True)
                mean_gx = (g_norm * normalized).mean(axis=-1, keepdims=True)
                x._accumulate(inv_std * (g_norm - mean_g - normalized * mean_gx))
        out._backward = _backward
    return out


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray,
                          ignore_index: int | None = None,
                          label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy of ``logits`` ``(N, C)`` against integer targets.

    Fused softmax + negative log-likelihood: one graph node whose backward
    is the classic ``(p - q) / count`` rule (``q`` mixes the one-hot target
    with the uniform distribution under label smoothing).  Rows whose target
    equals ``ignore_index`` contribute nothing.
    """
    targets = np.asarray(targets.data if isinstance(targets, Tensor) else targets)
    if logits.ndim != 2:
        raise ValueError(f"expected 2-D logits, got shape {logits.shape}")
    n, c = logits.shape
    keep = np.ones(n, dtype=bool) if ignore_index is None else targets != ignore_index
    count = int(keep.sum())
    if count == 0:
        raise ValueError("all targets are ignored; cannot compute a loss")
    safe_targets = np.where(keep, targets, 0)

    if not _FUSED:
        log_probs = log_softmax(logits, axis=-1)
        weights = keep.astype(log_probs.data.dtype) / count
        picked = log_probs[np.arange(n, dtype=np.intp), safe_targets]
        nll = -(picked * Tensor(weights)).sum()
        if label_smoothing <= 0.0:
            return nll
        uniform = -(log_probs * Tensor(weights[:, None] / c)).sum()
        return nll * (1.0 - label_smoothing) + uniform * label_smoothing

    data = logits.data
    shifted = data - data.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    sum_exp = exp.sum(axis=-1, keepdims=True)
    log_probs = shifted - np.log(sum_exp)
    rows = np.arange(n, dtype=np.intp)
    weights = keep.astype(data.dtype) / count
    loss = -float(log_probs[rows, safe_targets] @ weights)
    if label_smoothing > 0.0:
        uniform = -float((log_probs * weights[:, None]).sum()) / c
        loss = loss * (1.0 - label_smoothing) + uniform * label_smoothing
    out = Tensor._make(np.asarray(loss, dtype=data.dtype), (logits,), "softmax_xent")
    if out.requires_grad:
        def _backward() -> None:
            probs = exp / sum_exp
            if label_smoothing > 0.0:
                grad = probs - (label_smoothing / c)
                grad[rows, safe_targets] -= 1.0 - label_smoothing
            else:
                grad = probs
                grad[rows, safe_targets] -= 1.0
            grad *= (float(out.grad) * weights)[:, None]
            logits._accumulate(grad)
        out._backward = _backward
    return out


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit: max(x, 0)."""
    return x.relu()


_GELU_C = float(np.sqrt(2.0 / np.pi))
_GELU_A = 0.044715


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation, as in BERT/GPT).

    Fused into one node; the composed fallback is the seed's 8-op chain.
    """
    if not _FUSED:
        inner = (x + x * x * x * _GELU_A) * _GELU_C
        return x * 0.5 * (inner.tanh() + 1.0)
    u = x.data
    t = np.tanh(_GELU_C * (u + _GELU_A * u * u * u))
    value = 0.5 * u * (1.0 + t)
    out = Tensor._make(value, (x,), "gelu")
    if out.requires_grad:
        def _backward() -> None:
            d_inner = _GELU_C * (1.0 + 3.0 * _GELU_A * u * u)
            local = 0.5 * (1.0 + t) + 0.5 * u * (1.0 - t * t) * d_inner
            x._accumulate(out.grad * local)
        out._backward = _backward
    return out


def sigmoid(x: Tensor) -> Tensor:
    """Logistic function 1 / (1 + exp(-x))."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero with probability ``p`` and rescale by 1/(1-p).

    Fused into one node holding a boolean keep-mask; the composed fallback is
    the seed's float-mask multiply.  Both paths draw the same float64
    uniforms, so a given generator state produces the identical mask (and
    identical training trajectory) on either path.
    """
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not _FUSED:
        mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
        return x * Tensor(mask)
    keep = rng.random(x.shape) >= p
    scale = 1.0 / (1.0 - p)
    value = x.data * keep
    value *= scale
    out = Tensor._make(value, (x,), "dropout")
    if out.requires_grad:
        def _backward() -> None:
            grad = out.grad * keep
            grad *= scale
            x._accumulate(grad)
        out._backward = _backward
    return out


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalize ``x`` to unit L2 norm along ``axis``.

    The squared norm is clamped from below by ``eps`` rather than shifted by
    it: adding ``eps`` inside the square root biases small-magnitude rows (a
    float32 row of 1e-5s has squared norm ~1e-10, comparable to the shift),
    while clamping leaves every row with squared norm above ``eps`` exactly
    unit and keeps the zero-row gradient finite.
    """
    from .tensor import maximum
    squared = (x * x).sum(axis=axis, keepdims=True)
    norm = maximum(squared, Tensor(np.asarray(eps, dtype=x.data.dtype))).sqrt()
    return x / norm


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Cosine similarity between broadcastable tensors ``a`` and ``b``."""
    return (l2_normalize(a, axis=axis) * l2_normalize(b, axis=axis)).sum(axis=axis)
