"""Functional neural-network operations on :class:`~repro.nn.tensor.Tensor`.

Stateless counterparts of the layers in :mod:`repro.nn.layers`.  The softmax
family is implemented as fused primitives (single graph node) because they sit
on the hot path of every attention layer.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "relu",
    "gelu",
    "sigmoid",
    "tanh",
    "dropout",
    "l2_normalize",
    "cosine_similarity",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` (fused forward/backward)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    value = exp / exp.sum(axis=axis, keepdims=True)
    out = Tensor._make(value, (x,), "softmax")
    if out.requires_grad:
        def _backward() -> None:
            g = out.grad
            s = out.data
            inner = (g * s).sum(axis=axis, keepdims=True)
            x._accumulate(s * (g - inner))
        out._backward = _backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    value = shifted - log_sum
    out = Tensor._make(value, (x,), "log_softmax")
    if out.requires_grad:
        def _backward() -> None:
            g = out.grad
            softmax_value = np.exp(out.data)
            x._accumulate(g - softmax_value * g.sum(axis=axis, keepdims=True))
        out._backward = _backward
    return out


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit: max(x, 0)."""
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation, as in BERT/GPT)."""
    c = np.sqrt(2.0 / np.pi).astype(np.float64)
    inner = (x + x * x * x * 0.044715) * float(c)
    return x * 0.5 * (inner.tanh() + 1.0)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic function 1 / (1 + exp(-x))."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero with probability ``p`` and rescale by 1/(1-p)."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalize ``x`` to unit L2 norm along ``axis``."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norm


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Cosine similarity between broadcastable tensors ``a`` and ``b``."""
    return (l2_normalize(a, axis=axis) * l2_normalize(b, axis=axis)).sum(axis=axis)
