"""Parameter initialization schemes.

Each initializer fills a NumPy array in place from a caller-provided
``numpy.random.Generator`` so that model construction is fully reproducible
given a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normal_",
    "uniform_",
    "xavier_uniform_",
    "xavier_normal_",
    "kaiming_uniform_",
    "zeros_",
    "ones_",
]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer requires at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def normal_(array: np.ndarray, rng: np.random.Generator, std: float = 0.02, mean: float = 0.0) -> np.ndarray:
    """Fill with N(mean, std^2); the 0.02 default matches BERT-style tables."""
    array[...] = rng.normal(mean, std, size=array.shape).astype(array.dtype)
    return array


def uniform_(array: np.ndarray, rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Fill with U(low, high)."""
    array[...] = rng.uniform(low, high, size=array.shape).astype(array.dtype)
    return array


def xavier_uniform_(array: np.ndarray, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(±sqrt(6 / (fan_in + fan_out))) scaled by gain."""
    fan_in, fan_out = _fan_in_out(array.shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return uniform_(array, rng, -bound, bound)


def xavier_normal_(array: np.ndarray, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(array.shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return normal_(array, rng, std=std)


def kaiming_uniform_(array: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """He uniform: U(±sqrt(6 / fan_in)), for ReLU fan-in scaling."""
    fan_in, _ = _fan_in_out(array.shape)
    bound = np.sqrt(6.0 / fan_in)
    return uniform_(array, rng, -bound, bound)


def zeros_(array: np.ndarray) -> np.ndarray:
    """Fill with zeros."""
    array[...] = 0.0
    return array


def ones_(array: np.ndarray) -> np.ndarray:
    """Fill with ones."""
    array[...] = 1.0
    return array
