"""``repro.nn`` — a from-scratch NumPy deep-learning substrate.

This package replaces PyTorch for this reproduction (no GPU frameworks are
available offline).  It provides reverse-mode autodiff (:mod:`.tensor`),
modules and layers (:mod:`.module`, :mod:`.layers`, :mod:`.attention`,
:mod:`.transformer`, :mod:`.rnn`), losses (:mod:`.losses`), optimizers
(:mod:`.optim`) and LR schedules (:mod:`.schedule`).
"""

from . import functional, init
from .attention import (AdditiveAttentionPool, MultiHeadAttention, make_causal_mask,
                        make_padding_mask, scaled_dot_product_attention)
from .layers import (Dropout, Embedding, FeedForward, LayerNorm, Linear,
                     SinusoidalPositionalEncoding)
from .losses import (bpr_loss, cross_entropy, cross_entropy_with_candidates, info_nce,
                     info_nce_from_logits)
from .module import Module, ModuleList, Parameter, Sequential
from .optim import (SGD, Adagrad, Adam, AdamW, Optimizer, RMSprop,
                    assign_flat_gradients, clip_grad_norm, gather_flat_gradients)
from .rnn import GRU, GRUCell
from .sanitizer import (GradSanitizer, InplaceMutationError, NonFiniteOriginError,
                        disable_sanitizer, enable_sanitizer, get_sanitizer,
                        sanitized)
from .scatter import (SegmentPlan, get_scatter_backend, scatter_backend,
                      set_scatter_backend)
from .schedule import ConstantLR, LRSchedule, StepDecay, WarmupCosine
from .serialization import load_checkpoint, save_checkpoint
# NOTE: the `tensor(...)` factory function is deliberately NOT re-exported:
# it would shadow the `repro.nn.tensor` submodule in `import repro.nn.tensor
# as t` resolution.  Use `Tensor(...)` or `repro.nn.tensor.tensor(...)`.
from .tensor import (Tensor, arange, concatenate, get_default_dtype, is_grad_enabled,
                     maximum, minimum, no_grad, ones, ones_like, set_default_dtype, stack,
                     where, zeros, zeros_like)
from .transformer import TransformerEncoder, TransformerEncoderLayer

__all__ = [
    "functional", "init",
    "Tensor", "zeros", "ones", "zeros_like", "ones_like", "arange",
    "concatenate", "stack", "where", "maximum", "minimum",
    "no_grad", "is_grad_enabled", "set_default_dtype", "get_default_dtype",
    "Module", "ModuleList", "Parameter", "Sequential",
    "Linear", "Embedding", "LayerNorm", "Dropout", "FeedForward",
    "SinusoidalPositionalEncoding",
    "MultiHeadAttention", "AdditiveAttentionPool", "scaled_dot_product_attention",
    "make_causal_mask", "make_padding_mask",
    "TransformerEncoder", "TransformerEncoderLayer",
    "GRU", "GRUCell",
    "cross_entropy", "cross_entropy_with_candidates", "bpr_loss", "info_nce",
    "info_nce_from_logits",
    "Optimizer", "SGD", "Adam", "AdamW", "Adagrad", "RMSprop", "clip_grad_norm",
    "gather_flat_gradients", "assign_flat_gradients",
    "LRSchedule", "ConstantLR", "WarmupCosine", "StepDecay",
    "save_checkpoint", "load_checkpoint",
    "SegmentPlan", "scatter_backend", "set_scatter_backend", "get_scatter_backend",
    "GradSanitizer", "sanitized", "enable_sanitizer", "disable_sanitizer",
    "get_sanitizer", "InplaceMutationError", "NonFiniteOriginError",
]
