"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of the ``repro.nn`` substrate: a small but
complete autodiff engine in the spirit of PyTorch's eager autograd.  Every
differentiable operation builds a node in a dynamic computation graph; calling
:meth:`Tensor.backward` runs a topological sweep that accumulates gradients
into every tensor created with ``requires_grad=True``.

Design notes
------------
* Data is stored as ``numpy.ndarray``.  The default dtype is ``float32`` (set
  via :data:`DEFAULT_DTYPE`); gradient-check tests switch to ``float64``.
* Broadcasting follows NumPy semantics.  Backward passes reduce gradients back
  to the operand's original shape with :func:`unbroadcast`.
* ``backward`` dismantles the graph as it sweeps: after an interior node's
  backward fires, its gradient, closure and parent references are dropped
  (PyTorch's non-leaf semantics).  Leaves keep their accumulated ``grad``;
  leaf grads accumulate across separate backward calls.  A graph can only be
  backpropagated once — build a fresh forward pass for another sweep.
* A process-global :func:`no_grad` context manager disables graph building,
  used by evaluation code and by optimizers during parameter updates.
"""

from __future__ import annotations

import contextlib
from time import perf_counter
from typing import Callable, Iterable, Sequence

import numpy as np

from .scatter import scatter_add_at, scatter_add_rows

__all__ = [
    "Tensor",
    "DEFAULT_DTYPE",
    "set_default_dtype",
    "get_default_dtype",
    "no_grad",
    "is_grad_enabled",
    "tensor",
    "zeros",
    "ones",
    "zeros_like",
    "ones_like",
    "arange",
    "unbroadcast",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
]

DEFAULT_DTYPE = np.float32

_GRAD_ENABLED = True

# Opt-in per-op instrumentation (see repro.perf).  ``None`` keeps the hot
# path to a single global check per node.
_PROFILE_HOOK = None

# Opt-in autograd sanitizer (see repro.nn.sanitizer): version counters on
# saved tensors + non-finite-origin tracing.  Same ``None``-check discipline.
_SANITIZER = None

# Alias-aware gradient accumulation: interior nodes store the first incoming
# gradient by reference instead of copying (the seed copied on every hop).
# Disabled by repro.perf.reference_mode() to reproduce seed behavior.
_FAST_ACCUMULATE = True


def _install_profile_hook(hook) -> None:
    """Install (or clear, with None) the per-op profiling hook."""
    global _PROFILE_HOOK
    _PROFILE_HOOK = hook


def _install_sanitizer(sanitizer) -> None:
    """Install (or clear, with None) the autograd sanitizer."""
    global _SANITIZER
    _SANITIZER = sanitizer


def set_fast_accumulate(enabled: bool) -> None:
    """Toggle the copy-free gradient accumulation fast path."""
    global _FAST_ACCUMULATE
    _FAST_ACCUMULATE = bool(enabled)


def fast_accumulate_enabled() -> bool:
    return _FAST_ACCUMULATE


def set_default_dtype(dtype) -> None:
    """Set the dtype used by tensor factory functions (float32 or float64)."""
    global DEFAULT_DTYPE
    dtype = np.dtype(dtype).type
    if dtype not in (np.float32, np.float64):
        raise ValueError(f"default dtype must be float32 or float64, got {dtype}")
    DEFAULT_DTYPE = dtype


def get_default_dtype():
    """Return the current default floating dtype."""
    return DEFAULT_DTYPE


def is_grad_enabled() -> bool:
    """Return True when operations record the autodiff graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    >>> with no_grad():
    ...     y = x * 2   # y.requires_grad is False even if x requires grad
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape after broadcasting) back to ``shape``.

    Sums over axes that were added or expanded by NumPy broadcasting so that
    the returned array has exactly ``shape``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that broadcasting prepended.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got a Tensor")
    arr = np.asarray(value, dtype=dtype if dtype is not None else None)
    if arr.dtype.kind in "fc" and dtype is None:
        arr = arr.astype(DEFAULT_DTYPE, copy=False)
    elif arr.dtype.kind in "iub" and dtype is None:
        # Integer data (e.g. index arrays) is kept as-is.
        pass
    return arr


class Tensor:
    """A NumPy-backed tensor that records operations for reverse-mode AD."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op",
                 "_grad_owned", "_version", "_fp", "_saved", "__weakref__")
    __array_priority__ = 100  # make NumPy defer to our __r*__ operators

    def __init__(self, data, requires_grad: bool = False, _prev: tuple = (), _op: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._grad_owned = True
        self._backward: Callable[[], None] | None = None
        self._prev: tuple[Tensor, ...] = _prev if self.requires_grad or _prev else ()
        self._op = _op
        # Sanitizer bookkeeping (repro.nn.sanitizer): in-place-mutation
        # version counter, content fingerprint, and saved-tensor versions.
        self._version = 0
        self._fp = None
        self._saved = None

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        out = Tensor.__new__(Tensor)
        out.data = self.data.astype(dtype)
        out.requires_grad = False
        out.grad = None
        out._grad_owned = True
        out._backward = None
        out._prev = ()
        out._op = "astype"
        out._version = 0
        out._fp = None
        out._saved = None
        return out

    # ------------------------------------------------------------------
    # graph machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], op: str) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor.__new__(Tensor)
        out.data = data
        out.requires_grad = requires
        out.grad = None
        out._grad_owned = True
        out._backward = None
        out._prev = tuple(parents) if requires else ()
        out._op = op
        out._version = 0
        out._fp = None
        out._saved = None
        if _PROFILE_HOOK is not None:
            _PROFILE_HOOK.on_node(op, data)
        if _SANITIZER is not None:
            _SANITIZER.on_node(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            if (_FAST_ACCUMULATE and self._backward is not None
                    and grad.dtype == self.data.dtype):
                # Interior node, first contribution: store by reference.  The
                # array may alias another node's gradient (e.g. ``add``
                # passes ``out.grad`` to both parents), so it is never
                # mutated in place while unowned; a second contribution
                # reallocates below.  Leaves always own their grad because
                # optimizers mutate it (clip_grad_norm) and it outlives the
                # sweep.
                self.grad = grad
                self._grad_owned = False
            else:
                self.grad = grad.astype(self.data.dtype, copy=True)
                self._grad_owned = True
        elif self._grad_owned:
            self.grad += grad
        else:
            total = self.grad + grad
            if total.dtype != self.data.dtype:
                total = total.astype(self.data.dtype)
            self.grad = total
            self._grad_owned = True

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (so scalars need no argument, matching the
        common ``loss.backward()`` idiom).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(f"gradient shape {grad.shape} != tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        # Reverse sweep.  After a node's backward fires, the node is an
        # interior vertex whose gradient and closure are no longer needed:
        # both are dropped immediately (PyTorch's non-leaf semantics).  This
        # keeps peak memory proportional to the frontier of the sweep rather
        # than the whole graph, and breaks the tensor↔closure reference
        # cycles without waiting for the garbage collector.  Leaves (nodes
        # with no ``_backward``) keep their accumulated ``grad``.
        hook = _PROFILE_HOOK
        sanitizer = _SANITIZER
        for node in reversed(topo):
            if node._backward is not None:
                if node.grad is not None:
                    if sanitizer is not None and node._saved is not None:
                        sanitizer.check_backward(node)
                    if hook is None:
                        node._backward()
                    else:
                        started = perf_counter()
                        node._backward()
                        hook.on_backward(node._op, perf_counter() - started)
                node._backward = None
                node._prev = ()
                node.grad = None
                node._saved = None

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._make(self.data + other.data, (self, other), "add")
        if out.requires_grad:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(unbroadcast(out.grad, other.shape))
            out._backward = _backward
        return out

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._make(self.data * other.data, (self, other), "mul")
        if out.requires_grad:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(unbroadcast(out.grad * self.data, other.shape))
            out._backward = _backward
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        out = Tensor._make(-self.data, (self,), "neg")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(-out.grad)
            out._backward = _backward
        return out

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._make(self.data - other.data, (self, other), "sub")
        if out.requires_grad:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(unbroadcast(-out.grad, other.shape))
            out._backward = _backward
        return out

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._make(self.data / other.data, (self, other), "div")
        if out.requires_grad:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(unbroadcast(out.grad / other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(
                        unbroadcast(-out.grad * self.data / (other.data ** 2), other.shape)
                    )
            out._backward = _backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out = Tensor._make(self.data ** exponent, (self,), "pow")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))
            out._backward = _backward
        return out

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._make(self.data @ other.data, (self, other), "matmul")
        if out.requires_grad:
            def _backward() -> None:
                a, b = self.data, other.data
                # Promote 1-D operands to 2-D so a single rule covers all cases,
                # then strip the added axes from the computed gradients.
                grad = out.grad
                a2 = a[None, :] if a.ndim == 1 else a
                b2 = b[:, None] if b.ndim == 1 else b
                g2 = grad
                if b.ndim == 1:
                    g2 = np.expand_dims(g2, -1)
                if a.ndim == 1:
                    g2 = np.expand_dims(g2, -2)
                if self.requires_grad:
                    ga = g2 @ np.swapaxes(b2, -1, -2)
                    if a.ndim == 1:
                        ga = np.squeeze(ga, -2)
                    self._accumulate(unbroadcast(ga, a.shape))
                if other.requires_grad:
                    gb = np.swapaxes(a2, -1, -2) @ g2
                    if b.ndim == 1:
                        gb = np.squeeze(gb, -1)
                    other._accumulate(unbroadcast(gb, b.shape))
            out._backward = _backward
        return out

    # comparisons produce plain boolean arrays (non-differentiable)
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = Tensor._make(np.exp(self.data), (self,), "exp")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * out.data)
            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = Tensor._make(np.log(self.data), (self,), "log")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad / self.data)
            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        out = Tensor._make(np.sqrt(self.data), (self,), "sqrt")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * 0.5 / out.data)
            out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        out = Tensor._make(np.tanh(self.data), (self,), "tanh")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * (1.0 - out.data ** 2))
            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic, computed piecewise to avoid overflow.
        x = self.data
        value = np.empty_like(x)
        positive = x >= 0
        value[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        value[~positive] = exp_x / (1.0 + exp_x)
        out = Tensor._make(value, (self,), "sigmoid")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * out.data * (1.0 - out.data))
            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = Tensor._make(np.maximum(self.data, 0.0), (self,), "relu")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * (self.data > 0))
            out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        out = Tensor._make(np.abs(self.data), (self,), "abs")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * np.sign(self.data))
            out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        out = Tensor._make(np.clip(self.data, low, high), (self,), "clip")
        if out.requires_grad:
            def _backward() -> None:
                inside = (self.data >= low) & (self.data <= high)
                self._accumulate(out.grad * inside)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")
        if out.requires_grad:
            def _backward() -> None:
                grad = out.grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    for ax in sorted(a % self.ndim for a in axes):
                        grad = np.expand_dims(grad, ax)
                self._accumulate(np.broadcast_to(grad, self.shape).copy())
            out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else np.prod(
            [self.shape[a % self.ndim] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor._make(out_data, (self,), "max")
        if out.requires_grad:
            def _backward() -> None:
                grad = out.grad
                value = out.data
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    for ax in sorted(a % self.ndim for a in axes):
                        grad = np.expand_dims(grad, ax)
                        value = np.expand_dims(value, ax)
                mask = self.data == value
                # Split gradient evenly among ties, matching NumPy-style subgradient.
                counts = mask.sum(
                    axis=axis if axis is not None else None, keepdims=True
                )
                self._accumulate(np.broadcast_to(grad, self.shape) * mask / counts)
            out._backward = _backward
        return out

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def argmax(self, axis=None):
        return self.data.argmax(axis=axis)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor._make(self.data.reshape(shape), (self,), "reshape")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad.reshape(self.shape))
            out._backward = _backward
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        axes_arg = axes if axes else None
        out = Tensor._make(self.data.transpose(axes_arg), (self,), "transpose")
        if out.requires_grad:
            if axes_arg is None:
                inverse = None
            else:
                inverse = tuple(np.argsort(axes_arg))

            def _backward() -> None:
                self._accumulate(out.grad.transpose(inverse))
            out._backward = _backward
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out = Tensor._make(self.data.swapaxes(axis1, axis2), (self,), "swapaxes")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad.swapaxes(axis1, axis2))
            out._backward = _backward
        return out

    def expand_dims(self, axis: int) -> "Tensor":
        out = Tensor._make(np.expand_dims(self.data, axis), (self,), "expand_dims")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(np.squeeze(out.grad, axis=axis))
            out._backward = _backward
        return out

    def squeeze(self, axis: int) -> "Tensor":
        out = Tensor._make(np.squeeze(self.data, axis=axis), (self,), "squeeze")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(np.expand_dims(out.grad, axis))
            out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        index = index.data if isinstance(index, Tensor) else index
        out = Tensor._make(self.data[index], (self,), "getitem")
        if out.requires_grad:
            if isinstance(index, np.ndarray) and index.dtype.kind in "iu":
                # Integer-array gather along axis 0 (the embedding-lookup
                # idiom): scatter-free backward via repro.nn.scatter.
                def _backward() -> None:
                    updates = out.grad.reshape(-1, *self.shape[1:])
                    self._accumulate(scatter_add_rows(index, updates, self.shape[0]))
            else:
                def _backward() -> None:
                    grad = np.zeros_like(self.data)
                    scatter_add_at(grad, index, out.grad)
                    self._accumulate(grad)
            out._backward = _backward
        return out

    def take(self, indices: np.ndarray, axis: int = 0) -> "Tensor":
        """Differentiable ``np.take`` along ``axis`` (used by Embedding)."""
        indices = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
        out = Tensor._make(np.take(self.data, indices, axis=axis), (self,), "take")
        if out.requires_grad:
            def _backward() -> None:
                if axis == 0:
                    grad = scatter_add_rows(indices,
                                            out.grad.reshape(-1, *self.shape[1:]),
                                            self.shape[0])
                else:  # pragma: no cover - axis 0 is the only one used internally
                    moved_shape = np.moveaxis(self.data, axis, 0).shape
                    moved = scatter_add_rows(
                        indices,
                        np.moveaxis(out.grad, axis, 0).reshape(-1, *moved_shape[1:]),
                        moved_shape[0])
                    grad = np.moveaxis(moved, 0, axis)
                self._accumulate(np.ascontiguousarray(grad))
            out._backward = _backward
        return out

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor with ``value`` where ``mask`` is True."""
        mask = mask.data if isinstance(mask, Tensor) else np.asarray(mask)
        mask = mask.astype(bool)
        out_data = np.where(mask, np.asarray(value, dtype=self.data.dtype), self.data)
        out = Tensor._make(out_data, (self,), "masked_fill")
        if out.requires_grad:
            def _backward() -> None:
                self._accumulate(out.grad * ~mask)
            out._backward = _backward
        return out


# ----------------------------------------------------------------------
# free functions
# ----------------------------------------------------------------------

def tensor(data, requires_grad: bool = False) -> Tensor:
    """Create a tensor from array-like data."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    """An all-zeros tensor of the given shape."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    """An all-ones tensor of the given shape."""
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def zeros_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    """A zeros tensor with the same shape/dtype as ``t``."""
    return Tensor(np.zeros_like(t.data), requires_grad=requires_grad)


def ones_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    """A ones tensor with the same shape/dtype as ``t``."""
    return Tensor(np.ones_like(t.data), requires_grad=requires_grad)


def arange(*args, **kwargs) -> Tensor:
    """``np.arange`` wrapped in a (non-differentiable) tensor."""
    # Pass-through factory: the caller chooses the dtype (float args produce
    # floats, which Tensor() then casts to the default dtype).
    return Tensor(np.arange(*args, **kwargs))  # repro: noqa[DTYPE-DISCIPLINE]


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor._make(data, tuple(tensors), "concatenate")
    if out.requires_grad:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _backward() -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer = [slice(None)] * out.grad.ndim
                    slicer[axis] = slice(start, stop)
                    t._accumulate(out.grad[tuple(slicer)])
        out._backward = _backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new axis."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    out = Tensor._make(data, tuple(tensors), "stack")
    if out.requires_grad:
        def _backward() -> None:
            for i, t in enumerate(tensors):
                if t.requires_grad:
                    t._accumulate(np.take(out.grad, i, axis=axis))
        out._backward = _backward
    return out


def where(condition, a, b) -> Tensor:
    """Differentiable ``np.where`` (condition is non-differentiable)."""
    condition = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    condition = condition.astype(bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out = Tensor._make(np.where(condition, a.data, b.data), (a, b), "where")
    if out.requires_grad:
        def _backward() -> None:
            if a.requires_grad:
                a._accumulate(unbroadcast(out.grad * condition, a.shape))
            if b.requires_grad:
                b._accumulate(unbroadcast(out.grad * ~condition, b.shape))
        out._backward = _backward
    return out


def maximum(a, b) -> Tensor:
    """Differentiable elementwise maximum (ties split evenly)."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out = Tensor._make(np.maximum(a.data, b.data), (a, b), "maximum")
    if out.requires_grad:
        def _backward() -> None:
            ties = a.data == b.data
            if a.requires_grad:
                a._accumulate(unbroadcast(out.grad * ((a.data > b.data) + 0.5 * ties), a.shape))
            if b.requires_grad:
                b._accumulate(unbroadcast(out.grad * ((b.data > a.data) + 0.5 * ties), b.shape))
        out._backward = _backward
    return out


def minimum(a, b) -> Tensor:
    """Differentiable elementwise minimum."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    return -maximum(-a, -b)
