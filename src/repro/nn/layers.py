"""Core trainable layers: Linear, Embedding, LayerNorm, Dropout, FFN.

Every layer takes a ``numpy.random.Generator`` at construction so weight
initialization is deterministic under a fixed seed, and uses it again at
forward time where stochasticity is needed (Dropout).
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "Embedding", "LayerNorm", "Dropout", "FeedForward",
           "SinusoidalPositionalEncoding"]


class Linear(Module):
    """Affine map ``y = x W^T + b`` applied to the last axis."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        weight = np.empty((out_features, in_features), dtype=np.float64)
        init.xavier_uniform_(weight, rng)
        self.weight = Parameter(weight)
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Lookup table of shape ``(num_embeddings, dim)``.

    ``padding_idx`` rows are initialized to zero and their gradient is masked
    out after each backward pass by the optimizer-facing ``apply_padding``
    hook (called in :meth:`forward`'s backward via a grad mask would cost a
    graph node; zeroing at init plus masking updates is equivalent because the
    padded position never contributes to the loss when masks are applied
    downstream — we still zero its gradient defensively in optimizers via the
    ``frozen_rows`` attribute).
    """

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator,
                 padding_idx: int | None = None, std: float = 0.02):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.padding_idx = padding_idx
        weight = np.empty((num_embeddings, dim), dtype=np.float64)
        init.normal_(weight, rng, std=std)
        if padding_idx is not None:
            weight[padding_idx] = 0.0
        self.weight = Parameter(weight)
        if padding_idx is not None:
            # Consulted by optimizers to keep the padding row at zero.
            self.weight.frozen_rows = np.array([padding_idx])  # type: ignore[attr-defined]

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices.data if isinstance(indices, Tensor) else indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return self.weight.take(indices, axis=0)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.dim}, padding_idx={self.padding_idx})"


class LayerNorm(Module):
    """Layer normalization over the last axis with learned scale and shift."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim, dtype=np.float32))
        self.beta = Parameter(np.zeros(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.dim}, eps={self.eps})"


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class SinusoidalPositionalEncoding(Module):
    """Fixed sin/cos positional table (Vaswani et al., 2017).

    Parameter-free alternative to a learned position Embedding; useful when
    sequences at inference may be longer than anything seen in training.
    Call with integer position indices, like an Embedding.
    """

    def __init__(self, max_len: int, dim: int):
        super().__init__()
        if dim % 2 != 0:
            raise ValueError(f"dim must be even for sin/cos pairs, got {dim}")
        positions = np.arange(max_len, dtype=np.float64)[:, None]
        frequencies = np.exp(-np.log(10000.0)
                             * np.arange(0, dim, 2, dtype=np.float64) / dim)[None, :]
        table = np.zeros((max_len, dim), dtype=np.float64)
        table[:, 0::2] = np.sin(positions * frequencies)
        table[:, 1::2] = np.cos(positions * frequencies)
        self.max_len = max_len
        self.dim = dim
        self._table = table.astype(np.float32)

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices.data if isinstance(indices, Tensor) else indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.max_len):
            raise IndexError(f"position index out of range [0, {self.max_len})")
        return Tensor(self._table[indices])

    def __repr__(self) -> str:
        return f"SinusoidalPositionalEncoding({self.max_len}, {self.dim})"


class FeedForward(Module):
    """Position-wise feed-forward block: Linear → activation → Dropout → Linear."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator,
                 dropout: float = 0.0, activation: str = "gelu"):
        super().__init__()
        if activation not in ("gelu", "relu"):
            raise ValueError(f"unsupported activation: {activation}")
        self.fc1 = Linear(dim, hidden_dim, rng)
        self.fc2 = Linear(hidden_dim, dim, rng)
        self.dropout = Dropout(dropout, rng)
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.fc1(x)
        hidden = F.gelu(hidden) if self.activation == "gelu" else F.relu(hidden)
        return self.fc2(self.dropout(hidden))
