"""Scaled dot-product and multi-head attention.

Supports self-attention and cross-attention with optional boolean masks and
causal masking, batched over arbitrary leading dimensions ``(B, L, D)``.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor

__all__ = ["scaled_dot_product_attention", "MultiHeadAttention", "AdditiveAttentionPool"]

_NEG_INF = -1e9


def scaled_dot_product_attention(query: Tensor, key: Tensor, value: Tensor,
                                 mask: np.ndarray | None = None) -> tuple[Tensor, Tensor]:
    """Attention(Q, K, V) = softmax(QK^T / sqrt(d)) V.

    Args:
        query: ``(..., Lq, d)``.
        key:   ``(..., Lk, d)``.
        value: ``(..., Lk, dv)``.
        mask:  boolean array broadcastable to ``(..., Lq, Lk)``; True marks
               positions that must NOT be attended to.

    Returns:
        ``(output, weights)`` where output is ``(..., Lq, dv)`` and weights
        are the post-softmax attention probabilities.
    """
    d = query.shape[-1]
    scores = (query @ key.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
    weights = F.masked_softmax(scores, mask, axis=-1, neg=_NEG_INF)
    return weights @ value, weights


def make_padding_mask(lengths_mask: np.ndarray) -> np.ndarray:
    """Turn a ``(B, L)`` validity mask (True = real token) into an attention
    mask of shape ``(B, 1, 1, L)`` where True marks padded keys."""
    invalid = ~lengths_mask.astype(bool)
    return invalid[:, None, None, :]


def make_causal_mask(length: int) -> np.ndarray:
    """Upper-triangular causal mask ``(1, 1, L, L)``; True = future position."""
    return np.triu(np.ones((length, length), dtype=bool), k=1)[None, None]


class MultiHeadAttention(Module):
    """Multi-head attention with separate Q/K/V projections and output proj."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)
        self.dropout = Dropout(dropout, rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, _, length, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)

    def forward(self, query: Tensor, key: Tensor | None = None, value: Tensor | None = None,
                mask: np.ndarray | None = None) -> Tensor:
        """Compute attention; ``key``/``value`` default to ``query`` (self-attn).

        ``mask`` is boolean, broadcastable to ``(B, H, Lq, Lk)``, True = block.
        """
        key = query if key is None else key
        value = key if value is None else value
        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))
        attended, _ = scaled_dot_product_attention(q, k, v, mask=mask)
        return self.dropout(self.out_proj(self._merge_heads(attended)))


class AdditiveAttentionPool(Module):
    """Attention pooling: collapse ``(B, L, D)`` to ``(B, D)`` with a learned query.

    score_i = v^T tanh(W h_i); weights = softmax over valid positions.
    Used for lightweight sequence summarization (e.g. SSL projection heads).
    """

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.proj = Linear(dim, hidden, rng)
        self.score = Linear(hidden, 1, rng, bias=False)

    def forward(self, x: Tensor, valid_mask: np.ndarray | None = None) -> Tensor:
        scores = self.score(self.proj(x).tanh()).squeeze(-1)  # (B, L)
        block = None if valid_mask is None else ~valid_mask.astype(bool)
        weights = F.masked_softmax(scores, block, axis=-1, neg=_NEG_INF)  # (B, L)
        return (x * weights.expand_dims(-1)).sum(axis=1)
