"""Optimizers: SGD (momentum), Adam, AdamW, gradient clipping, and the flat
gradient views used by the data-parallel allreduce."""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "Adagrad", "RMSprop",
           "clip_grad_norm", "gather_flat_gradients", "assign_flat_gradients"]


def gather_flat_gradients(parameters, out: np.ndarray | None = None) -> np.ndarray:
    """Concatenate every parameter's gradient into one flat array.

    Parameters with no gradient contribute zeros, so the flat layout is a
    pure function of the parameter list (the deterministic
    ``named_parameters`` order) — which is what lets data-parallel shards
    be reduced coordinate-by-coordinate in a fixed order.  Pass ``out`` to
    reuse a preallocated buffer (e.g. a shared-memory slot).
    """
    parameters = list(parameters)
    if not parameters:
        raise ValueError("no parameters to gather gradients from")
    dtype = parameters[0].data.dtype
    total = sum(p.data.size for p in parameters)
    if out is None:
        out = np.empty(total, dtype=dtype)
    elif out.shape != (total,):
        raise ValueError(f"flat buffer has shape {out.shape}, need ({total},)")
    cursor = 0
    for p in parameters:
        size = p.data.size
        if p.grad is None:
            out[cursor:cursor + size] = 0.0
        else:
            out[cursor:cursor + size] = p.grad.reshape(-1)
        cursor += size
    return out


def assign_flat_gradients(parameters, flat: np.ndarray) -> None:
    """Scatter a flat gradient vector back onto ``param.grad`` windows.

    Each parameter's ``grad`` becomes a reshaped **view** into ``flat`` (no
    copies), so in-place consumers downstream — ``clip_grad_norm``, the
    optimizers' ``m``/``v`` updates — operate directly on the reduced
    buffer.  The inverse of :func:`gather_flat_gradients`.
    """
    parameters = list(parameters)
    total = sum(p.data.size for p in parameters)
    if flat.shape != (total,):
        raise ValueError(f"flat vector has shape {flat.shape}, need ({total},)")
    cursor = 0
    for p in parameters:
        size = p.data.size
        p.grad = flat[cursor:cursor + size].reshape(p.data.shape)
        cursor += size


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in parameters:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list and a mutable learning rate."""

    def __init__(self, parameters, lr: float):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def _freeze_rows(self, param: Parameter) -> None:
        """Re-zero rows flagged as frozen (e.g. an Embedding's padding row)."""
        rows = getattr(param, "frozen_rows", None)
        if rows is not None:
            param.data[rows] = 0.0


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data -= self.lr * update
            self._freeze_rows(p)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction; L2 added to the gradient."""

    def __init__(self, parameters, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            self._freeze_rows(p)


class Adagrad(Optimizer):
    """Adagrad (Duchi et al., 2011) — the optimizer of the original GRU4Rec.

    Per-coordinate learning rates decay with the accumulated squared
    gradient; well-suited to sparse embedding updates.
    """

    def __init__(self, parameters, lr: float = 0.01, eps: float = 1e-10,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.eps = eps
        self.weight_decay = weight_decay
        self._accumulator = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, acc in zip(self.parameters, self._accumulator):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            acc += grad * grad
            p.data -= self.lr * grad / (np.sqrt(acc) + self.eps)
            self._freeze_rows(p)


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton, 2012): exponentially decayed squared-grad
    normalization, optionally with momentum."""

    def __init__(self, parameters, lr: float = 0.001, alpha: float = 0.99,
                 eps: float = 1e-8, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha
        self.eps = eps
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._square_avg = [np.zeros_like(p.data) for p in self.parameters]
        self._buffer = [np.zeros_like(p.data) for p in self.parameters] \
            if momentum else None

    def step(self) -> None:
        for i, (p, sq) in enumerate(zip(self.parameters, self._square_avg)):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            sq *= self.alpha
            sq += (1.0 - self.alpha) * grad * grad
            update = grad / (np.sqrt(sq) + self.eps)
            if self.momentum:
                buf = self._buffer[i]
                buf *= self.momentum
                buf += update
                update = buf
            p.data -= self.lr * update
            self._freeze_rows(p)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            for p in self.parameters:
                if p.grad is not None:
                    p.data -= self.lr * self.weight_decay * p.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay
