"""Transformer encoder stack (pre-LN variant, as used by SASRec-style models)."""

from __future__ import annotations

import numpy as np

from .attention import MultiHeadAttention, make_causal_mask, make_padding_mask
from .layers import Dropout, FeedForward, LayerNorm
from .module import Module, ModuleList
from .tensor import Tensor

__all__ = ["TransformerEncoderLayer", "TransformerEncoder"]


class TransformerEncoderLayer(Module):
    """Pre-LN transformer block: x + MHA(LN(x)), then x + FFN(LN(x))."""

    def __init__(self, dim: int, num_heads: int, ffn_dim: int, rng: np.random.Generator,
                 dropout: float = 0.0):
        super().__init__()
        self.attn_norm = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, rng, dropout=dropout)
        self.ffn_norm = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_dim, rng, dropout=dropout)
        self.dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        normed = self.attn_norm(x)
        x = x + self.attn(normed, mask=mask)
        x = x + self.dropout(self.ffn(self.ffn_norm(x)))
        return x


class TransformerEncoder(Module):
    """A stack of encoder layers with optional causal masking.

    The caller supplies a ``(B, L)`` validity mask (True = real token); the
    encoder combines it with a causal mask when ``causal=True``.
    """

    def __init__(self, dim: int, num_heads: int, ffn_dim: int, num_layers: int,
                 rng: np.random.Generator, dropout: float = 0.0, causal: bool = True):
        super().__init__()
        self.layers = ModuleList([
            TransformerEncoderLayer(dim, num_heads, ffn_dim, rng, dropout=dropout)
            for _ in range(num_layers)
        ])
        self.final_norm = LayerNorm(dim)
        self.causal = causal

    def build_mask(self, valid_mask: np.ndarray | None, length: int) -> np.ndarray | None:
        """Combine padding and causal masks into a single boolean block mask."""
        mask = None
        if valid_mask is not None:
            mask = make_padding_mask(valid_mask)
        if self.causal:
            causal = make_causal_mask(length)
            mask = causal if mask is None else (mask | causal)
        return mask

    def forward(self, x: Tensor, valid_mask: np.ndarray | None = None) -> Tensor:
        mask = self.build_mask(valid_mask, x.shape[1])
        for layer in self.layers:
            x = layer(x, mask=mask)
        return self.final_norm(x)
