"""Module/Parameter system: the stateful layer abstraction.

Mirrors the shape of ``torch.nn.Module`` at the scale this project needs:
automatic parameter and sub-module registration via ``__setattr__``,
``parameters()`` / ``named_parameters()`` traversal, train/eval mode, and
flat ``state_dict`` save/load for checkpointing.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList", "Sequential"]


class Parameter(Tensor):
    """A trainable tensor; registered automatically when set on a Module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters must require grad regardless of any enclosing no_grad().
        self.requires_grad = True


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # mode & gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # flat views (parameter broadcast / gradient allreduce)
    # ------------------------------------------------------------------
    def parameter_vector(self, out: np.ndarray | None = None) -> np.ndarray:
        """All parameters concatenated into one flat array (traversal order).

        The layout is the deterministic :meth:`named_parameters` order, so a
        vector produced by one replica of a model loads into any other via
        :meth:`load_parameter_vector` — the transport format for the
        data-parallel parameter broadcast.  Pass ``out`` to fill a
        preallocated buffer (e.g. a shared-memory mirror) without an
        intermediate allocation.
        """
        parameters = self.parameters()
        if not parameters:
            raise ValueError("module has no parameters")
        dtype = parameters[0].data.dtype
        total = sum(param.size for param in parameters)
        if out is None:
            out = np.empty(total, dtype=dtype)
        elif out.shape != (total,):
            raise ValueError(f"flat buffer has shape {out.shape}, need ({total},)")
        cursor = 0
        for param in parameters:
            out[cursor:cursor + param.size] = param.data.reshape(-1)
            cursor += param.size
        return out

    def load_parameter_vector(self, flat: np.ndarray) -> None:
        """Inverse of :meth:`parameter_vector`: scatter a flat array back."""
        parameters = self.parameters()
        total = sum(param.size for param in parameters)
        if flat.shape != (total,):
            raise ValueError(f"flat vector has shape {flat.shape}, need ({total},)")
        cursor = 0
        for param in parameters:
            param.data[...] = flat[cursor:cursor + param.size].reshape(param.shape)
            cursor += param.size

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.shape}")
            param.data[...] = value

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class ModuleList(Module):
    """Holds sub-modules in a list; registers them for parameter traversal."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self._modules[str(len(self._items))] = module
        self._items.append(module)
        return self

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Chains modules, feeding each output into the next module."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
