"""Checkpoint serialization: save/load Module state to ``.npz`` files.

The format is a flat NumPy archive — one array per named parameter plus a
``__meta__`` JSON blob (format version and parameter manifest) used to give
clear errors on mismatched checkpoints.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1
_META_KEY = "__meta__"


def save_checkpoint(module: Module, path: str | Path, extra: dict | None = None) -> Path:
    """Write a module's parameters (and optional JSON-serializable ``extra``
    metadata, e.g. the epoch or config) to ``path``.

    Returns the written path (``.npz`` suffix enforced).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    meta = {
        "format_version": _FORMAT_VERSION,
        "parameters": sorted(state),
        "extra": extra or {},
    }
    arrays = dict(state)
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path


def load_checkpoint(module: Module, path: str | Path) -> dict:
    """Load parameters saved by :func:`save_checkpoint` into ``module``.

    Returns the ``extra`` metadata dict.  Raises ``KeyError``/``ValueError``
    on manifest or shape mismatches (delegated to ``load_state_dict``).
    """
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro checkpoint (missing metadata)")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode())
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"checkpoint format {meta.get('format_version')} unsupported "
                f"(expected {_FORMAT_VERSION})"
            )
        state = {name: archive[name] for name in meta["parameters"]}
    module.load_state_dict(state)
    return meta.get("extra", {})
