"""Scatter/segment kernels with selectable fast and reference backends.

``np.ufunc.at`` is the canonical NumPy idiom for scatter-add but it is also
the slowest (unbuffered, element-at-a-time on NumPy builds without indexed
loops).  This module provides the scatter-free equivalents used by the hot
backward paths — embedding/``take`` gradients and the hypergraph segment ops:

* 1-D scatter-add via :func:`numpy.bincount`.
* Row scatter-add (2-D+) via sort + :func:`numpy.add.reduceat`.
* Segment max via sort + :func:`numpy.maximum.reduceat`.

The original ``np.add.at`` / ``np.maximum.at`` kernels are retained as the
**reference** backend, selectable globally with :func:`set_scatter_backend`
or temporarily with the :func:`scatter_backend` context manager; the test
suite uses them to verify exact equivalence of the fast paths.

For static index structures (hypergraph incidence COO pairs are identical
every step) a :class:`SegmentPlan` precomputes the sort once so the per-step
cost is a gather plus one ``reduceat``.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = [
    "SegmentPlan",
    "scatter_add_rows",
    "scatter_add_1d",
    "scatter_add_at",
    "segment_max_1d",
    "set_scatter_backend",
    "get_scatter_backend",
    "scatter_backend",
]

_BACKENDS = ("fast", "reference")
_BACKEND = "fast"


def set_scatter_backend(name: str) -> None:
    """Select the scatter implementation: ``"fast"`` or ``"reference"``."""
    global _BACKEND
    if name not in _BACKENDS:
        raise ValueError(f"unknown scatter backend {name!r}; choose from {_BACKENDS}")
    _BACKEND = name


def get_scatter_backend() -> str:
    """Return the active scatter backend name."""
    return _BACKEND


@contextlib.contextmanager
def scatter_backend(name: str):
    """Temporarily switch the scatter backend (used by tests/benchmarks)."""
    previous = _BACKEND
    set_scatter_backend(name)
    try:
        yield
    finally:
        set_scatter_backend(previous)


def _normalize_indices(indices: np.ndarray, size: int) -> np.ndarray:
    """Flatten to 1-D intp and resolve negative indices (bincount rejects them)."""
    indices = np.asarray(indices).reshape(-1).astype(np.intp, copy=False)
    if indices.size and indices.min() < 0:
        indices = np.where(indices < 0, indices + size, indices)
    return indices


class SegmentPlan:
    """Precomputed sort of a static segment-id array.

    Hypergraph layers call the segment ops with the same COO index arrays on
    every forward/backward pass; building the plan once at layer-construction
    time amortizes the ``argsort`` away entirely.  ``order is None`` marks an
    already-sorted id array (CSR→COO row indices), where even the per-call
    gather is skipped.
    """

    __slots__ = ("segment_ids", "num_segments", "order", "sorted_ids", "starts",
                 "present")

    def __init__(self, segment_ids: np.ndarray, num_segments: int):
        segment_ids = np.asarray(segment_ids).astype(np.intp, copy=False)
        if segment_ids.ndim != 1:
            raise ValueError("segment_ids must be 1-D")
        if segment_ids.size and (segment_ids.min() < 0
                                 or segment_ids.max() >= num_segments):
            raise ValueError("segment id out of range")
        self.segment_ids = segment_ids
        self.num_segments = num_segments
        if segment_ids.size == 0:
            self.order = None
            self.sorted_ids = segment_ids
            self.starts = np.zeros(0, dtype=np.intp)
            self.present = np.zeros(0, dtype=np.intp)
            return
        if np.all(segment_ids[1:] >= segment_ids[:-1]):
            self.order = None
            self.sorted_ids = segment_ids
        else:
            self.order = np.argsort(segment_ids, kind="stable")
            self.sorted_ids = segment_ids[self.order]
        boundaries = np.flatnonzero(np.diff(self.sorted_ids)) + 1
        self.starts = np.concatenate((np.zeros(1, dtype=np.intp), boundaries))
        self.present = self.sorted_ids[self.starts]


def _reduceat_rows(indices: np.ndarray, updates: np.ndarray, num_rows: int,
                   plan: SegmentPlan | None, ufunc: np.ufunc,
                   fill: float) -> np.ndarray:
    """Sorted ``ufunc.reduceat`` over rows of ``updates`` grouped by index."""
    out = np.full((num_rows,) + updates.shape[1:], fill, dtype=updates.dtype)
    if indices.size == 0:
        return out
    if plan is None:
        plan = SegmentPlan(indices, num_rows)
    sorted_updates = updates if plan.order is None else updates[plan.order]
    out[plan.present] = ufunc.reduceat(sorted_updates, plan.starts, axis=0)
    return out


def scatter_add_rows(indices: np.ndarray, updates: np.ndarray, num_rows: int,
                     plan: SegmentPlan | None = None) -> np.ndarray:
    """``out[indices[j]] += updates[j]`` into a fresh ``(num_rows, ...)`` array.

    ``indices`` is any integer array with ``indices.size == len(updates)``
    after flattening (negative values wrap, as with fancy indexing).  The
    fast backend sorts indices and reduces contiguous runs with
    ``np.add.reduceat`` (1-D updates go through ``np.bincount`` instead);
    the reference backend is the seed's ``np.add.at``.
    """
    indices = _normalize_indices(indices, num_rows)
    updates = np.ascontiguousarray(updates)
    if _BACKEND == "reference":
        out = np.zeros((num_rows,) + updates.shape[1:], dtype=updates.dtype)
        np.add.at(out, indices, updates)
        return out
    if updates.ndim == 1:
        return scatter_add_1d(indices, updates, num_rows)
    return _reduceat_rows(indices, updates, num_rows, plan, np.add, 0.0)


def scatter_add_at(target: np.ndarray, index, updates: np.ndarray) -> None:
    """In-place ``target[index] += updates`` for *arbitrary* index expressions.

    The containment escape hatch for scatter-adds whose index is not a flat
    integer array (slices, tuples, boolean masks) and therefore cannot go
    through :func:`scatter_add_rows`.  This is the only sanctioned home of
    ``np.add.at`` outside this module's backends — the SCATTER-CONTAINMENT
    lint rule keeps every other call site out.
    """
    np.add.at(target, index, updates)


def scatter_add_1d(indices: np.ndarray, values: np.ndarray, size: int) -> np.ndarray:
    """1-D scatter-add via ``np.bincount`` (reference: ``np.add.at``)."""
    indices = _normalize_indices(indices, size)
    values = np.asarray(values)
    if _BACKEND == "reference":
        out = np.zeros(size, dtype=values.dtype)
        np.add.at(out, indices, values)
        return out
    # bincount always computes in float64; cast back to the input dtype.
    return np.bincount(indices, weights=values, minlength=size).astype(
        values.dtype, copy=False)


def segment_max_1d(values: np.ndarray, segment_ids: np.ndarray, num_segments: int,
                   plan: SegmentPlan | None = None,
                   fill: float = -np.inf) -> np.ndarray:
    """Per-segment maximum of a 1-D array; empty segments get ``fill``."""
    values = np.asarray(values)
    segment_ids = _normalize_indices(segment_ids, num_segments)
    if _BACKEND == "reference":
        out = np.full(num_segments, fill, dtype=values.dtype)
        np.maximum.at(out, segment_ids, values)
        return out
    return _reduceat_rows(segment_ids, values, num_segments, plan,
                          np.maximum, fill)
