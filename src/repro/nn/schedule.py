"""Learning-rate schedules that drive an Optimizer's ``lr`` attribute."""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRSchedule", "ConstantLR", "WarmupCosine", "StepDecay"]


class LRSchedule:
    """Base schedule: call :meth:`step` once per optimizer step (or epoch)."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.steps = 0

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.steps += 1
        lr = self.lr_at(self.steps)
        self.optimizer.lr = lr
        return lr


class ConstantLR(LRSchedule):
    def lr_at(self, step: int) -> float:
        return self.base_lr


class WarmupCosine(LRSchedule):
    """Linear warmup to ``base_lr`` then cosine decay to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int,
                 min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * step / max(1, self.warmup_steps)
        progress = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        progress = min(progress, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class StepDecay(LRSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        return self.base_lr * (self.gamma ** (step // self.step_size))
