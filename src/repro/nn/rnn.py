"""Gated recurrent unit (GRU) layer, used by the GRU4Rec baseline."""

from __future__ import annotations

import numpy as np

from . import tensor as T
from .layers import Linear
from .module import Module
from .tensor import Tensor

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """Single-step GRU cell.

    r = σ(W_r x + U_r h); z = σ(W_z x + U_z h); n = tanh(W_n x + r ⊙ U_n h)
    h' = (1 - z) ⊙ n + z ⊙ h
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.hidden_dim = hidden_dim
        # Fused projections: one matmul produces r/z/n pre-activations.
        self.x_proj = Linear(input_dim, 3 * hidden_dim, rng)
        self.h_proj = Linear(hidden_dim, 3 * hidden_dim, rng, bias=False)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        d = self.hidden_dim
        gx = self.x_proj(x)
        gh = self.h_proj(h)
        r = (gx[:, 0:d] + gh[:, 0:d]).sigmoid()
        z = (gx[:, d:2 * d] + gh[:, d:2 * d]).sigmoid()
        n = (gx[:, 2 * d:] + r * gh[:, 2 * d:]).tanh()
        return (1.0 - z) * n + z * h


class GRU(Module):
    """Unrolled GRU over ``(B, L, D)`` input.

    Padded steps (valid_mask False) carry the previous hidden state through
    unchanged, so left-padded and right-padded sequences both work.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.cell = GRUCell(input_dim, hidden_dim, rng)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor, valid_mask: np.ndarray | None = None) -> Tensor:
        """Return the sequence of hidden states ``(B, L, H)``."""
        batch, length, _ = x.shape
        h = T.zeros(batch, self.hidden_dim)
        outputs = []
        for t in range(length):
            step = x[:, t, :]
            h_new = self.cell(step, h)
            if valid_mask is not None:
                keep = valid_mask[:, t].astype(h.data.dtype)[:, None]
                h = h_new * Tensor(keep) + h * Tensor(1.0 - keep)
            else:
                h = h_new
            outputs.append(h)
        return T.stack(outputs, axis=1)

    def last_state(self, x: Tensor, valid_mask: np.ndarray | None = None) -> Tensor:
        """Return the final hidden state ``(B, H)`` after consuming the sequence."""
        states = self.forward(x, valid_mask)
        return states[:, -1, :]
