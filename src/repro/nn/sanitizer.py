"""Runtime autograd sanitizer: version counters + non-finite-origin tracing.

The static half of the correctness tooling lives in :mod:`repro.lint`; this
module is the *runtime* half, guarding the invariant no AST check can see:
arrays saved for backward must not change between forward and backward.

Mutation detection (PyTorch's tensor version counters, adapted)
---------------------------------------------------------------
PyTorch bumps a version counter inside every in-place op.  This substrate
exposes raw ``numpy`` arrays (``tensor.data``), so mutation can happen
through plain NumPy with no op to intercept.  Instead, when the sanitizer is
enabled every graph node records a content fingerprint (CRC32) of each array
it saves for backward — its parents and its own output — together with the
owning tensor's current ``_version``.  Observing a changed fingerprint bumps
the version; at backward time each node re-verifies its saved tensors and
raises :class:`InplaceMutationError` naming the offending tensor when the
version no longer matches, instead of silently producing corrupt gradients.

Non-finite-origin mode
----------------------
``repro.obs.NaNWatchdog`` sees the *symptom* — a non-finite gradient at a
parameter after backward.  The sanitizer's opt-in ``track_nonfinite`` mode
catches the *cause*: every freshly computed node output is checked at
creation, so the error names the first op that turned finite inputs into
NaN/Inf (or the leaf tensor that carried them into the graph).

Cost discipline
---------------
Disabled is the default and costs one global ``is None`` check per node —
the same zero-cost pattern as :mod:`repro.perf` profiling and
:mod:`repro.obs` spans (guarded by ``tests/nn/test_sanitizer.py``'s <2%
overhead test).  Enabled, it fingerprints every saved array and is meant for
debugging runs, not production training.

Usage::

    from repro.nn import sanitized, InplaceMutationError

    with sanitized():                      # mutation checks
        loss = model.training_loss(batch, sampler)
        loss.backward()                    # raises if anything was mutated

    with sanitized(track_nonfinite=True):  # + NaN/Inf origin tracing
        ...
"""

from __future__ import annotations

import contextlib
import zlib

import numpy as np

from . import tensor as _tensor_mod

__all__ = [
    "GradSanitizer",
    "InplaceMutationError",
    "NonFiniteOriginError",
    "enable_sanitizer",
    "disable_sanitizer",
    "get_sanitizer",
    "sanitized",
]


class InplaceMutationError(RuntimeError):
    """An array saved for backward was mutated before backward consumed it."""


class NonFiniteOriginError(FloatingPointError):
    """An op produced the graph's first NaN/Inf (non-finite-origin mode)."""


def _fingerprint(array: np.ndarray) -> int:
    """CRC32 content fingerprint (dtype/shape changes also alter the bytes)."""
    if not array.flags.c_contiguous:
        array = np.ascontiguousarray(array)
    return zlib.crc32(array)


def _describe(t) -> str:
    """Human-readable identity of a tensor for error messages."""
    op = t._op or "leaf"
    return f"Tensor(op={op!r}, shape={t.data.shape}, dtype={t.data.dtype})"


class GradSanitizer:
    """The active sanitizer: hooks node creation and the backward sweep.

    Attributes:
        check_mutations: verify saved-tensor versions at backward time.
        track_nonfinite: raise when an op first produces NaN/Inf.
        nodes_seen: graph nodes observed at creation while enabled.
        checks_run: saved-tensor verifications performed during backward.
    """

    __slots__ = ("check_mutations", "track_nonfinite", "nodes_seen",
                 "checks_run")

    def __init__(self, check_mutations: bool = True,
                 track_nonfinite: bool = False):
        if not check_mutations and not track_nonfinite:
            raise ValueError("enable at least one of check_mutations / "
                             "track_nonfinite")
        self.check_mutations = check_mutations
        self.track_nonfinite = track_nonfinite
        self.nodes_seen = 0
        self.checks_run = 0

    # -- node-creation hook (called from Tensor._make) -------------------
    def on_node(self, out) -> None:
        """Record saved-tensor versions for ``out`` and scan for NaN/Inf."""
        self.nodes_seen += 1
        if self.check_mutations and out._prev:
            saved = []
            for parent in out._prev:
                saved.append((parent, self._observe(parent)))
            saved.append((out, self._observe(out)))
            out._saved = tuple(saved)
        if self.track_nonfinite:
            self._check_finite(out)

    def _observe(self, t) -> int:
        """Fingerprint ``t.data``, bumping its version if it changed."""
        fp = _fingerprint(t.data)
        if t._fp is None:
            t._fp = fp
        elif t._fp != fp:
            t._version += 1
            t._fp = fp
        return t._version

    def _check_finite(self, out) -> None:
        data = out.data
        if data.dtype.kind != "f" or np.all(np.isfinite(data)):
            return
        count = int(data.size - np.isfinite(data).sum())
        for parent in out._prev:
            if (parent.data.dtype.kind == "f"
                    and not np.all(np.isfinite(parent.data))):
                # The origin is upstream: an interior node would already have
                # raised at its own creation, so this parent carried the
                # non-finite values into the graph (a leaf, or a tensor built
                # before the sanitizer was enabled).
                raise NonFiniteOriginError(
                    f"non-finite values entered the graph through "
                    f"{_describe(parent)}, consumed by op {out._op!r}")
        raise NonFiniteOriginError(
            f"op {out._op!r} produced the first non-finite value(s): "
            f"{count} of {data.size} elements in {_describe(out)} are "
            f"NaN/Inf while every input is finite")

    # -- backward hook (called from Tensor.backward) ----------------------
    def check_backward(self, node) -> None:
        """Verify every tensor ``node`` saved for backward is unmutated."""
        for saved_tensor, saved_version in node._saved:
            self.checks_run += 1
            fp = _fingerprint(saved_tensor.data)
            if saved_tensor._fp != fp:
                saved_tensor._version += 1
                saved_tensor._fp = fp
            if saved_tensor._version != saved_version:
                raise InplaceMutationError(
                    f"{_describe(saved_tensor)} was mutated in place after "
                    f"being saved for the backward of op {node._op!r}: "
                    f"tensor is at version {saved_tensor._version}; expected "
                    f"version {saved_version}. Clone the array (or move the "
                    f"mutation after backward) instead of modifying it "
                    f"between forward and backward.")


def enable_sanitizer(check_mutations: bool = True,
                     track_nonfinite: bool = False) -> GradSanitizer:
    """Install and return a fresh :class:`GradSanitizer` (process-global)."""
    sanitizer = GradSanitizer(check_mutations=check_mutations,
                              track_nonfinite=track_nonfinite)
    _tensor_mod._install_sanitizer(sanitizer)
    return sanitizer


def disable_sanitizer() -> None:
    """Remove the active sanitizer (hot paths return to the is-None check)."""
    _tensor_mod._install_sanitizer(None)


def get_sanitizer() -> GradSanitizer | None:
    """The active sanitizer, or None when disabled (the default)."""
    return _tensor_mod._SANITIZER


@contextlib.contextmanager
def sanitized(check_mutations: bool = True, track_nonfinite: bool = False):
    """Context manager enabling the sanitizer for the enclosed block.

    Restores the previously active sanitizer (usually None) on exit, so
    blocks nest safely.
    """
    previous = _tensor_mod._SANITIZER
    sanitizer = GradSanitizer(check_mutations=check_mutations,
                              track_nonfinite=track_nonfinite)
    _tensor_mod._install_sanitizer(sanitizer)
    try:
        yield sanitizer
    finally:
        _tensor_mod._install_sanitizer(previous)
