"""The MISSL model.

Pipeline per forward pass:

1. **Hypergraph enhancement** — the raw item table is refined by the
   hypergraph transformer (cross-user, cross-behavior message passing).
2. **Behavior-specific encoding** — each behavior's item sequence is embedded
   (enhanced items + positions + behavior type) and encoded by its own causal
   transformer.
3. **Multi-interest extraction** — one shared K-prototype extractor condenses
   every behavior's states into K slot-aligned interest vectors.
4. **Gated fusion** — auxiliary-behavior interests are gated into the
   target-behavior interests slot by slot.
5. **Prediction** — a candidate item scores ``max_k ⟨u_k, e_item⟩``.

Training adds the self-supervised terms (cross-behavior interest contrast,
augmentation contrast, interest disentanglement) on top of the sampled
softmax next-item loss.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.sampling import NegativeSampler
from repro.data.schema import BehaviorSchema
from repro.hypergraph.incidence import Hypergraph
from repro.hypergraph.transformer import HypergraphTransformer
from repro.nn import functional as F
from repro.nn.layers import Embedding, Linear
from repro.nn.losses import cross_entropy_with_candidates
from repro.nn.module import ModuleList
from repro.nn.tensor import Tensor, concatenate
from repro.nn.transformer import TransformerEncoder
from repro.utils.seed import spawn_rngs

from .augment import augment_sequences
from .base import SequentialRecommender
from .config import MISSLConfig
from .disentangle import interest_disentanglement, prototype_orthogonality
from .embedding import SequenceEmbedding
from .interest import MultiInterestExtractor
from .ssl import augmentation_contrast, cross_behavior_interest_contrast

__all__ = ["MISSL", "LossBreakdown"]


class LossBreakdown(dict):
    """Named loss components of one training step (all floats, post-weighting)."""


class MISSL(SequentialRecommender):
    """Multi-behavior multi-interest recommender with self-supervised learning.

    Args:
        num_items: item vocabulary size (ids ``1..num_items``).
        schema: behavior vocabulary; determines how many encoders are built.
        graph: training hypergraph (may be None when ``use_hypergraph`` is
            False or ``hg_layers`` is 0).
        config: hyper-parameters.
        seed: controls every random draw (init, dropout, augmentation).
    """

    def __init__(self, num_items: int, schema: BehaviorSchema, graph: Hypergraph | None,
                 config: MISSLConfig, seed: int = 0):
        super().__init__()
        self.config = config
        self.schema = schema
        self.num_items = num_items
        init_rng, self.dropout_rng, self.aug_rng = spawn_rngs(seed, 3)

        dim = config.dim
        self.item_embedding = Embedding(num_items + 1, dim, init_rng, padding_idx=0)

        self.use_hypergraph = config.use_hypergraph and config.hg_layers > 0 and graph is not None
        if config.use_hypergraph and config.hg_layers > 0 and graph is None:
            raise ValueError("use_hypergraph=True requires a hypergraph")
        if self.use_hypergraph:
            self.hg_encoder = HypergraphTransformer(
                dim, graph, schema.num_behaviors + 1, config.hg_layers, init_rng,
                dropout=config.dropout,
            )

        self.seq_embedding = SequenceEmbedding(dim, config.max_len, schema, init_rng,
                                               dropout=config.dropout)
        # One encoder per behavior + one fused encoder for SSL augmentation views.
        behaviors = schema.behaviors if config.use_auxiliary else (schema.target,)
        self.active_behaviors = behaviors
        self.encoders = ModuleList([
            TransformerEncoder(dim, config.num_heads, 2 * dim, config.seq_layers,
                               init_rng, dropout=config.dropout, causal=True)
            for _ in behaviors
        ])
        self._encoder_of = {behavior: i for i, behavior in enumerate(behaviors)}
        self.fused_encoder = TransformerEncoder(dim, config.num_heads, 2 * dim,
                                                config.seq_layers, init_rng,
                                                dropout=config.dropout, causal=True)
        def make_extractor():
            if config.interest_mode == "routing":
                from .routing import DynamicRoutingExtractor
                return DynamicRoutingExtractor(dim, config.num_interests, init_rng,
                                               iterations=config.routing_iterations)
            return MultiInterestExtractor(dim, config.num_interests, init_rng)

        # Shared extractor (slot-aligned interests) is the default; the
        # "dedicated experts" variant gives every behavior stream its own
        # prototype table (plus one for the fused timeline).
        self.interest_extractor = make_extractor()
        if not config.shared_prototypes:
            self.behavior_extractors = ModuleList(
                [make_extractor() for _ in behaviors])
            self._extractor_of = {b: i for i, b in enumerate(behaviors)}
        self.fusion_gate = Linear(2 * dim, 1, init_rng)
        self.score_mode = config.score_mode
        self.score_pow = config.score_pow
        # Eval-time cache of the enhanced item table (invalidated on train()).
        self._table_cache: Tensor | None = None

    # ------------------------------------------------------------------
    # item table
    # ------------------------------------------------------------------
    def item_representations(self) -> Tensor:
        """(Hypergraph-enhanced) item table ``(num_items + 1, D)``."""
        if not self.training and self._table_cache is not None:
            return self._table_cache
        table = self.item_embedding.weight
        if self.use_hypergraph:
            table = self.hg_encoder(table)
        if not self.training:
            self._table_cache = table.detach()
            return self._table_cache
        return table

    def train(self, mode: bool = True) -> "MISSL":
        self._table_cache = None
        return super().train(mode)

    # ------------------------------------------------------------------
    # interest pipeline
    # ------------------------------------------------------------------
    def _clip(self, *arrays: np.ndarray) -> tuple[np.ndarray, ...]:
        """Truncate ``(B, L)`` arrays to the model's ``max_len`` (keep recent)."""
        return tuple(a[:, -self.config.max_len:] for a in arrays)

    def _encode_behavior(self, table: Tensor, behavior: str, items: np.ndarray,
                         mask: np.ndarray) -> Tensor:
        items, mask = self._clip(items, mask)
        states = self.seq_embedding(table, items, behavior)
        encoder = self.encoders[self._encoder_of[behavior]]
        return encoder(states, mask)

    FUSED_KEY = "__fused__"

    def behavior_interests(self, batch: Batch, table: Tensor | None = None
                           ) -> dict[str, Tensor]:
        """Per-behavior ``(B, K, D)`` interests for every active behavior.

        When auxiliary behaviors are enabled the dict also carries the fused
        cross-behavior timeline's interests under :attr:`FUSED_KEY` — the
        "shared view" that preserves cross-behavior recency information the
        per-behavior encoders cannot see.
        """
        table = self.item_representations() if table is None else table
        interests: dict[str, Tensor] = {}
        for behavior in self.active_behaviors:
            items, mask = self._clip(batch.items[behavior], batch.masks[behavior])
            states = self._encode_behavior(table, behavior, items, mask)
            extractor = self.interest_extractor if self.config.shared_prototypes \
                else self.behavior_extractors[self._extractor_of[behavior]]
            interests[behavior] = extractor(states, mask)
        if self.config.use_auxiliary:
            merged_items, merged_behaviors, merged_mask = self._clip(
                batch.merged_items, batch.merged_behaviors, batch.merged_mask)
            behaviors = np.where(merged_mask, merged_behaviors, 0)
            states = self.seq_embedding(table, merged_items, behaviors)
            encoded = self.fused_encoder(states, merged_mask)
            interests[self.FUSED_KEY] = self.interest_extractor(encoded, merged_mask)
        return interests

    def _fuse(self, interests: dict[str, Tensor], batch: Batch) -> Tensor:
        """Gate auxiliary interests into the target interests, slot-aligned."""
        target = interests[self.schema.target]
        if not self.config.use_auxiliary or not self.config.use_shared_fusion:
            return target
        fused = target
        views: list[tuple[Tensor, np.ndarray]] = []
        for behavior in self.schema.auxiliary:
            if behavior in interests:
                views.append((interests[behavior], batch.masks[behavior].any(axis=1)))
        if self.FUSED_KEY in interests:
            views.append((interests[self.FUSED_KEY], batch.merged_mask.any(axis=1)))
        for aux, has_rows in views:
            gate = F.sigmoid(self.fusion_gate(concatenate([target, aux], axis=-1)))
            # Rows whose stream is empty are gated out entirely.
            gate = gate * Tensor(has_rows.astype(target.data.dtype)[:, None, None])
            fused = fused + gate * aux
        return fused

    def user_representation(self, batch: Batch) -> Tensor:
        interests = self.behavior_interests(batch)
        return self._fuse(interests, batch)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def _augmented_view(self, batch: Batch, table: Tensor) -> Tensor:
        """Aggregated interests of one stochastic augmentation of the fused timeline."""
        merged_items, merged_behaviors, merged_mask = self._clip(
            batch.merged_items, batch.merged_behaviors, batch.merged_mask)
        items, mask = augment_sequences(
            merged_items, merged_mask, self.aug_rng,
            mask_prob=self.config.aug_mask_prob,
            crop_ratio=self.config.aug_crop_ratio,
            reorder_ratio=self.config.aug_reorder_ratio,
        )
        behaviors = np.where(mask, merged_behaviors, 0)
        states = self.seq_embedding(table, items, behaviors)
        encoded = self.fused_encoder(states, mask)
        return self.interest_extractor(encoded, mask)

    def training_loss(self, batch: Batch, sampler: NegativeSampler,
                      num_negatives: int | None = None,
                      return_breakdown: bool = False):
        """Joint loss ``L_rec + λ_ssl·L_ssl + λ_aug·L_aug + λ_d·L_disent``."""
        config = self.config
        num_negatives = config.num_train_negatives if num_negatives is None else num_negatives
        table = self.item_representations()
        interests = self.behavior_interests(batch, table)
        users = self._fuse(interests, batch)

        candidates = self.sample_training_candidates(batch, sampler, num_negatives)
        item_vectors = table.take(candidates, axis=0)            # (B, C, D)
        scores = self.interest_readout(users @ item_vectors.swapaxes(-1, -2))
        main = cross_entropy_with_candidates(scores)
        total = main
        breakdown = LossBreakdown(main=float(main.data))

        if config.use_auxiliary and config.lambda_ssl > 0 and len(self.schema.auxiliary) > 0:
            aux_interests, valid = [], np.ones(batch.size, dtype=bool)
            for behavior in self.schema.auxiliary:
                if behavior in interests:
                    aux_interests.append(interests[behavior])
                    valid &= batch.masks[behavior].any(axis=1)
            if aux_interests:
                ssl = cross_behavior_interest_contrast(
                    interests[self.schema.target], aux_interests,
                    temperature=config.temperature, valid_users=valid,
                    slot_aligned=config.shared_prototypes,
                )
                total = total + ssl * config.lambda_ssl
                breakdown["ssl"] = float(ssl.data) * config.lambda_ssl

        if config.lambda_aug > 0:
            view_a = self._augmented_view(batch, table)
            view_b = self._augmented_view(batch, table)
            aug = augmentation_contrast(view_a, view_b, temperature=config.temperature)
            total = total + aug * config.lambda_aug
            breakdown["aug"] = float(aug.data) * config.lambda_aug

        if config.lambda_disent > 0:
            disent = interest_disentanglement(users)
            prototypes = getattr(self.interest_extractor, "prototypes", None)
            if prototypes is not None:  # routing extractor has no prototype table
                disent = disent + prototype_orthogonality(prototypes)
            total = total + disent * config.lambda_disent
            breakdown["disent"] = float(disent.data) * config.lambda_disent

        breakdown["total"] = float(total.data)
        if return_breakdown:
            return total, breakdown
        return total
