"""Multi-interest extraction from encoded sequences.

Condenses a ``(B, L, D)`` sequence into K interest vectors ``(B, K, D)`` with
K learnable interest prototypes attending over the sequence positions
(the self-attentive variant of the ComiRec / MIND family that MISSL builds
on).  Padded positions are masked out of the attention.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["MultiInterestExtractor"]

_NEG_INF = -1e9


class MultiInterestExtractor(Module):
    """K-prototype attention pooling.

    For prototype k: ``α_k = softmax_t(⟨W x_t, p_k⟩ / sqrt(D))`` over valid
    positions, ``interest_k = Σ_t α_kt · x_t``.  A final linear mixes each
    interest (keeps interests in the item-embedding space for dot-product
    scoring).
    """

    def __init__(self, dim: int, num_interests: int, rng: np.random.Generator):
        super().__init__()
        self.dim = dim
        self.num_interests = num_interests
        prototypes = np.empty((num_interests, dim), dtype=np.float64)
        init.xavier_normal_(prototypes, rng)
        self.prototypes = Parameter(prototypes)
        self.key_proj = Linear(dim, dim, rng, bias=False)
        self.out_proj = Linear(dim, dim, rng, bias=False)
        self._scale = 1.0 / np.sqrt(dim)

    def forward(self, states: Tensor, valid_mask: np.ndarray) -> Tensor:
        """Extract interests.

        Args:
            states: ``(B, L, D)`` encoded sequence.
            valid_mask: ``(B, L)`` True at real positions.  Rows with zero
                valid positions produce a uniform attention over all slots
                (their output is meaningless and must be masked downstream —
                caller responsibility, checked in tests).

        Returns:
            ``(B, K, D)`` interest vectors.
        """
        keys = self.key_proj(states)                         # (B, L, D)
        scores = keys @ self.prototypes.T                    # (B, L, K)
        scores = scores * self._scale
        blocked = ~valid_mask.astype(bool)
        # Guard fully-empty rows: unblock everything so softmax stays finite.
        empty_rows = blocked.all(axis=1)
        if empty_rows.any():
            blocked = blocked.copy()
            blocked[empty_rows] = False
        scores = scores.masked_fill(blocked[:, :, None], _NEG_INF)
        attention = F.softmax(scores, axis=1)                # over L
        interests = attention.swapaxes(1, 2) @ states        # (B, K, D)
        return self.out_proj(interests)

    def attention_weights(self, states: Tensor, valid_mask: np.ndarray) -> np.ndarray:
        """The ``(B, L, K)`` attention map (analysis/visualization only)."""
        keys = self.key_proj(states)
        scores = (keys @ self.prototypes.T) * self._scale
        scores = scores.masked_fill(~valid_mask.astype(bool)[:, :, None], _NEG_INF)
        return F.softmax(scores, axis=1).numpy()
