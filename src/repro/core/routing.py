"""Dynamic-routing multi-interest extraction (the MIND-family alternative).

MISSL's default extractor uses prototype attention (:mod:`.interest`).  The
multi-interest literature's other canonical mechanism is capsule dynamic
routing (MIND, Li et al. 2019): interest capsules iteratively claim sequence
positions through routing logits updated by agreement.  Provided here both as
an ablation axis (``MISSLConfig.interest_mode = "routing"``) and so the
library covers the design space the paper builds on.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["DynamicRoutingExtractor"]


class DynamicRoutingExtractor(Module):
    """Capsule-style interest extraction via iterative dynamic routing.

    B2I routing (behavior-to-interest): each sequence position sends its
    (projected) vector to K interest capsules; routing weights are refined
    for ``iterations`` rounds by agreement between capsule outputs and
    position messages.  The squash non-linearity keeps capsule norms in
    (0, 1), as in the original formulation.
    """

    def __init__(self, dim: int, num_interests: int, rng: np.random.Generator,
                 iterations: int = 3):
        super().__init__()
        if iterations < 1:
            raise ValueError("need at least one routing iteration")
        self.dim = dim
        self.num_interests = num_interests
        self.iterations = iterations
        self.bilinear = Linear(dim, dim, rng, bias=False)
        # Learned routing-logit priors, one per interest capsule.
        priors = np.empty((num_interests,), dtype=np.float64)
        init.normal_(priors, rng, std=0.1)
        self.logit_prior = Parameter(priors)

    @staticmethod
    def _squash(x: Tensor) -> Tensor:
        """v -> (|v|^2 / (1 + |v|^2)) * v / |v|, per capsule."""
        squared = (x * x).sum(axis=-1, keepdims=True)
        norm = (squared + 1e-9).sqrt()
        return x * (squared / (1.0 + squared) / norm)

    def forward(self, states: Tensor, valid_mask: np.ndarray) -> Tensor:
        """Extract ``(B, K, D)`` interest capsules from ``(B, L, D)`` states."""
        batch, length, dim = states.shape
        messages = self.bilinear(states)                       # (B, L, D)
        # Invalid positions must contribute nothing to any capsule.  The
        # softmax runs over capsules (per position), so it cannot express
        # "no contribution" — instead the post-softmax weights are zeroed.
        valid = Tensor(valid_mask.astype(messages.data.dtype)[:, :, None])

        # Routing logits b: (B, L, K); start from the learned prior.
        logits = (self.logit_prior.expand_dims(0).expand_dims(0)
                  + Tensor(np.zeros((batch, length, self.num_interests),
                                    dtype=np.float32)))
        capsules = None
        for iteration in range(self.iterations):
            weights = F.softmax(logits, axis=2) * valid         # (B, L, K)
            # Aggregate position messages into capsules: (B, K, D).
            capsules = self._squash(weights.swapaxes(1, 2) @ messages)
            if iteration < self.iterations - 1:
                # Agreement update; routing weights are treated as constants
                # (standard MIND practice: gradients flow through the last
                # aggregation only).
                agreement = (messages @ capsules.swapaxes(1, 2)).detach()
                logits = logits + agreement
        return capsules

    def attention_weights(self, states: Tensor, valid_mask: np.ndarray) -> np.ndarray:
        """Final routing distribution ``(B, L, K)`` (analysis only)."""
        from repro.nn.tensor import no_grad
        with no_grad():
            batch, length, _ = states.shape
            messages = self.bilinear(states)
            valid = Tensor(valid_mask.astype(messages.data.dtype)[:, :, None])
            logits = (self.logit_prior.expand_dims(0).expand_dims(0)
                      + Tensor(np.zeros((batch, length, self.num_interests),
                                        dtype=np.float32)))
            for _ in range(self.iterations - 1):
                weights = F.softmax(logits, axis=2) * valid
                capsules = self._squash(weights.swapaxes(1, 2) @ messages)
                logits = logits + (messages @ capsules.swapaxes(1, 2))
            weights = F.softmax(logits, axis=2) * valid
            return weights.numpy()
