"""Interest disentanglement penalty.

Keeps a user's K interest vectors from collapsing onto one direction by
penalizing the squared off-diagonal cosine similarity between them, plus the
same penalty on the global interest prototypes.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = ["interest_disentanglement", "prototype_orthogonality"]


def interest_disentanglement(interests: Tensor) -> Tensor:
    """Mean squared off-diagonal cosine similarity of ``(B, K, D)`` interests.

    Zero when every user's interests are mutually orthogonal; for K = 1 the
    penalty is identically zero.
    """
    batch, k, _ = interests.shape
    if k == 1:
        return Tensor(0.0)
    normalized = F.l2_normalize(interests, axis=-1)
    gram = normalized @ normalized.swapaxes(-1, -2)          # (B, K, K)
    off_diagonal = ~np.eye(k, dtype=bool)[None]              # (1, K, K)
    masked = gram.masked_fill(~off_diagonal, 0.0)
    return (masked * masked).sum() * (1.0 / (batch * k * (k - 1)))


def prototype_orthogonality(prototypes: Tensor) -> Tensor:
    """Same penalty applied to the global ``(K, D)`` prototype table."""
    k = prototypes.shape[0]
    if k == 1:
        return Tensor(0.0)
    return interest_disentanglement(prototypes.expand_dims(0))
