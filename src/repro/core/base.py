"""The model contract shared by MISSL and every baseline.

A *sequential recommender* maps a :class:`~repro.data.batching.Batch` to user
representations and scores candidate items.  User state may be a single
vector ``(B, D)`` or K interest vectors ``(B, K, D)``; scoring takes the max
over interests (which degenerates to a plain dot product when K = 1), the
standard read-out of the multi-interest literature.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.sampling import NegativeSampler
from repro.nn.losses import cross_entropy_with_candidates
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["SequentialRecommender"]


class SequentialRecommender(Module):
    """Abstract base: subclasses implement ``user_representation`` and expose
    an item embedding table via ``item_representations``.

    Multi-interest read-out is controlled by two attributes subclasses may
    set (defaults give the standard hard read-out):

    * ``score_mode`` — ``"max"`` (hard argmax over interests) or
      ``"softmax"`` (label-aware attention: interests are weighted by their
      affinity to the candidate, MIND-style).
    * ``score_pow`` — sharpness of the label-aware attention (higher →
      closer to max; ignored under ``"max"``).
    """

    score_mode: str = "max"
    score_pow: float = 1.0

    def interest_readout(self, per_interest: Tensor) -> Tensor:
        """Collapse ``(B, K, C)`` per-interest scores to ``(B, C)``."""
        if self.score_mode == "max":
            return per_interest.max(axis=1)
        if self.score_mode == "softmax":
            from repro.nn import functional as F
            weights = F.softmax(per_interest * self.score_pow, axis=1)
            return (weights * per_interest).sum(axis=1)
        raise ValueError(f"unknown score_mode {self.score_mode!r}")

    # ------------------------------------------------------------------
    # required interface
    # ------------------------------------------------------------------
    def user_representation(self, batch: Batch) -> Tensor:
        """User state: ``(B, D)`` or ``(B, K, D)``."""
        raise NotImplementedError

    def item_representations(self) -> Tensor:
        """The full item embedding table ``(num_items + 1, D)`` used for scoring."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def score_candidates(self, batch: Batch, candidates: np.ndarray) -> Tensor:
        """Scores ``(B, C)`` for the candidate id matrix ``(B, C)``."""
        users = self.user_representation(batch)
        table = self.item_representations()
        item_vectors = table.take(candidates, axis=0)  # (B, C, D)
        if users.ndim == 2:
            scores = (item_vectors * users.expand_dims(1)).sum(axis=-1)  # (B, C)
        elif users.ndim == 3:
            per_interest = users @ item_vectors.swapaxes(-1, -2)         # (B, K, C)
            scores = self.interest_readout(per_interest)
        else:
            raise ValueError(f"unexpected user representation shape {users.shape}")
        return scores

    def _supports_factored_scoring(self) -> bool:
        """True when scoring decomposes into user/item representations.

        Models that override ``score_candidates`` directly (popularity,
        neighborhood methods, …) keep their custom semantics; the factored
        full-catalog path below is only valid when the base implementation
        is the one in effect and both representation hooks are provided.
        """
        cls = type(self)
        return (cls.score_candidates is SequentialRecommender.score_candidates
                and cls.user_representation is not SequentialRecommender.user_representation
                and cls.item_representations is not SequentialRecommender.item_representations)

    def score_all_items(self, batch: Batch, num_items: int) -> Tensor:
        """Scores ``(B, num_items)`` over the whole catalog (column ``i`` is
        item ``i + 1``) without materializing a per-user candidate matrix.

        The factored path shares one ``(num_items, D)`` item block across the
        batch — ``O(items)`` memory instead of the ``O(batch × items)`` tile
        (and ``O(batch × items × D)`` gather) that per-row candidate scoring
        costs.  Models with custom ``score_candidates`` fall back to that
        method on a broadcast (read-only, zero-copy) candidate view.
        """
        all_items = np.arange(1, num_items + 1, dtype=np.int64)
        if not self._supports_factored_scoring():
            candidates = np.broadcast_to(all_items, (batch.size, num_items))
            return self.score_candidates(batch, candidates)
        users = self.user_representation(batch)
        table = self.item_representations()
        item_vectors = table.take(all_items, axis=0)              # (N, D)
        if users.ndim == 2:
            return users @ item_vectors.swapaxes(-1, -2)          # (B, N)
        if users.ndim == 3:
            per_interest = users @ item_vectors.swapaxes(-1, -2)  # (B, K, N)
            return self.interest_readout(per_interest)
        raise ValueError(f"unexpected user representation shape {users.shape}")

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def sample_training_candidates(self, batch: Batch, sampler: NegativeSampler,
                                   num_negatives: int) -> np.ndarray:
        """Per-row ``[positive, negatives...]`` candidates for sampled softmax.

        Batches assembled by the prefetching pipeline arrive with the
        candidates presampled off the main process (``batch.candidates``);
        those are consumed directly when the width matches the requested
        negative count, otherwise sampling happens inline as before.
        """
        presampled = batch.candidates
        if presampled is not None and presampled.shape[1] == num_negatives + 1:
            return presampled
        rows = []
        for user, target in zip(batch.users, batch.targets):
            negatives = sampler.sample(int(user), num_negatives, exclude={int(target)})
            rows.append(np.concatenate([[target], negatives]))
        return np.stack(rows).astype(np.int64)

    def training_loss(self, batch: Batch, sampler: NegativeSampler,
                      num_negatives: int = 50) -> Tensor:
        """Sampled-softmax next-item loss; subclasses may add auxiliary terms."""
        candidates = self.sample_training_candidates(batch, sampler, num_negatives)
        scores = self.score_candidates(batch, candidates)
        return cross_entropy_with_candidates(scores)
