"""Stochastic sequence augmentations for the self-supervised contrast.

CL4SRec-style operators applied to left-padded ``(B, L)`` item matrices:

* **mask** — replace random valid positions with the padding id (item-level
  dropout; the position is also removed from the validity mask).
* **crop** — keep a random contiguous fraction of the valid suffix.
* **reorder** — shuffle a random contiguous window of valid positions.

Two extension operators (CoSeRec-style, available via ``extra_ops=True``):

* **substitute** — replace random valid items with co-occurring items from a
  caller-provided similarity table.
* **insert** — duplicate random valid items into adjacent positions
  (shifting the prefix out), a soft emphasis augmentation that needs no
  similarity model.

Each call draws one operator per row, so the two "views" of a sequence are
independently corrupted.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import PAD_ITEM

__all__ = ["augment_sequences", "mask_items", "crop_items", "reorder_items",
           "substitute_items", "insert_items", "build_substitution_table"]


def build_substitution_table(dataset) -> np.ndarray:
    """Item → most co-interacted other item, from training co-occurrence.

    Returns a ``(num_items + 1,)`` array; entry 0 and items with no
    co-occurring partner map to 0 ("no substitute known").  Must be built
    from a leakage-free training view of the corpus.
    """
    import scipy.sparse as sp
    rows, cols = [], []
    for user in dataset.users:
        for item in dataset.items_of_user(user):
            rows.append(user)
            cols.append(item)
    num_users = max(dataset.users) + 1 if dataset.users else 1
    incidence = sp.csr_matrix((np.ones(len(rows), dtype=np.int64), (rows, cols)),
                              shape=(num_users, dataset.num_items + 1))
    co = (incidence.T @ incidence).tolil()
    co.setdiag(0)
    co = co.tocsr()
    table = np.zeros(dataset.num_items + 1, dtype=np.int64)
    for item in range(1, dataset.num_items + 1):
        row = co.getrow(item)
        if row.nnz:
            table[item] = row.indices[row.data.argmax()]
    return table


def _valid_span(mask_row: np.ndarray) -> tuple[int, int]:
    """(start, stop) of the valid suffix of a left-padded row; stop = L."""
    valid = np.flatnonzero(mask_row)
    if valid.size == 0:
        return mask_row.size, mask_row.size
    return int(valid[0]), mask_row.size


def mask_items(items: np.ndarray, mask: np.ndarray, prob: float,
               rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Drop each valid position independently with probability ``prob``."""
    items = items.copy()
    mask = mask.copy()
    drop = mask & (rng.random(items.shape) < prob)
    # Never drop everything: keep at least one valid position per row.
    for row in range(items.shape[0]):
        if mask[row].any() and (mask[row] & ~drop[row]).sum() == 0:
            keep = rng.choice(np.flatnonzero(mask[row]))
            drop[row, keep] = False
    items[drop] = PAD_ITEM
    mask[drop] = False
    return items, mask


def crop_items(items: np.ndarray, mask: np.ndarray, ratio: float,
               rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Keep a random contiguous window of ``ratio`` of each row's valid span."""
    items = items.copy()
    mask = mask.copy()
    for row in range(items.shape[0]):
        start, stop = _valid_span(mask[row])
        length = stop - start
        if length <= 1:
            continue
        keep = max(1, int(round(length * ratio)))
        offset = int(rng.integers(0, length - keep + 1))
        window = slice(start + offset, start + offset + keep)
        kept_items = items[row, window].copy()
        items[row] = PAD_ITEM
        mask[row] = False
        items[row, -keep:] = kept_items
        mask[row, -keep:] = True
    return items, mask


def reorder_items(items: np.ndarray, mask: np.ndarray, ratio: float,
                  rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Shuffle a random contiguous window of ``ratio`` of the valid span."""
    items = items.copy()
    for row in range(items.shape[0]):
        start, stop = _valid_span(mask[row])
        length = stop - start
        window_len = max(2, int(round(length * ratio)))
        if length < window_len:
            continue
        offset = int(rng.integers(0, length - window_len + 1))
        window = slice(start + offset, start + offset + window_len)
        permuted = rng.permutation(items[row, window])
        items[row, window] = permuted
    return items, mask.copy()


def substitute_items(items: np.ndarray, mask: np.ndarray, prob: float,
                     rng: np.random.Generator, similar: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Replace each valid item with a similar item with probability ``prob``.

    ``similar`` maps item id → a substitute item id (e.g. the most
    co-occurring item); id 0 entries mean "no substitute known" and are left
    unchanged.
    """
    items = items.copy()
    replace = mask & (rng.random(items.shape) < prob)
    substitutes = similar[items[replace]]
    known = substitutes != PAD_ITEM
    target_positions = np.flatnonzero(replace.ravel())[known]
    items.ravel()[target_positions] = substitutes[known]
    return items, mask.copy()


def insert_items(items: np.ndarray, mask: np.ndarray, prob: float,
                 rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Duplicate random valid items in place (soft emphasis augmentation).

    Each valid event is doubled with probability ``prob``; the row is then
    re-padded to the fixed width, dropping the oldest events if it overflows.
    """
    out_items = items.copy()
    out_mask = mask.copy()
    width = items.shape[1]
    for row in range(items.shape[0]):
        sequence = items[row][mask[row]].tolist()
        if not sequence:
            continue
        duplicated: list[int] = []
        for value in sequence:
            if rng.random() < prob:
                duplicated.append(value)
            duplicated.append(value)
        duplicated = duplicated[-width:]
        out_items[row] = PAD_ITEM
        out_mask[row] = False
        out_items[row, -len(duplicated):] = duplicated
        out_mask[row, -len(duplicated):] = True
    return out_items, out_mask


def augment_sequences(items: np.ndarray, mask: np.ndarray, rng: np.random.Generator,
                      mask_prob: float = 0.2, crop_ratio: float = 0.6,
                      reorder_ratio: float = 0.25,
                      substitute_prob: float = 0.2, insert_prob: float = 0.15,
                      similar: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Apply one randomly chosen operator per row.

    The base pool is {mask, crop, reorder}; passing ``similar`` (an item →
    substitute-item table) extends it with {substitute, insert}.
    Returns a new ``(items, mask)`` pair; inputs are never modified.
    """
    out_items = items.copy()
    out_mask = mask.copy()
    operators = [
        lambda i, m, r: mask_items(i, m, mask_prob, r),
        lambda i, m, r: crop_items(i, m, crop_ratio, r),
        lambda i, m, r: reorder_items(i, m, reorder_ratio, r),
    ]
    if similar is not None:
        operators.append(lambda i, m, r: substitute_items(i, m, substitute_prob, r,
                                                          similar))
        operators.append(lambda i, m, r: insert_items(i, m, insert_prob, r))
    choices = rng.integers(0, len(operators), size=items.shape[0])
    for op_id, op in enumerate(operators):
        rows = np.flatnonzero(choices == op_id)
        if rows.size == 0:
            continue
        new_items, new_mask = op(items[rows], mask[rows], rng)
        out_items[rows] = new_items
        out_mask[rows] = new_mask
    return out_items, out_mask
