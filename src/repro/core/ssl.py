"""Self-supervised objectives of MISSL.

Two contrasts regularize the interest space:

* :func:`cross_behavior_interest_contrast` — the k-th interest of a user
  extracted from an **auxiliary** behavior should agree with the k-th
  interest of the same user extracted from the **target** behavior
  (slot-wise positive pairs; all other (user, slot) combinations in the
  batch are negatives).
* :func:`augmentation_contrast` — two stochastic augmentations of the same
  fused sequence should produce the same aggregated interest vector
  (CL4SRec-style instance discrimination).
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import info_nce
from repro.nn.tensor import Tensor

__all__ = ["cross_behavior_interest_contrast", "augmentation_contrast"]


def cross_behavior_interest_contrast(target_interests: Tensor,
                                     auxiliary_interests: list[Tensor],
                                     temperature: float,
                                     valid_users: np.ndarray | None = None,
                                     slot_aligned: bool = True) -> Tensor:
    """InfoNCE between interests across behaviors.

    Args:
        target_interests: ``(B, K, D)`` from the target behavior.
        auxiliary_interests: list of ``(B, K, D)`` tensors, one per auxiliary
            behavior.
        temperature: τ.
        valid_users: optional ``(B,)`` bool — rows where the auxiliary
            sequence was empty contribute degenerate interests and are
            dropped from the contrast.
        slot_aligned: when True (shared prototypes), the k-th interest slots
            of the two behaviors form a positive pair; when False (dedicated
            extractors, slots not comparable), the mean-pooled interests do.

    Returns the mean loss over auxiliary behaviors (zero tensor when no
    auxiliary view has enough valid rows for a meaningful contrast).
    """
    batch, k, dim = target_interests.shape
    losses: list[Tensor] = []
    for aux in auxiliary_interests:
        if aux.shape != target_interests.shape:
            raise ValueError(f"interest shapes differ: {aux.shape} vs {target_interests.shape}")
        if valid_users is not None:
            rows = np.flatnonzero(valid_users)
            if rows.size < 2:
                continue
            anchor3 = target_interests[rows]
            positive3 = aux[rows]
        else:
            rows = np.arange(batch, dtype=np.intp)
            anchor3 = target_interests
            positive3 = aux
        if slot_aligned:
            anchor = anchor3.reshape(rows.size * k, dim)
            positive = positive3.reshape(rows.size * k, dim)
        else:
            anchor = anchor3.mean(axis=1)
            positive = positive3.mean(axis=1)
        losses.append(info_nce(anchor, positive, temperature=temperature))
    if not losses:
        return Tensor(0.0)
    total = losses[0]
    for loss in losses[1:]:
        total = total + loss
    return total * (1.0 / len(losses))


def augmentation_contrast(view_a: Tensor, view_b: Tensor, temperature: float) -> Tensor:
    """InfoNCE between aggregated interests of two augmented views ``(B, D)``."""
    if view_a.ndim == 3:
        view_a = view_a.mean(axis=1)
    if view_b.ndim == 3:
        view_b = view_b.mean(axis=1)
    return info_nce(view_a, view_b, temperature=temperature)
