"""Behavior-aware sequence embedding.

Combines (hypergraph-enhanced) item embeddings with learned position and
behavior-type embeddings to produce the input states of the per-behavior
sequence encoders.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import BehaviorSchema
from repro.nn.layers import Dropout, Embedding, LayerNorm
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["SequenceEmbedding"]


class SequenceEmbedding(Module):
    """Embeds an ``(B, L)`` item-id matrix into ``(B, L, D)`` states.

    The item table is passed at call time (it may be the raw table or the
    hypergraph-enhanced table computed earlier in the same forward pass);
    this module owns only the position and behavior-type tables.
    """

    def __init__(self, dim: int, max_len: int, schema: BehaviorSchema,
                 rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.max_len = max_len
        self.position = Embedding(max_len, dim, rng)
        self.behavior = Embedding(schema.num_behaviors, dim, rng)
        self.norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng)
        self.schema = schema

    def forward(self, item_table: Tensor, items: np.ndarray,
                behavior: str | np.ndarray) -> Tensor:
        """Embed ``items`` with positions and behavior types.

        Args:
            item_table: ``(num_items + 1, D)`` lookup table.
            items: ``(B, L)`` int ids, left-padded with 0.
            behavior: a behavior name (whole matrix shares one type) or a
                ``(B, L)`` behavior-id matrix (fused cross-behavior timeline).
        """
        batch, length = items.shape
        if length > self.max_len:
            raise ValueError(f"sequence length {length} exceeds max_len {self.max_len}")
        vectors = item_table.take(items, axis=0)  # (B, L, D)
        # Right-aligned positions: the most recent event always gets the
        # highest position id regardless of padding length.
        positions = np.arange(self.max_len - length, self.max_len, dtype=np.intp)
        vectors = vectors + self.position(positions)
        if isinstance(behavior, str):
            type_ids = np.full((batch, length), self.schema.behavior_id(behavior),
                               dtype=np.int64)
        else:
            type_ids = np.asarray(behavior)
        vectors = vectors + self.behavior(type_ids)
        return self.dropout(self.norm(vectors))
