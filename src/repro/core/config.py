"""MISSL hyper-parameter configuration.

One dataclass holds every knob, including the ablation switches exercised by
the T3 experiment; :meth:`MISSLConfig.ablate` produces modified copies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MISSLConfig"]


@dataclass(frozen=True)
class MISSLConfig:
    """Hyper-parameters of the MISSL model.

    Architecture:
        dim: embedding and hidden size.
        num_interests: K, the number of interest vectors per behavior.
        num_heads: attention heads in the sequence encoders.
        seq_layers: transformer layers per behavior encoder.
        hg_layers: hypergraph transformer layers (0 disables message passing).
        max_len: per-behavior history truncation.
        dropout: dropout probability throughout.
        interest_mode: "attention" (prototype attention, ComiRec-SA style —
            the default) or "routing" (MIND-style capsule dynamic routing).
        routing_iterations: routing rounds when interest_mode="routing".
        score_mode: interest read-out — "max" (hard argmax over interests)
            or "softmax" (label-aware attention over interests).
        score_pow: sharpness of the label-aware attention.

    Self-supervision:
        temperature: InfoNCE temperature τ.
        lambda_ssl: weight of the cross-behavior interest contrast.
        lambda_aug: weight of the augmentation (CL4SRec-style) contrast.
        lambda_disent: weight of the interest-disentanglement penalty.
        aug_mask_prob / aug_crop_ratio / aug_reorder_ratio: augmentation ops.

    Training:
        num_train_negatives: negatives per positive in the sampled softmax.

    Ablations (T3 and config-level axes):
        use_hypergraph: hypergraph transformer on/off (off = raw embeddings).
        use_auxiliary: read auxiliary behavior sequences at all.
        use_shared_fusion: gate auxiliary interests into target interests.
        shared_prototypes: shared vs per-behavior interest extractors.
    """

    dim: int = 32
    num_interests: int = 4
    num_heads: int = 2
    seq_layers: int = 1
    hg_layers: int = 1
    max_len: int = 30
    dropout: float = 0.1
    interest_mode: str = "attention"
    routing_iterations: int = 3
    score_mode: str = "max"
    score_pow: float = 1.0

    temperature: float = 0.3
    lambda_ssl: float = 0.1
    lambda_aug: float = 0.1
    lambda_disent: float = 0.05
    aug_mask_prob: float = 0.2
    aug_crop_ratio: float = 0.6
    aug_reorder_ratio: float = 0.25

    num_train_negatives: int = 50

    use_hypergraph: bool = True
    use_auxiliary: bool = True
    use_shared_fusion: bool = True
    shared_prototypes: bool = True
    """One interest extractor shared by all behaviors (slot-aligned interests,
    enabling the slot-wise cross-behavior contrast) vs a dedicated extractor
    per behavior (the "dedicated experts" variant; the SSL contrast then
    falls back to comparing mean-pooled interests)."""

    def __post_init__(self) -> None:
        if self.dim % self.num_heads != 0:
            raise ValueError(f"dim {self.dim} must be divisible by num_heads {self.num_heads}")
        if self.num_interests < 1:
            raise ValueError("need at least one interest")
        if self.interest_mode not in ("attention", "routing"):
            raise ValueError(f"unknown interest_mode {self.interest_mode!r}")
        if self.routing_iterations < 1:
            raise ValueError("routing_iterations must be positive")
        if self.score_mode not in ("max", "softmax"):
            raise ValueError(f"unknown score_mode {self.score_mode!r}")
        if not 0.0 < self.temperature:
            raise ValueError("temperature must be positive")
        for name in ("lambda_ssl", "lambda_aug", "lambda_disent", "dropout"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def ablate(self, **changes) -> "MISSLConfig":
        """A copy with the given fields changed (used by the ablation bench)."""
        return replace(self, **changes)
