"""``repro.core`` — the MISSL model and its components."""

from .augment import (augment_sequences, build_substitution_table, crop_items, insert_items,
                      mask_items, reorder_items, substitute_items)
from .base import SequentialRecommender
from .config import MISSLConfig
from .disentangle import interest_disentanglement, prototype_orthogonality
from .embedding import SequenceEmbedding
from .interest import MultiInterestExtractor
from .model import MISSL, LossBreakdown
from .routing import DynamicRoutingExtractor
from .ssl import augmentation_contrast, cross_behavior_interest_contrast

__all__ = [
    "MISSL", "MISSLConfig", "LossBreakdown", "SequentialRecommender",
    "SequenceEmbedding", "MultiInterestExtractor", "DynamicRoutingExtractor",
    "augment_sequences", "mask_items", "crop_items", "reorder_items",
    "substitute_items", "insert_items", "build_substitution_table",
    "cross_behavior_interest_contrast", "augmentation_contrast",
    "interest_disentanglement", "prototype_orthogonality",
]
