"""BERT4Rec (Sun et al., 2019): bidirectional transformer sequence model.

Faithful to the architecture (non-causal attention); the training objective
is the same sampled softmax as the rest of the pipeline rather than the
original cloze task — a standard simplification when all baselines share one
training harness, and one that preserves the architectural comparison.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import BehaviorSchema

from .sasrec import SASRec

__all__ = ["BERT4Rec"]


class BERT4Rec(SASRec):
    def __init__(self, num_items: int, schema: BehaviorSchema, dim: int = 32,
                 max_len: int = 30, num_heads: int = 2, num_layers: int = 2,
                 rng: np.random.Generator | None = None, dropout: float = 0.1,
                 seed: int = 0):
        super().__init__(num_items, schema, dim=dim, max_len=max_len,
                         num_heads=num_heads, num_layers=num_layers, rng=rng,
                         dropout=dropout, seed=seed, causal=False)
