"""Popularity baseline: rank candidates by global interaction count.

Non-parametric floor for every comparison table.  ``fit`` counts training
interactions; scoring ignores the user entirely.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SequentialRecommender
from repro.data.batching import Batch
from repro.data.dataset import MultiBehaviorDataset
from repro.nn.tensor import Tensor

__all__ = ["Popularity"]


class Popularity(SequentialRecommender):
    """Global popularity scorer (no trainable parameters)."""

    def __init__(self, num_items: int):
        super().__init__()
        self.num_items = num_items
        self._counts = np.zeros(num_items + 1, dtype=np.float64)
        self._fitted = False

    def fit(self, dataset: MultiBehaviorDataset, target_only: bool = True) -> "Popularity":
        """Count training interactions.

        ``target_only=True`` (default) matches the single-behavior protocol:
        popularity is measured on the behavior being predicted.
        """
        counts = np.zeros(self.num_items + 1, dtype=np.float64)
        behaviors = (dataset.schema.target,) if target_only else dataset.schema.behaviors
        for event in dataset.interactions():
            if event.behavior in behaviors:
                counts[event.item] += 1
        self._counts = counts
        self._fitted = True
        return self

    def score_candidates(self, batch: Batch, candidates: np.ndarray) -> Tensor:
        if not self._fitted:
            raise RuntimeError("Popularity.fit(dataset) must be called before scoring")
        return Tensor(self._counts[candidates])

    def training_loss(self, *args, **kwargs):  # pragma: no cover - defensive
        raise RuntimeError("Popularity has no trainable parameters; call fit() instead")
