"""MB-HT-lite: hypergraph-enhanced multi-behavior transformer.

Combines the hypergraph transformer item enhancement with the behavior-aware
sequence encoder — i.e. MISSL **minus** multi-interest extraction and
self-supervision.  The closest published relative is MB-HT (Yang et al.,
KDD 2022); this ablated form isolates exactly what MISSL's remaining
ingredients add.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import BehaviorSchema
from repro.hypergraph.incidence import Hypergraph
from repro.hypergraph.transformer import HypergraphTransformer
from repro.nn.tensor import Tensor

from .sasrec import SASRec

__all__ = ["MBHTLite"]


class MBHTLite(SASRec):
    def __init__(self, num_items: int, schema: BehaviorSchema, graph: Hypergraph,
                 dim: int = 32, max_len: int = 30, num_heads: int = 2,
                 num_layers: int = 1, hg_layers: int = 1,
                 rng: np.random.Generator | None = None, dropout: float = 0.1,
                 seed: int = 0):
        rng = rng or np.random.default_rng(seed)
        super().__init__(num_items, schema, dim=dim, max_len=max_len,
                         num_heads=num_heads, num_layers=num_layers, rng=rng,
                         dropout=dropout, use_behavior_embedding=True,
                         behavior_scope="merged")
        self.hg_encoder = HypergraphTransformer(dim, graph, schema.num_behaviors + 1,
                                                hg_layers, rng, dropout=dropout)
        self._table_cache: Tensor | None = None

    def item_representations(self) -> Tensor:
        if not self.training and self._table_cache is not None:
            return self._table_cache
        table = self.hg_encoder(self.item_embedding.weight)
        if not self.training:
            self._table_cache = table.detach()
            return self._table_cache
        return table

    def train(self, mode: bool = True) -> "MBHTLite":
        self._table_cache = None
        return super().train(mode)
