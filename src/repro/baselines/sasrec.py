"""SASRec (Kang & McAuley, 2018): causal self-attention sequence model.

The workhorse single-behavior baseline (default scope: target-behavior
sequence only); also the parent class of several derived baselines
(ComiRec, CL4SRec, BERT4Rec, MB-SASRec) that reuse its encoder.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.schema import BehaviorSchema
from repro.nn.tensor import Tensor
from repro.nn.transformer import TransformerEncoder

from .common import MergedSequenceModel, last_valid_state

__all__ = ["SASRec"]


class SASRec(MergedSequenceModel):
    def __init__(self, num_items: int, schema: BehaviorSchema, dim: int = 32,
                 max_len: int = 30, num_heads: int = 2, num_layers: int = 1,
                 rng: np.random.Generator | None = None, dropout: float = 0.1,
                 seed: int = 0, use_behavior_embedding: bool = False,
                 causal: bool = True, behavior_scope: str = "target"):
        rng = rng or np.random.default_rng(seed)
        super().__init__(num_items, schema, dim, max_len, rng, dropout=dropout,
                         use_behavior_embedding=use_behavior_embedding,
                         behavior_scope=behavior_scope)
        self.encoder = TransformerEncoder(dim, num_heads, 2 * dim, num_layers, rng,
                                          dropout=dropout, causal=causal)

    def encode(self, batch: Batch) -> tuple[Tensor, np.ndarray]:
        """Full encoded sequence ``(B, L, D)`` plus its validity mask."""
        items, behaviors, mask = self.sequence_inputs(batch)
        states = self.embed_sequence(items, behaviors if self.use_behavior_embedding else None)
        return self.encoder(states, mask), mask

    def user_representation(self, batch: Batch) -> Tensor:
        states, mask = self.encode(batch)
        return last_valid_state(states, mask)
