"""LightGCN-lite (He et al., 2020): graph collaborative filtering baseline.

Non-sequential graph CF over the user-item bipartite graph: user and item
embeddings are propagated L rounds through the symmetric-normalized
adjacency, layer outputs are averaged, and scoring is a dot product.  The
multi-behavior twist (matching how graph-CF baselines are adapted in the
multi-behavior literature): edges are weighted by behavior importance, with
the target behavior weighted highest.

Included to separate "graph propagation" from "sequence modeling" in
comparisons — it shares the propagation idea with MISSL's hypergraph but has
no notion of order or interests.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.base import SequentialRecommender
from repro.data.batching import Batch
from repro.data.dataset import MultiBehaviorDataset
from repro.data.sampling import NegativeSampler
from repro.nn.layers import Embedding
from repro.nn.losses import bpr_loss
from repro.nn.tensor import Tensor, concatenate
from repro.hypergraph.ops import sparse_mm

__all__ = ["LightGCN", "build_bipartite_adjacency"]

DEFAULT_BEHAVIOR_WEIGHTS = {"view": 0.5, "cart": 0.8, "fav": 0.8, "like": 0.8,
                            "buy": 1.0, "tip": 1.0}


def build_bipartite_adjacency(dataset: MultiBehaviorDataset,
                              behavior_weights: dict[str, float] | None = None
                              ) -> sp.csr_matrix:
    """Symmetric-normalized user-item adjacency over ``num_users + num_items + 1``
    nodes (users first, then the 1-based item block; the padding item row
    stays empty).

    Must be built from a leakage-free training view of the corpus.
    """
    weights = behavior_weights or DEFAULT_BEHAVIOR_WEIGHTS
    num_users = max(dataset.users) + 1 if dataset.users else 1
    size = num_users + dataset.num_items + 1
    rows, cols, vals = [], [], []
    for event in dataset.interactions():
        weight = weights.get(event.behavior, 0.5)
        user_node = event.user
        item_node = num_users + event.item
        rows += [user_node, item_node]
        cols += [item_node, user_node]
        vals += [weight, weight]
    adjacency = sp.csr_matrix((vals, (rows, cols)), shape=(size, size))
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.maximum(degrees, 1e-12)), 0.0)
    d = sp.diags(inv_sqrt)
    return (d @ adjacency @ d).tocsr()


class LightGCN(SequentialRecommender):
    """L-layer linear propagation over the bipartite graph, mean-pooled."""

    def __init__(self, num_items: int, num_users: int, dataset: MultiBehaviorDataset,
                 dim: int = 32, num_layers: int = 2,
                 rng: np.random.Generator | None = None, seed: int = 0,
                 behavior_weights: dict[str, float] | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(seed)
        if num_layers < 1:
            raise ValueError("need at least one propagation layer")
        self.num_items = num_items
        self.num_users = num_users
        self.num_layers = num_layers
        self.adjacency = build_bipartite_adjacency(dataset, behavior_weights)
        self.user_embedding = Embedding(num_users, dim, rng)
        self.item_embedding = Embedding(num_items + 1, dim, rng, padding_idx=0)
        self._cache: tuple[Tensor, Tensor] | None = None

    def propagate(self) -> tuple[Tensor, Tensor]:
        """(user_table, item_table) after mean-pooled L-layer propagation."""
        if not self.training and self._cache is not None:
            return self._cache
        stacked = concatenate([self.user_embedding.weight, self.item_embedding.weight],
                              axis=0)
        accumulated = stacked
        current = stacked
        for _ in range(self.num_layers):
            current = sparse_mm(self.adjacency, current)
            accumulated = accumulated + current
        pooled = accumulated * (1.0 / (self.num_layers + 1))
        users = pooled[:self.num_users]
        items = pooled[self.num_users:]
        if not self.training:
            self._cache = (users.detach(), items.detach())
            return self._cache
        return users, items

    def train(self, mode: bool = True) -> "LightGCN":
        self._cache = None
        return super().train(mode)

    def item_representations(self) -> Tensor:
        return self.propagate()[1]

    def user_representation(self, batch: Batch) -> Tensor:
        users = np.asarray(batch.users)
        if users.max(initial=0) >= self.num_users:
            raise IndexError(f"user id {users.max()} outside [0, {self.num_users})")
        return self.propagate()[0][users]

    def score_candidates(self, batch: Batch, candidates: np.ndarray) -> Tensor:
        user_table, item_table = self.propagate()
        users = user_table[np.asarray(batch.users)]            # (B, D)
        items = item_table.take(candidates, axis=0)            # (B, C, D)
        return (items * users.expand_dims(1)).sum(axis=-1)

    def training_loss(self, batch: Batch, sampler: NegativeSampler,
                      num_negatives: int = 1) -> Tensor:
        user_table, item_table = self.propagate()
        users = user_table[np.asarray(batch.users)]
        positives = item_table[np.asarray(batch.targets)]
        negative_ids = np.array([
            sampler.sample(int(u), 1, exclude={int(t)})[0]
            for u, t in zip(batch.users, batch.targets)
        ])
        negatives = item_table[negative_ids]
        return bpr_loss((users * positives).sum(axis=-1),
                        (users * negatives).sum(axis=-1))
