"""``repro.baselines`` — reimplemented comparison methods.

Three families, mirroring the paper's comparison table:

* Traditional sequential: :class:`Popularity`, :class:`ItemKNN`,
  :class:`GRU4Rec`, :class:`SASRec`, :class:`BERT4Rec`.
* Multi-interest / self-supervised: :class:`ComiRec`, :class:`CL4SRec`.
* Multi-behavior: :class:`MBGRU`, :class:`MBSASRec`, :class:`MBHTLite`.
"""

from .bert4rec import BERT4Rec
from .bprmf import BPRMF
from .cl4srec import CL4SRec
from .comirec import ComiRec
from .common import MergedSequenceModel, last_valid_state
from .gru4rec import GRU4Rec
from .itemknn import ItemKNN
from .lightgcn import LightGCN, build_bipartite_adjacency
from .mbgru import MBGRU
from .mbht_lite import MBHTLite
from .mbsasrec import MBSASRec
from .pop import Popularity
from .sasrec import SASRec

__all__ = [
    "Popularity", "ItemKNN", "BPRMF", "LightGCN", "build_bipartite_adjacency",
    "GRU4Rec", "SASRec", "BERT4Rec",
    "ComiRec", "CL4SRec", "MBGRU", "MBSASRec", "MBHTLite",
    "MergedSequenceModel", "last_valid_state",
]
