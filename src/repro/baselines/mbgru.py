"""MB-GRU: recurrent multi-behavior baseline (NMTR-style signal usage).

GRU over the fused timeline **with** behavior-type embeddings — the simplest
model that can distinguish a view from a buy.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.schema import BehaviorSchema
from repro.nn.rnn import GRU
from repro.nn.tensor import Tensor

from .common import MergedSequenceModel

__all__ = ["MBGRU"]


class MBGRU(MergedSequenceModel):
    def __init__(self, num_items: int, schema: BehaviorSchema, dim: int = 32,
                 max_len: int = 30, rng: np.random.Generator | None = None,
                 dropout: float = 0.1, seed: int = 0):
        rng = rng or np.random.default_rng(seed)
        super().__init__(num_items, schema, dim, max_len, rng, dropout=dropout,
                         use_behavior_embedding=True)
        self.gru = GRU(dim, dim, rng)

    def user_representation(self, batch: Batch) -> Tensor:
        items, behaviors, mask = self.sequence_inputs(batch)
        states = self.embed_sequence(items, behaviors)
        return self.gru(states, mask)[:, -1, :]
