"""CL4SRec (Xie et al., 2022): SASRec + contrastive sequence augmentation.

Isolates the *self-supervised* ingredient of MISSL: same encoder as SASRec,
plus an InfoNCE term between two stochastic augmentations (mask/crop/reorder)
of each training sequence.
"""

from __future__ import annotations

import numpy as np

from repro.core.augment import augment_sequences
from repro.core.ssl import augmentation_contrast
from repro.data.batching import Batch
from repro.data.sampling import NegativeSampler
from repro.data.schema import BehaviorSchema
from repro.nn.losses import cross_entropy_with_candidates
from repro.nn.tensor import Tensor

from .common import last_valid_state
from .sasrec import SASRec

__all__ = ["CL4SRec"]


class CL4SRec(SASRec):
    def __init__(self, num_items: int, schema: BehaviorSchema, dim: int = 32,
                 max_len: int = 30, num_heads: int = 2, num_layers: int = 1,
                 rng: np.random.Generator | None = None, dropout: float = 0.1,
                 seed: int = 0, lambda_aug: float = 0.1, temperature: float = 0.3,
                 aug_mask_prob: float = 0.2, aug_crop_ratio: float = 0.6,
                 aug_reorder_ratio: float = 0.25, similar: np.ndarray | None = None):
        """``similar`` (item → substitute-item table, e.g. from
        :func:`repro.core.augment.build_substitution_table`) extends the
        augmentation pool with the substitute/insert operators."""
        rng = rng or np.random.default_rng(seed)
        super().__init__(num_items, schema, dim=dim, max_len=max_len,
                         num_heads=num_heads, num_layers=num_layers, rng=rng,
                         dropout=dropout)
        self.lambda_aug = lambda_aug
        self.temperature = temperature
        self.aug_params = dict(mask_prob=aug_mask_prob, crop_ratio=aug_crop_ratio,
                               reorder_ratio=aug_reorder_ratio, similar=similar)
        self.aug_rng = np.random.default_rng(seed + 101)

    def _view(self, items: np.ndarray, mask: np.ndarray) -> Tensor:
        aug_items, aug_mask = augment_sequences(items, mask, self.aug_rng, **self.aug_params)
        states = self.embed_sequence(aug_items)
        return last_valid_state(self.encoder(states, aug_mask), aug_mask)

    def training_loss(self, batch: Batch, sampler: NegativeSampler,
                      num_negatives: int = 50) -> Tensor:
        candidates = self.sample_training_candidates(batch, sampler, num_negatives)
        scores = self.score_candidates(batch, candidates)
        loss = cross_entropy_with_candidates(scores)
        if self.lambda_aug > 0:
            items, _, mask = self.sequence_inputs(batch)
            view_a = self._view(items, mask)
            view_b = self._view(items, mask)
            loss = loss + augmentation_contrast(view_a, view_b, self.temperature) \
                * self.lambda_aug
        return loss
