"""MB-SASRec: behavior-aware transformer (MB-STR-style baseline).

SASRec's causal transformer over the fused timeline with behavior-type
embeddings — multi-behavior awareness without hypergraphs, multi-interest
extraction, or self-supervision.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import BehaviorSchema

from .sasrec import SASRec

__all__ = ["MBSASRec"]


class MBSASRec(SASRec):
    def __init__(self, num_items: int, schema: BehaviorSchema, dim: int = 32,
                 max_len: int = 30, num_heads: int = 2, num_layers: int = 1,
                 rng: np.random.Generator | None = None, dropout: float = 0.1,
                 seed: int = 0):
        super().__init__(num_items, schema, dim=dim, max_len=max_len,
                         num_heads=num_heads, num_layers=num_layers, rng=rng,
                         dropout=dropout, seed=seed, use_behavior_embedding=True,
                         behavior_scope="merged")
