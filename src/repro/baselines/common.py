"""Shared machinery for sequence-model baselines.

Baselines come in two *behavior scopes*, matching the evaluation convention
of the multi-behavior literature:

* ``"target"`` — traditional single-behavior models (GRU4Rec, SASRec, ...)
  see only the target-behavior sequence (e.g. the user's buys).  Their
  struggle on sparse target behaviors is precisely the motivation for
  multi-behavior methods.
* ``"merged"`` — multi-behavior models read the fused cross-behavior
  timeline and additionally embed the behavior-type ids.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SequentialRecommender
from repro.data.batching import Batch
from repro.data.schema import BehaviorSchema
from repro.nn.layers import Dropout, Embedding, LayerNorm
from repro.nn.tensor import Tensor

__all__ = ["MergedSequenceModel", "last_valid_state"]


def last_valid_state(states: Tensor, mask: np.ndarray) -> Tensor:
    """The encoder state at each row's most recent valid position.

    With left padding the most recent event sits in the final column, so this
    is simply ``states[:, -1]``; rows that are entirely padding (possible for
    behavior-restricted inputs) still return the final column, whose value is
    meaningless — callers mask such rows out of losses.
    """
    return states[:, -1, :]


class MergedSequenceModel(SequentialRecommender):
    """Base for models that embed the fused timeline.

    Handles the item/position/behavior embedding tables; subclasses provide
    the sequence encoder and the read-out.
    """

    def __init__(self, num_items: int, schema: BehaviorSchema, dim: int, max_len: int,
                 rng: np.random.Generator, dropout: float = 0.0,
                 use_behavior_embedding: bool = False, behavior_scope: str = "merged"):
        super().__init__()
        if behavior_scope not in ("merged", "target"):
            raise ValueError(f"unknown behavior scope {behavior_scope!r}")
        if behavior_scope == "target" and use_behavior_embedding:
            raise ValueError("target-scope models have a single behavior; no type embedding")
        self.num_items = num_items
        self.schema = schema
        self.dim = dim
        self.max_len = max_len
        self.behavior_scope = behavior_scope
        self.use_behavior_embedding = use_behavior_embedding
        self.item_embedding = Embedding(num_items + 1, dim, rng, padding_idx=0)
        self.position_embedding = Embedding(max_len, dim, rng)
        if use_behavior_embedding:
            self.behavior_embedding = Embedding(schema.num_behaviors, dim, rng)
        self.input_norm = LayerNorm(dim)
        self.input_dropout = Dropout(dropout, rng)

    def item_representations(self) -> Tensor:
        return self.item_embedding.weight

    def embed_sequence(self, items: np.ndarray, behaviors: np.ndarray | None = None,
                       table: Tensor | None = None) -> Tensor:
        """(B, L) ids → (B, L, D) states with right-aligned positions."""
        batch, length = items.shape
        if length > self.max_len:
            items = items[:, -self.max_len:]
            if behaviors is not None:
                behaviors = behaviors[:, -self.max_len:]
            length = self.max_len
        table = self.item_representations() if table is None else table
        vectors = table.take(items, axis=0)
        positions = np.arange(self.max_len - length, self.max_len)
        vectors = vectors + self.position_embedding(positions)
        if self.use_behavior_embedding:
            if behaviors is None:
                raise ValueError("model expects behavior ids for the fused timeline")
            vectors = vectors + self.behavior_embedding(np.asarray(behaviors))
        return self.input_dropout(self.input_norm(vectors))

    def sequence_inputs(self, batch: Batch) -> tuple[np.ndarray, np.ndarray | None, np.ndarray]:
        """(items, behavior_ids_or_None, mask) for this model's behavior scope."""
        if self.behavior_scope == "target":
            target = self.schema.target
            items = batch.items[target][:, -self.max_len:]
            mask = batch.masks[target][:, -self.max_len:]
            return items, None, mask
        items = batch.merged_items[:, -self.max_len:]
        behaviors = batch.merged_behaviors[:, -self.max_len:]
        mask = batch.merged_mask[:, -self.max_len:]
        return items, behaviors, mask
