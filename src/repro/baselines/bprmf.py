"""BPR-MF (Rendle et al., 2009): non-sequential matrix factorization.

The classic personalized-but-history-blind reference point: one embedding
per user, one per item, trained with the BPR pairwise objective.  Included
to separate "knows the user" from "models the sequence" in comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SequentialRecommender
from repro.data.batching import Batch
from repro.data.sampling import NegativeSampler
from repro.data.schema import BehaviorSchema
from repro.nn.layers import Embedding
from repro.nn.losses import bpr_loss
from repro.nn.tensor import Tensor

__all__ = ["BPRMF"]


class BPRMF(SequentialRecommender):
    def __init__(self, num_items: int, num_users: int, schema: BehaviorSchema,
                 dim: int = 32, rng: np.random.Generator | None = None, seed: int = 0):
        super().__init__()
        rng = rng or np.random.default_rng(seed)
        self.num_items = num_items
        self.num_users = num_users
        self.schema = schema
        self.user_embedding = Embedding(num_users, dim, rng)
        self.item_embedding = Embedding(num_items + 1, dim, rng, padding_idx=0)

    def item_representations(self) -> Tensor:
        return self.item_embedding.weight

    def user_representation(self, batch: Batch) -> Tensor:
        users = np.asarray(batch.users)
        if users.max(initial=0) >= self.num_users:
            raise IndexError(f"user id {users.max()} outside [0, {self.num_users})")
        return self.user_embedding(users)

    def training_loss(self, batch: Batch, sampler: NegativeSampler,
                      num_negatives: int = 1) -> Tensor:
        """Pairwise BPR: positive target vs one sampled negative per instance."""
        users = self.user_representation(batch)                    # (B, D)
        positives = self.item_embedding(batch.targets)             # (B, D)
        negatives_ids = np.array([
            sampler.sample(int(u), 1, exclude={int(t)})[0]
            for u, t in zip(batch.users, batch.targets)
        ])
        negatives = self.item_embedding(negatives_ids)             # (B, D)
        pos_scores = (users * positives).sum(axis=-1)
        neg_scores = (users * negatives).sum(axis=-1)
        return bpr_loss(pos_scores, neg_scores)
