"""GRU4Rec (Hidasi et al., 2015): recurrent single-behavior sequence model.

Reads only the target-behavior sequence (the standard protocol for
traditional baselines in multi-behavior comparisons); user state is the
final GRU hidden state.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.schema import BehaviorSchema
from repro.nn.rnn import GRU
from repro.nn.tensor import Tensor

from .common import MergedSequenceModel

__all__ = ["GRU4Rec"]


class GRU4Rec(MergedSequenceModel):
    def __init__(self, num_items: int, schema: BehaviorSchema, dim: int = 32,
                 max_len: int = 30, rng: np.random.Generator | None = None,
                 dropout: float = 0.1, seed: int = 0):
        rng = rng or np.random.default_rng(seed)
        super().__init__(num_items, schema, dim, max_len, rng, dropout=dropout,
                         use_behavior_embedding=False, behavior_scope="target")
        self.gru = GRU(dim, dim, rng)

    def user_representation(self, batch: Batch) -> Tensor:
        items, _, mask = self.sequence_inputs(batch)
        states = self.embed_sequence(items)
        hidden = self.gru(states, mask)
        return hidden[:, -1, :]
