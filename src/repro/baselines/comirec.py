"""ComiRec-SA (Cen et al., 2020): multi-interest single-behavior model.

SASRec encoding followed by K-prototype attention pooling; scoring takes the
max over interests.  Isolates the *multi-interest* ingredient of MISSL
without multi-behavior or hypergraph information.
"""

from __future__ import annotations

import numpy as np

from repro.core.interest import MultiInterestExtractor
from repro.data.batching import Batch
from repro.data.schema import BehaviorSchema
from repro.nn.tensor import Tensor

from .sasrec import SASRec

__all__ = ["ComiRec"]


class ComiRec(SASRec):
    def __init__(self, num_items: int, schema: BehaviorSchema, dim: int = 32,
                 num_interests: int = 4, max_len: int = 30, num_heads: int = 2,
                 num_layers: int = 1, rng: np.random.Generator | None = None,
                 dropout: float = 0.1, seed: int = 0):
        rng = rng or np.random.default_rng(seed)
        super().__init__(num_items, schema, dim=dim, max_len=max_len,
                         num_heads=num_heads, num_layers=num_layers, rng=rng,
                         dropout=dropout)
        self.interest_extractor = MultiInterestExtractor(dim, num_interests, rng)

    def user_representation(self, batch: Batch) -> Tensor:
        states, mask = self.encode(batch)
        return self.interest_extractor(states, mask)
