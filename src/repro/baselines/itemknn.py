"""Item-kNN baseline: cosine item-item co-occurrence scoring.

Items are represented by their user-incidence vectors over the training
interactions; a candidate is scored by its summed cosine similarity to the
most recent items in the user's fused timeline (recency-decayed).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.base import SequentialRecommender
from repro.data.batching import Batch
from repro.data.dataset import MultiBehaviorDataset
from repro.nn.tensor import Tensor

__all__ = ["ItemKNN"]


class ItemKNN(SequentialRecommender):
    """Neighborhood model with recency decay (no trainable parameters)."""

    def __init__(self, num_items: int, history_window: int = 10, decay: float = 0.8,
                 target_only: bool = True):
        super().__init__()
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.num_items = num_items
        self.history_window = history_window
        self.decay = decay
        self.target_only = target_only
        self._similarity: sp.csr_matrix | None = None
        self._target: str | None = None

    def fit(self, dataset: MultiBehaviorDataset) -> "ItemKNN":
        """Build the cosine item-item matrix from user-item incidence.

        ``target_only=True`` restricts both fitting and the scoring history to
        the target behavior (single-behavior protocol).
        """
        self._target = dataset.schema.target
        rows, cols = [], []
        for user in dataset.users:
            if self.target_only:
                items = set(dataset.sequence(user, self._target))
            else:
                items = dataset.items_of_user(user)
            for item in items:
                rows.append(user)
                cols.append(item)
        incidence = sp.csr_matrix(
            (np.ones(len(rows)), (rows, cols)),
            shape=(max(dataset.users) + 1 if dataset.users else 1, self.num_items + 1),
        )
        norms = np.sqrt(np.asarray(incidence.multiply(incidence).sum(axis=0))).ravel()
        inv = np.where(norms > 0, 1.0 / np.maximum(norms, 1e-12), 0.0)
        normalized = incidence @ sp.diags(inv)
        self._similarity = (normalized.T @ normalized).tocsr()
        return self

    def score_candidates(self, batch: Batch, candidates: np.ndarray) -> Tensor:
        if self._similarity is None:
            raise RuntimeError("ItemKNN.fit(dataset) must be called before scoring")
        scores = np.zeros(candidates.shape, dtype=np.float64)
        if self.target_only:
            history_items = batch.items[self._target]
            history_mask = batch.masks[self._target]
        else:
            history_items = batch.merged_items
            history_mask = batch.merged_mask
        for row in range(candidates.shape[0]):
            history = history_items[row][history_mask[row]][-self.history_window:]
            if history.size == 0:
                continue
            weights = self.decay ** np.arange(history.size - 1, -1, -1)
            sim_block = self._similarity[history].toarray()          # (h, V+1)
            profile = weights @ sim_block                            # (V+1,)
            scores[row] = profile[candidates[row]]
        return Tensor(scores)

    def training_loss(self, *args, **kwargs):  # pragma: no cover - defensive
        raise RuntimeError("ItemKNN has no trainable parameters; call fit() instead")
