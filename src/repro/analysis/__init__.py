"""``repro.analysis`` — model-inspection utilities behind the F6 experiment
and the interest-inspection example."""

from .interests import (cluster_purity, interest_attention_report, interest_separation,
                        prototype_separation)

__all__ = [
    "interest_separation",
    "prototype_separation",
    "cluster_purity",
    "interest_attention_report",
]
