"""Quantitative interest-space diagnostics.

The paper visualizes its representation spaces with t-SNE panels; these
functions compute the scalar counterparts the F6 benchmark asserts on, plus
readable per-user attention reports for qualitative inspection.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.nn.scatter import scatter_add_1d
from repro.nn.tensor import Tensor, no_grad

__all__ = ["interest_separation", "prototype_separation", "cluster_purity",
           "interest_attention_report"]


def _offdiag_abs_cosine(vectors: np.ndarray) -> float:
    """Mean |cos| between distinct rows of the trailing (K, D) axes."""
    if vectors.ndim == 2:
        vectors = vectors[None]
    k = vectors.shape[1]
    if k < 2:
        return 0.0
    normed = vectors / np.maximum(np.linalg.norm(vectors, axis=-1, keepdims=True), 1e-12)
    gram = np.einsum("bkd,bjd->bkj", normed, normed)
    mask = ~np.eye(k, dtype=bool)
    return float(np.abs(gram[:, mask]).mean())


def interest_separation(user_interests: np.ndarray | Tensor) -> float:
    """Mean |cos| between a user's interest slots, averaged over users.

    Lower = better-separated interests (0 = orthogonal, 1 = collapsed).
    """
    data = user_interests.numpy() if isinstance(user_interests, Tensor) else user_interests
    return _offdiag_abs_cosine(np.asarray(data))


def prototype_separation(model) -> float:
    """Mean |cos| between a model's interest prototypes.

    Works for any model whose extractor exposes a ``prototypes`` parameter
    (the attention-mode extractor); raises ``AttributeError`` otherwise.
    """
    prototypes = model.interest_extractor.prototypes
    return _offdiag_abs_cosine(prototypes.numpy())


def cluster_purity(attention: np.ndarray, items: np.ndarray, valid: np.ndarray,
                   clusters: np.ndarray) -> float:
    """How cleanly interest slots specialize to planted item clusters.

    For each (user, slot), attention mass is accumulated per ground-truth
    cluster; purity is the mass of the dominant cluster, averaged over
    (user, slot) pairs with any valid attention.  1.0 = every slot attends
    to a single cluster; 1/num_clusters ≈ uniform.

    Args:
        attention: ``(B, L, K)`` attention weights over sequence positions.
        items: ``(B, L)`` item ids (1-based; 0 = padding).
        valid: ``(B, L)`` validity mask.
        clusters: ``(num_items,)`` planted cluster id per item (0-indexed by
            ``item_id - 1``).
    """
    batch, length, k = attention.shape
    num_clusters = int(clusters.max()) + 1
    purities = []
    for b in range(batch):
        idx = np.flatnonzero(valid[b])
        if idx.size == 0:
            continue
        item_clusters = clusters[items[b, idx] - 1]
        for slot in range(k):
            weights = attention[b, idx, slot]
            total = weights.sum()
            if total <= 0:
                continue
            mass = scatter_add_1d(item_clusters, weights.astype(np.float64),
                                  num_clusters)
            purities.append(mass.max() / total)
    return float(np.mean(purities)) if purities else 0.0


def interest_attention_report(model, batch: Batch, top_n: int = 3) -> list[dict]:
    """Readable per-user interest summaries from a trained MISSL model.

    Returns one dict per (user, slot): the top attended items and weights on
    the fused timeline.
    """
    with no_grad():
        table = model.item_representations()
        merged_items, merged_behaviors, merged_mask = model._clip(
            batch.merged_items, batch.merged_behaviors, batch.merged_mask)
        behaviors = np.where(merged_mask, merged_behaviors, 0)
        states = model.seq_embedding(table, merged_items, behaviors)
        encoded = model.fused_encoder(states, merged_mask)
        attention = model.interest_extractor.attention_weights(encoded, merged_mask)

    report = []
    for row, user in enumerate(batch.users):
        valid = merged_mask[row]
        for slot in range(attention.shape[-1]):
            weights = attention[row, :, slot] * valid
            order = np.argsort(-weights)[:top_n]
            report.append({
                "user": int(user),
                "slot": slot,
                "top_items": [int(merged_items[row, t]) for t in order if valid[t]],
                "top_weights": [float(weights[t]) for t in order if valid[t]],
            })
    return report
