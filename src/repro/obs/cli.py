"""Renderer behind ``python -m repro obs``: trace tree + metric summary.

Reads one run's JSON-lines event log — plus, when present, the worker
spool directory next to it (``<events>.d/``, see
:mod:`repro.obs.fleet`) — and renders:

* the **span tree** — spans nested under their parents with wall-clock
  durations; spans from worker processes stitch under their cross-process
  parents (span ids are fleet-unique) and carry a ``@role`` tag; runs of
  sibling spans sharing a name (e.g. hundreds of ``train.step`` spans)
  collapse into one ``×N`` aggregate line;
* the **epoch table** — one row per ``epoch`` event (loss, split timings,
  monitored metric);
* the **metric summary** — counters, gauges and histogram percentiles from
  the merged fleet registry (per-process snapshots: counters summed,
  histograms merged bucket-wise);
* the **process census** — one row per contributing process when workers
  relayed events;
* a one-line census of everything else (log records by level).

Malformed lines (torn writes from a live fleet) are skipped and counted,
never fatal.
"""

from __future__ import annotations

from pathlib import Path

from .fleet import collect_fleet

__all__ = ["render_events", "render_span_tree"]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _fmt_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{key}={value}" for key, value in attrs.items())
    return f" [{inner}]"


def _start_key(event: dict) -> float:
    # Wall-clock start when available (comparable across processes);
    # fall back to the in-process perf_counter start.
    ts = event.get("ts")
    if ts is not None:
        return ts - (event.get("seconds") or 0.0)
    return event.get("start", 0.0)


def _span_line(event: dict) -> str:
    attrs = dict(event.get("attrs") or {})
    if event.get("request_id") is not None:
        attrs = {"request_id": event["request_id"], **attrs}
    role = (event.get("proc") or {}).get("role")
    tag = f" @{role}" if role else ""
    return (f"{event['name']} ({_fmt_seconds(event['seconds'])})"
            f"{tag}{_fmt_attrs(attrs)}")


def render_span_tree(spans: list[dict], collapse_after: int = 5) -> str:
    """Indented tree of span events (grouping large same-name sibling runs).

    ``spans`` are raw ``span`` events (any order, any number of source
    processes); parentage comes from ``parent_id``, which may point at a
    span recorded by a different process.  Sibling groups larger than
    ``collapse_after`` render as one aggregate line with count, total and
    mean duration.
    """
    children: dict[int | None, list[dict]] = {}
    known = {event["span_id"] for event in spans}
    for event in spans:
        parent = event.get("parent_id")
        if parent not in known:
            parent = None  # orphaned spans surface at the root
        children.setdefault(parent, []).append(event)
    for siblings in children.values():
        siblings.sort(key=_start_key)

    lines: list[str] = []

    def render(parent: int | None, depth: int) -> None:
        indent = "  " * depth
        siblings = children.get(parent, [])
        by_name: dict[str, list[dict]] = {}
        for event in siblings:
            by_name.setdefault(event["name"], []).append(event)
        for name, group in by_name.items():
            if len(group) > collapse_after:
                total = sum(event["seconds"] for event in group)
                lines.append(
                    f"{indent}{name} ×{len(group)} "
                    f"(total {_fmt_seconds(total)}, "
                    f"mean {_fmt_seconds(total / len(group))})")
                # Collapsed spans usually have homogeneous children
                # (steps inside an epoch); render the first one's subtree
                # as the representative if it has any.
                for event in group:
                    if children.get(event["span_id"]):
                        render(event["span_id"], depth + 1)
                        break
            else:
                for event in group:
                    lines.append(f"{indent}{_span_line(event)}")
                    render(event["span_id"], depth + 1)

    render(None, 0)
    return "\n".join(lines)


def _render_epochs(epochs: list[dict]) -> str:
    from repro.utils import format_table

    headers = ["epoch", "train_loss", "train s", "eval s", "monitor"]
    rows = []
    for event in epochs:
        rows.append([
            event.get("epoch"),
            f"{event.get('train_loss', float('nan')):.4f}",
            f"{event.get('train_seconds', 0.0):.2f}",
            f"{event.get('eval_seconds', 0.0):.2f}",
            f"{event.get('monitored', float('nan')):.4f}",
        ])
    return format_table(headers, rows)


def _render_metrics(snapshot: dict) -> str:
    from repro.utils import format_table

    sections: list[str] = []
    scalars = [["counter", name, value]
               for name, value in snapshot.get("counters", {}).items()]
    scalars += [["gauge", name, f"{value:.6g}"]
                for name, value in snapshot.get("gauges", {}).items()]
    if scalars:
        sections.append(format_table(["kind", "name", "value"], scalars))
    histograms = snapshot.get("histograms", {})
    if histograms:
        def ms(summary: dict, key: str) -> str:
            # Histogram snapshots carry seconds; LatencyHistogram pre-scales
            # to `<key>_ms`.  Render both in milliseconds.
            if f"{key}_ms" in summary:
                return f"{summary[f'{key}_ms']:.3f}"
            return f"{summary.get(key, 0.0) * 1e3:.3f}"

        rows = [[name, summary.get("count", 0), ms(summary, "mean"),
                 ms(summary, "p50"), ms(summary, "p90"), ms(summary, "p99"),
                 ms(summary, "max")]
                for name, summary in histograms.items()]
        sections.append(format_table(
            ["histogram", "count", "mean ms", "p50 ms", "p90 ms", "p99 ms",
             "max ms"], rows))
    return "\n".join(sections)


def _render_processes(processes: list[dict]) -> str:
    from repro.utils import format_table

    rows = []
    for proc in processes:
        worker = proc.get("worker")
        generation = proc.get("generation")
        rows.append([
            proc.get("role", "?"),
            "-" if worker is None else worker,
            "-" if proc.get("pid") is None else proc["pid"],
            "-" if generation is None else generation,
            proc.get("events", 0),
            proc.get("spans", 0),
            proc.get("malformed_lines", 0),
        ])
    return format_table(["process", "worker", "pid", "gen", "events",
                         "spans", "malformed"], rows)


def render_events(path: str | Path, collapse_after: int = 5) -> str:
    """Full human-readable report for one run's event log + worker spools."""
    view = collect_fleet(path)
    if not view.events and not view.malformed_lines:
        return f"{path}: no events"
    by_type: dict[str, list[dict]] = {}
    for event in view.events:
        by_type.setdefault(event.get("type", "?"), []).append(event)

    sections: list[str] = []
    spans = view.spans
    if spans:
        known = {event["span_id"] for event in spans}
        total = sum(event["seconds"] for event in spans
                    if event.get("parent_id") not in known)
        sections.append(f"trace ({len(spans)} spans, "
                        f"root time {_fmt_seconds(total)}):")
        sections.append(render_span_tree(spans, collapse_after=collapse_after))
    epochs = by_type.get("epoch", [])
    if epochs:
        sections.append("\nepochs:")
        sections.append(_render_epochs(epochs))
    rendered = _render_metrics(view.registry.snapshot())
    if rendered:
        sections.append("\nmetrics:")
        sections.append(rendered)
    if len(view.processes) > 1:
        sections.append("\nprocesses:")
        sections.append(_render_processes(view.processes))
    logs = by_type.get("log", [])
    if logs:
        levels: dict[str, int] = {}
        for event in logs:
            levels[event.get("level", "?")] = levels.get(event.get("level", "?"), 0) + 1
        census = ", ".join(f"{count} {level}"
                           for level, count in sorted(levels.items()))
        sections.append(f"\nlogs: {census}")
    if view.malformed_lines:
        sections.append(f"\nmalformed_lines: {view.malformed_lines} "
                        f"(skipped)")
    return "\n".join(sections)
