"""Stdlib ``logging`` routed through the telemetry event layer.

:func:`get_logger` hands out ordinary ``logging.Logger`` objects under the
``repro`` namespace, configured once with two handlers:

* a stderr handler (human-readable one-liners) — tables and command results
  stay on stdout, diagnostics never pollute machine-parsed output;
* an event handler that forwards every record as a ``log`` event to the
  installed :class:`~repro.obs.events.Telemetry` hub (an ``is None`` check
  when telemetry is off).

The library never calls ``logging.basicConfig`` and never touches the root
logger — applications embedding ``repro`` keep full control (call
:func:`setup_logging` with ``propagate=True`` to defer to their own config).
"""

from __future__ import annotations

import logging
import sys

from .events import get_telemetry

__all__ = ["get_logger", "setup_logging"]


class _TelemetryLogHandler(logging.Handler):
    """Forwards log records to the telemetry sink as ``log`` events."""

    def emit(self, record: logging.LogRecord) -> None:
        telemetry = get_telemetry()
        if telemetry is None:
            return
        try:
            telemetry.emit("log", level=record.levelname, logger=record.name,
                           message=record.getMessage())
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


class _LiveStderrHandler(logging.Handler):
    """Stderr handler resolving ``sys.stderr`` at emit time.

    A plain ``StreamHandler`` captures the stream object at construction,
    which defeats tools that swap ``sys.stderr`` later (pytest's capsys,
    CLI redirection).  Looking the stream up per record keeps the handler
    honest under capture.
    """

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


_FORMAT = "%(levelname).1s %(name)s: %(message)s"
_configured = False


def setup_logging(level: int | str = logging.INFO,
                  propagate: bool = False) -> logging.Logger:
    """Configure the ``repro`` logger tree (idempotent).

    Attaches the stderr handler and the telemetry event handler to the
    ``repro`` logger and sets its level.  With ``propagate=True`` records
    additionally flow to the root logger for host applications that manage
    their own handlers.  Returns the ``repro`` logger.
    """
    global _configured
    logger = logging.getLogger("repro")
    if not _configured:
        stderr_handler = _LiveStderrHandler()
        stderr_handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(stderr_handler)
        logger.addHandler(_TelemetryLogHandler())
        _configured = True
    logger.setLevel(level)
    logger.propagate = propagate
    return logger


def get_logger(name: str = "repro") -> logging.Logger:
    """A logger under the ``repro`` namespace, auto-configuring on first use.

    ``name`` is namespaced under ``repro`` unless it already starts with it,
    so ``get_logger(__name__)`` works from inside and outside the package.
    """
    if not _configured:
        setup_logging()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
