"""``repro.obs`` — the unified telemetry backbone.

One shared event model covers every stage of the pipeline (data prep,
training, evaluation, serving):

- :mod:`repro.obs.events` — the telemetry hub, JSON-lines event sinks and
  the ``telemetry_session`` entry point.
- :mod:`repro.obs.trace` — nested wall-clock :func:`span` tracing with
  thread-local context and attribute tagging.
- :mod:`repro.obs.metrics` — process-wide counters / gauges / log-bucketed
  histograms in a named :class:`MetricsRegistry` (the substrate under
  :class:`repro.serve.metrics.ServingMetrics`).
- :mod:`repro.obs.health` — training-health monitors (per-component loss
  tracking, gradient-norm and update-ratio monitors, NaN/Inf watchdog)
  attached to the trainer via :class:`TrainerCallback`.
- :mod:`repro.obs.lockwatch` — runtime lock-order watchdog: named
  :class:`WatchedLock` wrappers feed a dynamic acquisition graph and a
  cycle-closing acquire raises :class:`LockOrderViolation` instead of
  deadlocking.
- :mod:`repro.obs.logs` — stdlib ``logging`` routed into the event layer.
- :mod:`repro.obs.exporters` — Prometheus text exposition and per-run
  manifests written next to checkpoints.
- :mod:`repro.obs.cli` — the ``python -m repro obs`` trace/metrics renderer.

All instrumentation is zero-cost when disabled: call sites pay one
``is None`` check, matching the :mod:`repro.perf` discipline.
"""

from .cli import render_events, render_span_tree
from .events import (EventSink, Telemetry, child_telemetry_config,
                     disable_telemetry, enable_telemetry,
                     enable_worker_telemetry, get_telemetry, read_events,
                     read_events_tolerant, spool_dir_for, telemetry_session)
from .exporters import git_revision, prometheus_text, write_run_manifest
from .fleet import (FleetView, collect_fleet, merge_registry_snapshot,
                    merge_snapshots)
from .health import (GradientMonitor, LossComponentTracker, NaNWatchdog,
                     NonFiniteGradientError, TrainerCallback)
from .lockwatch import (LockOrderViolation, LockWatchdog, WatchedLock,
                        disable_lock_watch, enable_lock_watch,
                        get_lock_watch, watched_lock, watched_rlock)
from .logs import get_logger, setup_logging
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .names import (METRIC_NAMES, SPAN_NAMES, pipeline_worker_batches,
                    serve_latency_stage, train_loss_component)
from .trace import (Span, TraceContext, current_context, current_span,
                    remote_context, reset_trace_state, span)

__all__ = [
    "EventSink",
    "Telemetry",
    "enable_telemetry",
    "disable_telemetry",
    "get_telemetry",
    "telemetry_session",
    "read_events",
    "read_events_tolerant",
    "child_telemetry_config",
    "enable_worker_telemetry",
    "spool_dir_for",
    "TraceContext",
    "current_context",
    "remote_context",
    "reset_trace_state",
    "FleetView",
    "collect_fleet",
    "merge_registry_snapshot",
    "merge_snapshots",
    "SPAN_NAMES",
    "METRIC_NAMES",
    "serve_latency_stage",
    "train_loss_component",
    "pipeline_worker_batches",
    "Span",
    "span",
    "current_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "TrainerCallback",
    "LossComponentTracker",
    "GradientMonitor",
    "NaNWatchdog",
    "NonFiniteGradientError",
    "LockOrderViolation",
    "LockWatchdog",
    "WatchedLock",
    "watched_lock",
    "watched_rlock",
    "enable_lock_watch",
    "disable_lock_watch",
    "get_lock_watch",
    "get_logger",
    "setup_logging",
    "prometheus_text",
    "write_run_manifest",
    "git_revision",
    "render_events",
    "render_span_tree",
]
