"""Runtime lock-order watchdog: the dynamic half of ``LOCK-ORDER``.

The static rule (:mod:`repro.lint.flow.rules`) proves the *possible*
acquisition orders it can see; this module watches the orders that actually
happen.  Every :class:`WatchedLock` acquisition records a ``held -> wanted``
edge in a process-wide acquisition graph, and an acquire that would close a
cycle in that graph raises :class:`LockOrderViolation` *before* blocking on
the lock — turning a latent deadlock (two threads stuck forever, no
traceback) into an immediate, attributable exception naming the cycle.

Zero-cost-when-disabled, following the :mod:`repro.perf` /
:mod:`repro.obs` discipline: call sites pay one ``is None`` check on
:func:`get_lock_watch`.  :func:`watched_lock` / :func:`watched_rlock` are
drop-in factories for ``threading.Lock()`` / ``threading.RLock()`` — the
wrapper supports ``with``, ``acquire``/``release`` and ``locked`` and adds
~one dict operation per acquisition when watching is enabled.

Metrics (``lockwatch.acquisitions`` / ``lockwatch.edges`` /
``lockwatch.cycles``) accumulate as plain ints inside the watchdog and are
flushed to the metrics registry by :meth:`LockWatchdog.export` (called on
:func:`disable_lock_watch`) — never from inside ``note_acquire``, which may
itself run under arbitrary locks and must not touch the registry's own.
Reentrant acquisition of the same (R)lock is not an edge; the watchdog
tracks held locks per thread, so independent threads build independent
stacks over the one shared graph, exactly the situation where inverted
orders deadlock.
"""

from __future__ import annotations

import threading

__all__ = [
    "LockOrderViolation",
    "LockWatchdog",
    "WatchedLock",
    "watched_lock",
    "watched_rlock",
    "enable_lock_watch",
    "disable_lock_watch",
    "get_lock_watch",
]


class LockOrderViolation(RuntimeError):
    """Acquiring ``wanted`` while holding ``held`` closes an order cycle."""

    def __init__(self, held: str, wanted: str, cycle: tuple[str, ...]):
        self.held = held
        self.wanted = wanted
        self.cycle = cycle
        super().__init__(
            "lock-order cycle: acquiring %r while holding %r inverts the "
            "established order %s" % (wanted, held, " -> ".join(cycle)))


class LockWatchdog:
    """Process-wide dynamic lock-acquisition graph with cycle detection.

    Edges ``A -> B`` mean "some thread acquired B while holding A".  The
    graph is shared across threads (that is the point: deadlocks need two
    threads with inverted orders), the held-stack is per thread.  The
    internal guard is a *raw* ``threading.Lock`` — watching the watchdog's
    own lock would recurse.
    """

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._edges: dict[str, set[str]] = {}
        self._held = threading.local()
        self.acquisitions = 0
        self.edge_count = 0
        self.cycle_count = 0

    # -- per-thread held stack -------------------------------------------
    def _stack(self) -> list[tuple[str, int]]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def held_names(self) -> tuple[str, ...]:
        """Names of locks the calling thread currently holds."""
        return tuple(name for name, _ in self._stack())

    # -- graph maintenance ------------------------------------------------
    def _path_exists(self, src: str, dst: str) -> bool:
        """True when ``src`` reaches ``dst`` in the edge graph (guard held)."""
        seen = {src}
        frontier = [src]
        while frontier:
            node = frontier.pop()
            if node == dst:
                return True
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def _cycle_path(self, src: str, dst: str) -> tuple[str, ...]:
        """A witness path ``src -> ... -> dst`` (guard held; path exists)."""
        parents: dict[str, str] = {}
        frontier = [src]
        seen = {src}
        while frontier:
            node = frontier.pop()
            if node == dst:
                break
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    parents[nxt] = node
                    frontier.append(nxt)
        path = [dst]
        while path[-1] != src:
            path.append(parents[path[-1]])
        path.reverse()
        return tuple(path)

    # -- acquisition protocol ---------------------------------------------
    def note_acquire(self, name: str, lock_id: int) -> bool:
        """Record intent to acquire; raise before a cycle-closing acquire.

        Returns False for a reentrant re-acquire of a lock this thread
        already holds (no edge, no stack push expected), True otherwise.
        The caller pushes via :meth:`note_acquired` only after the real
        ``acquire`` succeeds, so a timed-out or failed acquire leaves the
        stack untouched.
        """
        stack = self._stack()
        if any(lid == lock_id for _, lid in stack):
            return False
        self.acquisitions += 1
        if not stack:
            return True
        with self._guard:
            for held, _ in stack:
                if held == name:
                    continue
                if name in self._edges.get(held, ()):
                    continue
                if self._path_exists(name, held):
                    self.cycle_count += 1
                    cycle = self._cycle_path(name, held) + (name,)
                    raise LockOrderViolation(held, name, cycle)
                self._edges.setdefault(held, set()).add(name)
                self.edge_count += 1
        return True

    def note_acquired(self, name: str, lock_id: int) -> None:
        """Push onto the calling thread's held stack (acquire succeeded)."""
        self._stack().append((name, lock_id))

    def note_release(self, lock_id: int) -> None:
        """Pop the most recent entry for this lock from the held stack."""
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][1] == lock_id:
                del stack[i]
                return

    # -- introspection / export -------------------------------------------
    def edges(self) -> dict[str, tuple[str, ...]]:
        """Snapshot of the acquisition graph (name -> successors, sorted)."""
        with self._guard:
            return {src: tuple(sorted(dsts))
                    for src, dsts in sorted(self._edges.items())}

    def export(self, registry=None) -> None:
        """Flush accumulated counts into a metrics registry.

        Deferred on purpose: the registry has its own lock, and calling it
        from ``note_acquire`` would nest registry-lock inside arbitrary
        application locks — the very shape this module polices.
        """
        if registry is None:
            from .metrics import get_registry
            registry = get_registry()
        registry.counter("lockwatch.acquisitions").inc(self.acquisitions)
        registry.counter("lockwatch.edges").inc(self.edge_count)
        registry.counter("lockwatch.cycles").inc(self.cycle_count)
        self.acquisitions = 0
        self.edge_count = 0
        self.cycle_count = 0


class WatchedLock:
    """A named (R)Lock that reports acquisitions to the active watchdog.

    When no watchdog is enabled the overhead is one global read and one
    ``is None`` test per operation.  ``name`` should be stable and
    process-unique per *role* (e.g. ``"serve.history.store"``) so edges
    from different instances of the same class merge into one node — two
    instance locks of one class are interchangeable for ordering purposes.
    """

    __slots__ = ("name", "_inner")

    def __init__(self, name: str, inner=None):
        self.name = name
        self._inner = threading.Lock() if inner is None else inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        watch = get_lock_watch()
        tracked = watch.note_acquire(self.name, id(self)) \
            if watch is not None else False
        ok = self._inner.acquire(blocking, timeout)
        if ok and tracked:
            watch.note_acquired(self.name, id(self))
        return ok

    def release(self) -> None:
        watch = get_lock_watch()
        if watch is not None:
            watch.note_release(id(self))
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "WatchedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"WatchedLock({self.name!r})"


def watched_lock(name: str) -> WatchedLock:
    """Drop-in ``threading.Lock()`` with a stable watchdog name."""
    return WatchedLock(name)


def watched_rlock(name: str) -> WatchedLock:
    """Drop-in ``threading.RLock()`` with a stable watchdog name."""
    return WatchedLock(name, inner=threading.RLock())


_WATCH: LockWatchdog | None = None


def get_lock_watch() -> LockWatchdog | None:
    """The active watchdog, or None (the common, zero-cost case)."""
    return _WATCH


def enable_lock_watch() -> LockWatchdog:
    """Install a process-wide watchdog (idempotent) and return it."""
    global _WATCH
    if _WATCH is None:
        _WATCH = LockWatchdog()
    return _WATCH


def disable_lock_watch() -> None:
    """Tear down the watchdog, flushing its counters to the registry."""
    global _WATCH
    watch = _WATCH
    _WATCH = None
    if watch is not None:
        watch.export()
