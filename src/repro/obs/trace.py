"""Nested wall-clock tracing spans with thread-local context.

A *span* measures one named stage of the pipeline — an epoch, a validation
pass, a hypergraph build, one serving micro-batch — and records its parent
span so ``python -m repro obs`` can render the run as a tree.  Spans nest
per thread: the serving worker thread and the caller thread each maintain
their own stack, so parentage never crosses threads.

Usage::

    from repro.obs import span

    with span("train.epoch", epoch=3) as s:
        ...
        s.set(loss=0.42)          # attach attributes mid-flight

When telemetry is disabled (:func:`repro.obs.get_telemetry` returns None)
:func:`span` hands back a shared no-op object, so instrumented code pays one
global check and no allocation — the same zero-cost discipline as
:mod:`repro.perf`.  Each finished span emits a single ``span`` event carrying
its name, id, parent id, trace id, start time, duration and attributes.

Cross-process propagation
-------------------------
A :class:`TraceContext` is the wire form of "where am I in the trace":
``(trace_id, span_id, request_id)``.  A parent process captures one with
:func:`current_context` and ships it alongside the task or request; the
child process wraps its work in :func:`remote_context`, under which the
next root span parents on the remote ``span_id`` and adopts the remote
``trace_id`` — so span ids recorded in different per-process event spools
stitch into one tree.  Span ids are made globally unique by seeding each
process's counter with its pid (see :class:`repro.obs.events.Telemetry`).
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass

from .events import get_telemetry

__all__ = ["Span", "span", "current_span", "TraceContext", "current_context",
           "remote_context", "reset_trace_state"]

_LOCAL = threading.local()


def _stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


@dataclass(frozen=True)
class TraceContext:
    """Compact cross-process trace position: ``(trace_id, span_id, request_id)``.

    ``span_id`` is the remote parent a child's root span should hang from;
    ``trace_id`` groups every span of one logical operation (one request,
    one training step) across the fleet; ``request_id`` is the serving
    tier's end-to-end correlation token (None outside the request path).
    """

    trace_id: int
    span_id: int
    request_id: str | None = None

    def pack(self) -> tuple:
        """Wire form: a plain tuple, cheap to pickle onto task queues."""
        return (self.trace_id, self.span_id, self.request_id)

    @classmethod
    def unpack(cls, packed) -> "TraceContext":
        """Rebuild from :meth:`pack` output (tolerates list from JSON)."""
        trace_id, span_id, request_id = packed
        return cls(int(trace_id), int(span_id), request_id)


class Span:
    """One live tracing span; use as a context manager.

    The span emits its event on exit — ``{"type": "span", "name", "span_id",
    "parent_id", "trace_id", "start", "seconds", "attrs", "thread", "ts"}``
    — where ``start`` is a ``perf_counter`` timestamp (orders spans within
    the process) and ``ts`` the wall-clock time at exit.  A ``request_id``
    field is added when the span is on a correlated request path.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "trace_id",
                 "request_id", "seconds", "_telemetry", "_start")

    def __init__(self, telemetry, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self._telemetry = telemetry
        self.span_id = telemetry.next_span_id()
        self.parent_id: int | None = None
        self.trace_id: int = self.span_id
        self.request_id: str | None = None
        self.seconds: float | None = None
        self._start: float | None = None

    def set(self, **attrs) -> "Span":
        """Attach or overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.trace_id = parent.trace_id
            self.request_id = parent.request_id
        else:
            remote = getattr(_LOCAL, "remote", None)
            if remote is not None:
                self.parent_id = remote.span_id
                self.trace_id = remote.trace_id
                self.request_id = remote.request_id
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        self.seconds = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        fields = dict(name=self.name, span_id=self.span_id,
                      parent_id=self.parent_id, trace_id=self.trace_id,
                      start=self._start, seconds=self.seconds,
                      attrs=self.attrs,
                      thread=threading.current_thread().name)
        if self.request_id is not None:
            fields["request_id"] = self.request_id
        self._telemetry.emit("span", **fields)


class _NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def set(self, **_attrs) -> "_NoopSpan":
        """No-op attribute setter (keeps call sites unconditional)."""
        return self

    def __setattr__(self, _name: str, _value) -> None:
        """Silently drop assignments (e.g. ``span.request_id = ...``) so a
        telemetry disable racing a call site never turns into an error."""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs):
    """Open a named span under the current thread's innermost span.

    Returns a live :class:`Span` when telemetry is enabled, else a shared
    no-op object — always usable as a context manager.
    """
    telemetry = get_telemetry()
    if telemetry is None:
        return _NOOP_SPAN
    return Span(telemetry, name, attrs)


def current_span() -> Span | None:
    """The innermost open span on this thread, or None."""
    stack = getattr(_LOCAL, "stack", None)
    return stack[-1] if stack else None


def current_context(request_id: str | None = None) -> TraceContext | None:
    """The shippable :class:`TraceContext` at this point, or None.

    Derived from the innermost open span (falling back to an active
    :func:`remote_context`, so a relay hop can forward its inherited
    position).  Returns None when telemetry is disabled or no span is open —
    callers ship the context only when it exists, preserving the
    zero-cost-when-disabled discipline.
    """
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        top = stack[-1]
        return TraceContext(top.trace_id, top.span_id,
                            request_id if request_id is not None
                            else top.request_id)
    remote = getattr(_LOCAL, "remote", None)
    if remote is not None and request_id is not None:
        return TraceContext(remote.trace_id, remote.span_id, request_id)
    return remote


@contextlib.contextmanager
def remote_context(context: TraceContext | tuple | None):
    """Adopt a remote parent for root spans opened inside the block.

    ``context`` may be a :class:`TraceContext`, its :meth:`~TraceContext.pack`
    tuple, or None (no-op).  While active, a span opened with an empty
    thread-local stack parents on ``context.span_id`` and inherits
    ``trace_id`` / ``request_id``, which is how worker tasks and replica
    requests attach to the tree of the process that shipped them.
    """
    if context is None:
        yield
        return
    if not isinstance(context, TraceContext):
        context = TraceContext.unpack(context)
    previous = getattr(_LOCAL, "remote", None)
    _LOCAL.remote = context
    try:
        yield
    finally:
        _LOCAL.remote = previous


def reset_trace_state() -> None:
    """Drop this thread's span stack and remote context.

    Called after ``fork``: the child inherits the forking thread's open
    spans, which belong to the parent process and must not adopt children
    recorded in the child's spool.
    """
    _LOCAL.stack = []
    _LOCAL.remote = None
