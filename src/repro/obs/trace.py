"""Nested wall-clock tracing spans with thread-local context.

A *span* measures one named stage of the pipeline — an epoch, a validation
pass, a hypergraph build, one serving micro-batch — and records its parent
span so ``python -m repro obs`` can render the run as a tree.  Spans nest
per thread: the serving worker thread and the caller thread each maintain
their own stack, so parentage never crosses threads.

Usage::

    from repro.obs import span

    with span("train.epoch", epoch=3) as s:
        ...
        s.set(loss=0.42)          # attach attributes mid-flight

When telemetry is disabled (:func:`repro.obs.get_telemetry` returns None)
:func:`span` hands back a shared no-op object, so instrumented code pays one
global check and no allocation — the same zero-cost discipline as
:mod:`repro.perf`.  Each finished span emits a single ``span`` event carrying
its name, id, parent id, start time, duration and attributes.
"""

from __future__ import annotations

import threading
import time

from .events import get_telemetry

__all__ = ["Span", "span", "current_span"]

_LOCAL = threading.local()


def _stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


class Span:
    """One live tracing span; use as a context manager.

    The span emits its event on exit — ``{"type": "span", "name", "span_id",
    "parent_id", "start", "seconds", "attrs", "thread", "ts"}`` — where
    ``start`` is a ``perf_counter`` timestamp (orders spans within the
    process) and ``ts`` the wall-clock time at exit.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "seconds",
                 "_telemetry", "_start")

    def __init__(self, telemetry, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self._telemetry = telemetry
        self.span_id = telemetry.next_span_id()
        self.parent_id: int | None = None
        self.seconds: float | None = None
        self._start: float | None = None

    def set(self, **attrs) -> "Span":
        """Attach or overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        self.seconds = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self._telemetry.emit(
            "span", name=self.name, span_id=self.span_id,
            parent_id=self.parent_id, start=self._start,
            seconds=self.seconds, attrs=self.attrs,
            thread=threading.current_thread().name,
        )


class _NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def set(self, **_attrs) -> "_NoopSpan":
        """No-op attribute setter (keeps call sites unconditional)."""
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs):
    """Open a named span under the current thread's innermost span.

    Returns a live :class:`Span` when telemetry is enabled, else a shared
    no-op object — always usable as a context manager.
    """
    telemetry = get_telemetry()
    if telemetry is None:
        return _NOOP_SPAN
    return Span(telemetry, name, attrs)


def current_span() -> Span | None:
    """The innermost open span on this thread, or None."""
    stack = getattr(_LOCAL, "stack", None)
    return stack[-1] if stack else None
