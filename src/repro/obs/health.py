"""Training-health monitors: loss components, gradient norms, NaN watchdog.

Multi-loss SSL training (BPR/sampled-softmax + contrastive + disentangle
terms) fails in characteristic ways — one loss term collapsing to zero, a
layer's gradients exploding while the rest stay tame, a single NaN silently
poisoning Adam's moments.  The monitors here watch for exactly those modes,
wired into :class:`~repro.train.trainer.Trainer` through a lightweight
callback protocol::

    from repro.obs import GradientMonitor, LossComponentTracker, NaNWatchdog

    trainer = Trainer(model, split, config,
                      callbacks=[LossComponentTracker(), GradientMonitor(),
                                 NaNWatchdog()])

Every monitor keeps its own in-memory history, mirrors headline values into
a :class:`~repro.obs.metrics.MetricsRegistry`, and emits telemetry events
when a hub is installed — all three stay usable standalone.
"""

from __future__ import annotations

import numpy as np

from .events import get_telemetry
from .metrics import MetricsRegistry, get_registry
from .names import train_loss_component

__all__ = [
    "TrainerCallback",
    "LossComponentTracker",
    "GradientMonitor",
    "NaNWatchdog",
    "NonFiniteGradientError",
]


class TrainerCallback:
    """No-op base for training-loop observers.

    The trainer invokes the hooks in loop order; every hook receives the
    trainer itself so callbacks can reach the model, config and optimizer
    state.  Subclasses override what they need.
    """

    def on_fit_start(self, trainer) -> None:
        """Called once before the first epoch."""

    def on_epoch_start(self, trainer, epoch: int) -> None:
        """Called at the top of every epoch, before any batch."""

    def on_batch_start(self, trainer, epoch: int, step: int) -> None:
        """Called before a batch's forward pass (gradients still cleared)."""

    def on_batch_end(self, trainer, epoch: int, step: int, loss: float,
                     breakdown: dict) -> None:
        """Called after ``optimizer.step()`` with gradients still in place.

        ``breakdown`` maps loss-component names to post-weighting values —
        at minimum ``{"total": loss}``, and the full per-term split for
        models whose ``training_loss`` supports ``return_breakdown``.
        """

    def on_epoch_end(self, trainer, record) -> None:
        """Called with the finished :class:`~repro.train.history.EpochRecord`."""

    def on_fit_end(self, trainer, history) -> None:
        """Called once after early stopping / the final epoch."""


def _shard_health(trainer) -> list[dict]:
    """The last step's per-shard health under ``--data-parallel`` (else [])."""
    engine = getattr(trainer, "ddp_engine", None)
    if engine is None:
        return []
    return list(getattr(engine, "last_shard_health", None) or [])


def _shard_tags(trainer) -> dict:
    """Event fields attributing a step to its shards/workers (data-parallel).

    Empty outside data-parallel training, so single-process events keep
    their historic shape.
    """
    health = _shard_health(trainer)
    if not health:
        return {}
    return {"shards": [{"shard": entry["shard"], "worker": entry["worker"],
                        "finite_grad": entry["finite_grad"]}
                       for entry in health]}


def _format_blame(bad: list[dict]) -> str:
    if not bad:
        return ""
    names = ", ".join(
        f"shard {entry['shard']}"
        + (f" (worker {entry['worker']})"
           if entry.get("worker") is not None else "")
        for entry in bad)
    return f"; produced by {names}"


class NonFiniteGradientError(FloatingPointError):
    """A NaN/Inf reached a gradient (or the loss) during training.

    Attributes:
        parameter: offending parameter name, or None when the loss itself
            was non-finite.
        epoch / step: position in the training loop.
        shard / worker: the data-parallel shard (and worker process) whose
            gradient or loss was non-finite, when attributable; None in
            single-process training.
    """

    def __init__(self, message: str, parameter: str | None = None,
                 epoch: int = -1, step: int = -1,
                 shard: int | None = None, worker: int | None = None):
        super().__init__(message)
        self.parameter = parameter
        self.epoch = epoch
        self.step = step
        self.shard = shard
        self.worker = worker


class NaNWatchdog(TrainerCallback):
    """Raises :class:`NonFiniteGradientError` the moment training goes bad.

    After every ``every``-th optimizer step the watchdog checks the loss and
    every parameter gradient for NaN/Inf and raises with the offending
    parameter's name — far cheaper to debug than a model that silently
    diverges three epochs later.
    """

    def __init__(self, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self._step = 0

    def on_batch_end(self, trainer, epoch: int, step: int, loss: float,
                     breakdown: dict) -> None:
        self._step += 1
        if self._step % self.every:
            return
        health = _shard_health(trainer)
        if not np.isfinite(loss):
            blamed = [entry for entry in health
                      if not np.isfinite(entry.get("loss", 0.0))]
            raise NonFiniteGradientError(
                f"non-finite training loss {loss!r} at epoch {epoch} "
                f"step {step}{_format_blame(blamed)}",
                parameter=None, epoch=epoch, step=step,
                shard=blamed[0]["shard"] if blamed else None,
                worker=blamed[0]["worker"] if blamed else None)
        for name, param in trainer.model.named_parameters():
            grad = param.grad
            if grad is not None and not np.all(np.isfinite(grad)):
                bad = "nan" if np.isnan(grad).any() else "inf"
                blamed = [entry for entry in health
                          if not entry.get("finite_grad", True)]
                raise NonFiniteGradientError(
                    f"non-finite ({bad}) gradient in parameter {name!r} "
                    f"at epoch {epoch} step {step}{_format_blame(blamed)}",
                    parameter=name, epoch=epoch, step=step,
                    shard=blamed[0]["shard"] if blamed else None,
                    worker=blamed[0]["worker"] if blamed else None)


class LossComponentTracker(TrainerCallback):
    """Per-epoch means of every loss component (main / ssl / aug / disent).

    After each epoch :attr:`epochs` holds one ``{component: mean}`` dict;
    the latest means also land in the registry as ``train.loss.<component>``
    gauges and, when telemetry is installed, as one ``loss_components``
    event per epoch.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else get_registry()
        self.epochs: list[dict[str, float]] = []
        self._sums: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def on_epoch_start(self, trainer, epoch: int) -> None:
        self._sums.clear()
        self._counts.clear()

    def on_batch_end(self, trainer, epoch: int, step: int, loss: float,
                     breakdown: dict) -> None:
        for component, value in breakdown.items():
            self._sums[component] = self._sums.get(component, 0.0) + value
            self._counts[component] = self._counts.get(component, 0) + 1

    def on_epoch_end(self, trainer, record) -> None:
        means = {component: self._sums[component] / self._counts[component]
                 for component in self._sums}
        self.epochs.append(means)
        for component, value in means.items():
            self.registry.gauge(train_loss_component(component)).set(value)
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.emit("loss_components", epoch=record.epoch, means=means,
                           **_shard_tags(trainer))

    def curve(self, component: str) -> list[float]:
        """Per-epoch means of one component (NaN where it was absent)."""
        return [epoch.get(component, float("nan")) for epoch in self.epochs]


class GradientMonitor(TrainerCallback):
    """Per-parameter gradient norms and update/parameter ratios.

    Every ``every``-th step the monitor snapshots parameters before the
    update, then records for each named parameter the gradient L2 norm and
    ``‖Δθ‖ / ‖θ‖`` — the classic health signal: ratios around 1e-3 are
    healthy, ~1e-7 means the layer is frozen, ~1e-1 means the learning rate
    is tearing it apart.  Headline aggregates land in the registry
    (``train.grad.global_norm``, ``train.grad.update_ratio.max``); full
    per-parameter histories stay on the monitor.
    """

    def __init__(self, every: int = 10, registry: MetricsRegistry | None = None):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.registry = registry if registry is not None else get_registry()
        self.grad_norms: dict[str, list[float]] = {}
        self.update_ratios: dict[str, list[float]] = {}
        self._step = 0
        self._before: dict[str, np.ndarray] | None = None

    def on_batch_start(self, trainer, epoch: int, step: int) -> None:
        if self._step % self.every == 0:
            self._before = {name: param.data.copy()
                            for name, param in trainer.model.named_parameters()}

    def on_batch_end(self, trainer, epoch: int, step: int, loss: float,
                     breakdown: dict) -> None:
        self._step += 1
        if self._before is None:
            return
        before, self._before = self._before, None
        squared_sum = 0.0
        worst_ratio = 0.0
        for name, param in trainer.model.named_parameters():
            grad = param.grad
            norm = float(np.sqrt((grad * grad).sum())) if grad is not None else 0.0
            squared_sum += norm * norm
            self.grad_norms.setdefault(name, []).append(norm)
            previous = before.get(name)
            if previous is None:
                continue
            param_norm = float(np.linalg.norm(previous))
            update_norm = float(np.linalg.norm(param.data - previous))
            # All-zero or freshly-initialized parameters make the denominator
            # 0, and a poisoned parameter makes it NaN/inf — either way the
            # ratio is meaningless, so report 0 rather than dividing.
            if param_norm > 0.0 and np.isfinite(param_norm) and np.isfinite(update_norm):
                ratio = update_norm / param_norm
            else:
                ratio = 0.0
            self.update_ratios.setdefault(name, []).append(ratio)
            if ratio > worst_ratio:
                worst_ratio = ratio
        global_norm = float(np.sqrt(squared_sum))
        self.registry.gauge("train.grad.global_norm").set(global_norm)
        self.registry.gauge("train.grad.update_ratio.max").set(worst_ratio)
        telemetry = get_telemetry()
        if telemetry is not None:
            telemetry.emit("grad_health", epoch=epoch, step=step,
                           global_norm=global_norm,
                           max_update_ratio=worst_ratio,
                           **_shard_tags(trainer))

    def last_ratios(self) -> dict[str, float]:
        """The most recent update/param ratio per parameter."""
        return {name: values[-1]
                for name, values in self.update_ratios.items() if values}
