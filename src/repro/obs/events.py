"""Structured telemetry events: the shared backbone of ``repro.obs``.

Everything the observability layer produces — finished spans, log records,
per-epoch training summaries, final metric snapshots — is one *event*: a
flat JSON-serializable dict with a ``type`` field and a wall-clock ``ts``.
Events flow into an :class:`EventSink` (an in-memory ring or a JSON-lines
file), and ``python -m repro obs`` re-reads the file to render a trace tree
and metric summary.

Telemetry follows the same zero-cost-when-disabled discipline as
:mod:`repro.perf`: a single module-global :class:`Telemetry` hub is either
installed or ``None``, and every instrumentation point in the library pays
one ``is None`` check when the hub is absent.  Typical use::

    from repro.obs import telemetry_session

    with telemetry_session("run.events.jsonl"):
        trainer.fit()          # spans + epoch events land in the file

On session exit a final ``{"type": "metrics", ...}`` event captures the
associated :class:`~repro.obs.metrics.MetricsRegistry` snapshot, so one file
carries both the trace and the counters.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import threading
import time
from pathlib import Path

__all__ = [
    "EventSink",
    "Telemetry",
    "enable_telemetry",
    "disable_telemetry",
    "get_telemetry",
    "telemetry_session",
    "read_events",
    "read_events_tolerant",
    "child_telemetry_config",
    "enable_worker_telemetry",
    "spool_dir_for",
]


class EventSink:
    """Thread-safe event consumer: in-memory list plus optional JSON-lines file.

    Args:
        path: when given, every event is appended to this file as one JSON
            line (the file is truncated on open).  Without a path events are
            only kept in :attr:`events` — handy for tests.
        keep_in_memory: retain events on the sink object (always on for
            path-less sinks so the events remain observable).
    """

    def __init__(self, path: str | Path | None = None,
                 keep_in_memory: bool | None = None):
        self.path = Path(path) if path is not None else None
        self.keep_in_memory = (self.path is None if keep_in_memory is None
                               else keep_in_memory)
        self.events: list[dict] = []
        self._lock = threading.Lock()
        self._file = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Line-buffered: every emitted event reaches the file before the
            # next syscall, so a ``fork`` never duplicates buffered bytes
            # into a child and a crashed process loses at most nothing.
            self._file = open(self.path, "w", encoding="utf-8", buffering=1)

    def emit(self, event: dict) -> None:
        """Record one event (thread-safe; silently dropped after close)."""
        with self._lock:
            if self.keep_in_memory:
                self.events.append(event)
            if self._file is not None and not self._file.closed:
                self._file.write(json.dumps(event) + "\n")

    def flush(self) -> None:
        """Flush the underlying file, if any."""
        with self._lock:
            if self._file is not None and not self._file.closed:
                self._file.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._file is not None and not self._file.closed:
                self._file.flush()
                self._file.close()


class Telemetry:
    """The enabled telemetry hub: an event sink plus a metrics registry.

    Instrumentation points obtain the hub with :func:`get_telemetry` (or go
    through :func:`repro.obs.trace.span`, which does it for them) and call
    :meth:`emit`.  The hub also hands out span ids that are unique across
    the whole fleet: the counter is seeded from the process pid (pid in the
    high bits, monotone low bits), so spans recorded in different
    per-process spools can reference each other by id without coordination.

    ``proc`` tags the hub with its process identity (``role`` / ``worker`` /
    ``pid`` / ``generation``); when set, every event carries it so the
    fleet merge can attribute events to the worker that produced them.
    """

    def __init__(self, sink: EventSink, registry=None,
                 proc: dict | None = None):
        from .metrics import get_registry
        self.sink = sink
        self.registry = registry if registry is not None else get_registry()
        self.proc = dict(proc) if proc else None
        self._span_ids = itertools.count(((os.getpid() & 0xFFFFF) << 40) | 1)

    def next_span_id(self) -> int:
        """A fresh fleet-unique id for one span (monotone within process)."""
        return next(self._span_ids)

    def emit(self, type: str, **fields) -> None:
        """Stamp and forward one event to the sink."""
        event = {"type": type, "ts": time.time()}
        if self.proc is not None:
            event["proc"] = self.proc
        event.update(fields)
        self.sink.emit(event)

    def emit_metrics_snapshot(self) -> None:
        """Append one ``metrics`` event with the registry's current state."""
        self.emit("metrics", registry=self.registry.snapshot())


_TELEMETRY: Telemetry | None = None


def get_telemetry() -> Telemetry | None:
    """The installed telemetry hub, or None when telemetry is disabled."""
    return _TELEMETRY


def enable_telemetry(path: str | Path | None = None,
                     registry=None) -> Telemetry:
    """Install a telemetry hub writing to ``path`` (or memory when None).

    Replaces any previously installed hub (its sink is closed first).
    """
    global _TELEMETRY
    if _TELEMETRY is not None:
        _TELEMETRY.sink.close()
    _TELEMETRY = Telemetry(EventSink(path), registry=registry)
    return _TELEMETRY


def disable_telemetry(final_snapshot: bool = True) -> None:
    """Uninstall the hub; optionally append a final metrics snapshot first."""
    global _TELEMETRY
    if _TELEMETRY is None:
        return
    if final_snapshot:
        _TELEMETRY.emit_metrics_snapshot()
    _TELEMETRY.sink.close()
    _TELEMETRY = None


@contextlib.contextmanager
def telemetry_session(path: str | Path | None = None, registry=None):
    """Context manager: telemetry enabled for the block, snapshot on exit.

    Yields the :class:`Telemetry` hub.  On exit the registry snapshot is
    appended as the final event and the hub is uninstalled, so the produced
    JSON-lines file is self-contained.
    """
    telemetry = enable_telemetry(path, registry=registry)
    try:
        yield telemetry
    finally:
        disable_telemetry()


def read_events(path: str | Path) -> list[dict]:
    """Parse one JSON-lines event file back into a list of event dicts.

    Blank lines are skipped; malformed lines raise ``ValueError`` with the
    offending line number.
    """
    events = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: not valid JSON ({error})")
    return events


def read_events_tolerant(path: str | Path) -> tuple[list[dict], int]:
    """Like :func:`read_events`, but skip malformed lines instead of raising.

    Returns ``(events, malformed_lines)``.  Event files written by a live
    fleet can legitimately end mid-line (a worker killed between ``write``
    and newline) — renderers and mergers use this form and surface the
    count, while :func:`read_events` stays strict for tests and tooling
    that treat a corrupt file as an error.
    """
    events: list[dict] = []
    malformed = 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                malformed += 1
    return events, malformed


def spool_dir_for(path: str | Path) -> Path:
    """The per-process spool directory paired with one events file.

    Workers forked while telemetry writes to ``run.jsonl`` relay their own
    events into ``run.jsonl.d/<role>-<worker>-g<generation>-<pid>.jsonl``;
    the fleet collector (:mod:`repro.obs.fleet`) and ``python -m repro obs``
    discover the spools from the main file's path alone.
    """
    path = Path(path)
    return path.with_name(path.name + ".d")


def child_telemetry_config() -> dict | None:
    """Snapshot the hub's relay settings for a worker about to fork.

    Returns None when telemetry is disabled or purely in-memory — forked
    workers then run with telemetry off, exactly as before the fleet path
    existed.  The returned dict is pickle-friendly so pool factories can
    ship it through task queues or spawn arguments.
    """
    if _TELEMETRY is None or _TELEMETRY.sink.path is None:
        return None
    return {"spool_dir": str(spool_dir_for(_TELEMETRY.sink.path))}


def enable_worker_telemetry(config: dict | None, role: str, worker_id: int,
                            generation: int = 0) -> Telemetry | None:
    """Install a child process's relay hub right after ``fork``.

    The inherited parent hub is dropped without closing it (the file
    descriptor is shared with the parent; the line-buffered sink guarantees
    the child inherited no buffered bytes), and the inherited span stack is
    cleared so child spans never parent on a span that lives in the parent.

    With ``config`` from :func:`child_telemetry_config` the child gets its
    own JSON-lines spool plus a **fresh** :class:`MetricsRegistry` — fleet
    merges sum per-process registries, so the child must not re-count
    values inherited from the parent.  With ``config=None`` telemetry is
    simply off in the child.
    """
    from .metrics import MetricsRegistry
    from .trace import reset_trace_state
    global _TELEMETRY
    _TELEMETRY = None
    reset_trace_state()
    if config is None:
        return None
    spool_dir = Path(config["spool_dir"])
    spool_dir.mkdir(parents=True, exist_ok=True)
    spool = spool_dir / f"{role}-{worker_id}-g{generation}-{os.getpid()}.jsonl"
    _TELEMETRY = Telemetry(
        EventSink(spool, keep_in_memory=False),
        registry=MetricsRegistry(),
        proc={"role": role, "worker": worker_id, "pid": os.getpid(),
              "generation": generation})
    return _TELEMETRY
