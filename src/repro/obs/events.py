"""Structured telemetry events: the shared backbone of ``repro.obs``.

Everything the observability layer produces — finished spans, log records,
per-epoch training summaries, final metric snapshots — is one *event*: a
flat JSON-serializable dict with a ``type`` field and a wall-clock ``ts``.
Events flow into an :class:`EventSink` (an in-memory ring or a JSON-lines
file), and ``python -m repro obs`` re-reads the file to render a trace tree
and metric summary.

Telemetry follows the same zero-cost-when-disabled discipline as
:mod:`repro.perf`: a single module-global :class:`Telemetry` hub is either
installed or ``None``, and every instrumentation point in the library pays
one ``is None`` check when the hub is absent.  Typical use::

    from repro.obs import telemetry_session

    with telemetry_session("run.events.jsonl"):
        trainer.fit()          # spans + epoch events land in the file

On session exit a final ``{"type": "metrics", ...}`` event captures the
associated :class:`~repro.obs.metrics.MetricsRegistry` snapshot, so one file
carries both the trace and the counters.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import threading
import time
from pathlib import Path

__all__ = [
    "EventSink",
    "Telemetry",
    "enable_telemetry",
    "disable_telemetry",
    "get_telemetry",
    "telemetry_session",
    "read_events",
]


class EventSink:
    """Thread-safe event consumer: in-memory list plus optional JSON-lines file.

    Args:
        path: when given, every event is appended to this file as one JSON
            line (the file is truncated on open).  Without a path events are
            only kept in :attr:`events` — handy for tests.
        keep_in_memory: retain events on the sink object (always on for
            path-less sinks so the events remain observable).
    """

    def __init__(self, path: str | Path | None = None,
                 keep_in_memory: bool | None = None):
        self.path = Path(path) if path is not None else None
        self.keep_in_memory = (self.path is None if keep_in_memory is None
                               else keep_in_memory)
        self.events: list[dict] = []
        self._lock = threading.Lock()
        self._file = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        """Record one event (thread-safe; silently dropped after close)."""
        with self._lock:
            if self.keep_in_memory:
                self.events.append(event)
            if self._file is not None and not self._file.closed:
                self._file.write(json.dumps(event) + "\n")

    def flush(self) -> None:
        """Flush the underlying file, if any."""
        with self._lock:
            if self._file is not None and not self._file.closed:
                self._file.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._file is not None and not self._file.closed:
                self._file.flush()
                self._file.close()


class Telemetry:
    """The enabled telemetry hub: an event sink plus a metrics registry.

    Instrumentation points obtain the hub with :func:`get_telemetry` (or go
    through :func:`repro.obs.trace.span`, which does it for them) and call
    :meth:`emit`.  The hub also hands out process-unique span ids.
    """

    def __init__(self, sink: EventSink, registry=None):
        from .metrics import get_registry
        self.sink = sink
        self.registry = registry if registry is not None else get_registry()
        self._span_ids = itertools.count(1)

    def next_span_id(self) -> int:
        """A fresh id for one span (monotonically increasing)."""
        return next(self._span_ids)

    def emit(self, type: str, **fields) -> None:
        """Stamp and forward one event to the sink."""
        event = {"type": type, "ts": time.time()}
        event.update(fields)
        self.sink.emit(event)

    def emit_metrics_snapshot(self) -> None:
        """Append one ``metrics`` event with the registry's current state."""
        self.emit("metrics", registry=self.registry.snapshot())


_TELEMETRY: Telemetry | None = None


def get_telemetry() -> Telemetry | None:
    """The installed telemetry hub, or None when telemetry is disabled."""
    return _TELEMETRY


def enable_telemetry(path: str | Path | None = None,
                     registry=None) -> Telemetry:
    """Install a telemetry hub writing to ``path`` (or memory when None).

    Replaces any previously installed hub (its sink is closed first).
    """
    global _TELEMETRY
    if _TELEMETRY is not None:
        _TELEMETRY.sink.close()
    _TELEMETRY = Telemetry(EventSink(path), registry=registry)
    return _TELEMETRY


def disable_telemetry(final_snapshot: bool = True) -> None:
    """Uninstall the hub; optionally append a final metrics snapshot first."""
    global _TELEMETRY
    if _TELEMETRY is None:
        return
    if final_snapshot:
        _TELEMETRY.emit_metrics_snapshot()
    _TELEMETRY.sink.close()
    _TELEMETRY = None


@contextlib.contextmanager
def telemetry_session(path: str | Path | None = None, registry=None):
    """Context manager: telemetry enabled for the block, snapshot on exit.

    Yields the :class:`Telemetry` hub.  On exit the registry snapshot is
    appended as the final event and the hub is uninstalled, so the produced
    JSON-lines file is self-contained.
    """
    telemetry = enable_telemetry(path, registry=registry)
    try:
        yield telemetry
    finally:
        disable_telemetry()


def read_events(path: str | Path) -> list[dict]:
    """Parse one JSON-lines event file back into a list of event dicts.

    Blank lines are skipped; malformed lines raise ``ValueError`` with the
    offending line number.
    """
    events = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: not valid JSON ({error})")
    return events
