"""Process-wide metrics: counters, gauges and log-bucketed histograms.

:class:`MetricsRegistry` is the shared, always-on metric store — cheap
enough to update unconditionally (one dict lookup + one add), with named
get-or-create accessors so independent subsystems can contribute to one
namespace (``train.*``, ``serve.*``, ``hypergraph.*``, and the input
pipeline's ``pipeline.queue_depth`` gauge / ``pipeline.wait_seconds``
histogram / ``pipeline.batches`` + ``pipeline.worker.<id>.batches``
utilization counters from :class:`repro.data.pipeline.PrefetchLoader`).
A process-wide
default registry is reachable via :func:`get_registry`; components that need
isolation (e.g. one :class:`~repro.serve.metrics.ServingMetrics` per
service) construct private registries of the same classes.

The histogram is the generalized form of the serving latency histogram:
geometric buckets, exact count/mean/max, percentile estimates with bounded
relative error.  Exports: :func:`MetricsRegistry.snapshot` (JSON) and
:func:`repro.obs.exporters.prometheus_text` (text exposition).
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "get_registry", "LATENCY_BOUNDS"]

LATENCY_BOUNDS = 1e-6 * np.power(2.0, np.arange(27))
"""Default geometric bucket bounds: factor 2 from 1 µs to ~67 s."""


class Counter:
    """Monotonically increasing count (requests, steps, cache hits...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value (loss, learning rate, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)

    def add(self, amount: float) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        self.value += amount


class Histogram:
    """Log-bucketed accumulator with percentile estimates.

    A recorded value lands in the first bucket whose upper bound contains
    it.  Percentiles interpolate within the winning bucket, so they are
    estimates with bounded relative error (factor-``b`` buckets bound the
    error at ``b``×), while ``count`` / ``mean`` / ``max`` are exact.

    Args:
        name: registry name (free-form dotted path).
        bounds: ascending bucket upper bounds; defaults to
            :data:`LATENCY_BOUNDS` (seconds-scaled latency buckets).
    """

    __slots__ = ("name", "bounds", "_counts", "count", "total", "max")

    def __init__(self, name: str = "", bounds: np.ndarray | None = None):
        self.name = name
        self.bounds = LATENCY_BOUNDS if bounds is None else np.asarray(bounds, dtype=float)
        self._counts = np.zeros(len(self.bounds) + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, value: float) -> None:
        """Add one observation."""
        bucket = int(np.searchsorted(self.bounds, value, side="left"))
        self._counts[bucket] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (0 when empty)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = np.cumsum(self._counts)
        bucket = int(np.searchsorted(cumulative, rank, side="left"))
        upper = self.bounds[bucket] if bucket < len(self.bounds) else self.max
        lower = self.bounds[bucket - 1] if bucket > 0 else 0.0
        previous = cumulative[bucket - 1] if bucket > 0 else 0
        in_bucket = self._counts[bucket]
        fraction = (rank - previous) / in_bucket if in_bucket else 1.0
        return min(lower + fraction * (upper - lower), self.max or upper)

    def percentile_upper(self, p: float) -> float:
        """Guaranteed upper bound on the ``p``-th percentile (0 when empty).

        Unlike :meth:`percentile` this never interpolates: it returns the
        upper bound of the bucket holding the rank (clamped to the exact
        ``max``), so factor-``b`` buckets bound the overstatement at ``b``×.
        Derived quantile exports use this form — an SLO read from it can be
        violated in the buckets but never silently exceeded by the data.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = np.cumsum(self._counts)
        bucket = int(np.searchsorted(cumulative, rank, side="left"))
        upper = self.bounds[bucket] if bucket < len(self.bounds) else self.max
        return float(min(upper, self.max))

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        The final pair uses ``inf`` as the bound and equals ``count``.
        """
        cumulative = np.cumsum(self._counts)
        pairs = [(float(bound), int(total))
                 for bound, total in zip(self.bounds, cumulative)]
        pairs.append((float("inf"), int(cumulative[-1])))
        return pairs

    def state(self) -> dict:
        """Exact mergeable state: bounds, raw bucket counts and aggregates.

        Serializes losslessly through JSON, so a per-process ``metrics``
        event carries everything :meth:`merge_state` needs to fold the
        process back into a fleet-wide histogram — bucket-wise, exactly.
        """
        return {
            "bounds": [float(bound) for bound in self.bounds],
            "counts": [int(count) for count in self._counts],
            "count": int(self.count),
            "total": float(self.total),
            "max": float(self.max),
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Bucket counts add element-wise and count/total/max combine exactly,
        so merging per-process histograms is equivalent to recording every
        observation into one histogram.  Bounds must match.
        """
        bounds = np.asarray(state["bounds"], dtype=float)
        if bounds.shape != self.bounds.shape or not np.array_equal(bounds, self.bounds):
            raise ValueError(f"histogram {self.name!r}: cannot merge "
                             f"incompatible bucket bounds")
        counts = np.asarray(state["counts"], dtype=np.int64)
        self._counts += counts
        self.count += int(state["count"])
        self.total += float(state["total"])
        self.max = max(self.max, float(state["max"]))

    @classmethod
    def from_state(cls, name: str, state: dict) -> "Histogram":
        """Reconstruct a histogram from a serialized :meth:`state` dict."""
        histogram = cls(name, bounds=np.asarray(state["bounds"], dtype=float))
        histogram.merge_state(state)
        return histogram

    def snapshot(self) -> dict:
        """JSON-serializable summary (raw units) plus mergeable ``state``."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "max": self.max,
            "state": self.state(),
        }


class MetricsRegistry:
    """Named get-or-create store of counters, gauges and histograms.

    Names are free-form dotted paths (``train.loss.main``).  Re-requesting a
    name returns the existing instrument; requesting it as a different kind
    raises ``TypeError``.  Creation is lock-protected so concurrent threads
    (e.g. the serving worker) can register safely; updates on the returned
    instruments are plain attribute arithmetic.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls, *args, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = self._metrics[name] = cls(name, *args, **kwargs)
        if not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, "
                            f"not a {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, bounds: np.ndarray | None = None,
                  cls: type = Histogram) -> Histogram:
        """Get or create the histogram called ``name``.

        ``cls`` may be a :class:`Histogram` subclass (the serving layer
        passes its latency-flavored subclass); ``bounds`` applies only at
        creation.
        """
        if not issubclass(cls, Histogram):
            raise TypeError(f"cls must subclass Histogram, got {cls!r}")
        return self._get_or_create(name, cls, bounds)

    def names(self) -> list[str]:
        """Sorted names of every registered instrument."""
        return sorted(self._metrics)

    def get(self, name: str):
        """The instrument called ``name``, or None."""
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """JSON view: ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.snapshot()
        return out

    def reset(self) -> None:
        """Drop every instrument (used between runs / in tests)."""
        with self._lock:
            self._metrics.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY
