"""Catalog of every span and metric name the library emits.

Fleet-wide aggregation only works when every process names its spans and
metrics identically — a typo'd or ad-hoc name produces an unmergeable
series that silently fragments the fleet view.  This module is therefore
the single source of truth: instrumentation sites either use a dotted
lowercase string literal present in :data:`SPAN_NAMES` /
:data:`METRIC_NAMES`, or go through one of the template helpers below for
the few legitimately parameterized families (per-stage serving latency,
per-component loss gauges, per-worker utilization counters).

The ``SPAN-NAME-DISCIPLINE`` lint rule (:mod:`repro.lint.rules`) enforces
this at the AST level: a ``span(...)`` / ``registry.counter(...)`` call
whose name argument is not a catalog literal or a call to a helper exported
here is a finding.
"""

from __future__ import annotations

__all__ = [
    "SPAN_NAMES",
    "METRIC_NAMES",
    "serve_latency_stage",
    "train_loss_component",
    "pipeline_worker_batches",
]

SPAN_NAMES = frozenset({
    # training
    "train.fit",
    "train.epoch",
    "train.train_pass",
    "train.eval_pass",
    "train.step",
    # evaluation & preprocessing
    "eval.rank_all",
    "hypergraph.build",
    # serving (in-process)
    "serve.request",
    "serve.batch",
    "serve.encode",
    "serve.retrieve_rank",
    # cross-process fleet spans
    "worker.task",
    "net.request",
    "replica.request",
})
"""Every static span name; child spans parent on these across processes."""

METRIC_NAMES = frozenset({
    # serving service
    "serve.requests",
    "serve.errors",
    "serve.batches",
    "serve.batched_requests",
    "serve.max_batch_size",
    "serve.cache.hits",
    "serve.cache.misses",
    "serve.cache.stampede_suppressed",
    "serve.recall.sum",
    "serve.recall.samples",
    # retrieval index (quantized scan/refine split, prebuilt attaches)
    "serve.index.scan_seconds",
    "serve.index.refine_seconds",
    "serve.index.candidates",
    "serve.index.refined",
    "serve.index.prebuilt_loads",
    # serving network tier
    "serve.net.connections",
    "serve.net.requests",
    "serve.net.shed",
    "serve.net.errors",
    "serve.net.read_timeouts",
    "serve.net.inflight",
    "serve.net.replica.respawns",
    "serve.net.replica.retries",
    "serve.net.replica.deaths",
    # request correlation (front-end per-stage)
    "net.request.seconds",
    "net.request.dispatch_seconds",
    "net.request.replica_seconds",
    "net.request.batch_wait_seconds",
    # training health
    "train.grad.global_norm",
    "train.grad.update_ratio.max",
    # data-parallel engine
    "ddp.steps",
    "ddp.shards",
    "ddp.grad_bytes",
    "ddp.sync_seconds",
    # fleet collection synthetics
    "fleet.processes",
    "fleet.events",
    "fleet.spans",
    "fleet.malformed_lines",
    # lock-order watchdog (repro.obs.lockwatch)
    "lockwatch.acquisitions",
    "lockwatch.edges",
    "lockwatch.cycles",
    # input pipeline
    "pipeline.queue_depth",
    "pipeline.wait_seconds",
    "pipeline.batches",
    "pipeline.shm.bytes",
    "pipeline.shm.results",
    "pipeline.shm.fallbacks",
})
"""Every static metric name registered anywhere in the library."""


def serve_latency_stage(stage: str) -> str:
    """Histogram name for one serving latency stage (``serve.latency.<stage>``)."""
    return "serve.latency." + stage


def train_loss_component(component: str) -> str:
    """Gauge name for one loss component (``train.loss.<component>``)."""
    return "train.loss." + component


def pipeline_worker_batches(worker_id: int) -> str:
    """Counter name for one prefetch worker (``pipeline.worker.<id>.batches``)."""
    return f"pipeline.worker.{worker_id}.batches"
