"""Fleet-wide telemetry collection: merge per-process spools into one view.

A multi-process run produces one *main* JSON-lines event file (the parent's
:func:`~repro.obs.events.telemetry_session`) plus a spool directory next to
it (``<events>.d/``) holding one file per forked worker, DDP shard, eval
shard or serving replica (see
:func:`~repro.obs.events.enable_worker_telemetry`).  This module stitches
them back together:

* **events** concatenate — every spool event already carries its ``proc``
  tag (role / worker / pid / generation), and span ids are fleet-unique
  (pid-seeded counters), so the combined span set renders as one tree with
  cross-process parent edges intact.
* **metrics** merge — each process's final ``metrics`` snapshot is folded
  into one :class:`~repro.obs.metrics.MetricsRegistry`: counters sum,
  histograms merge bucket-wise exactly via their serialized
  :meth:`~repro.obs.metrics.Histogram.state`, and gauges keep the last
  writer in source order (main file first, then spools sorted by filename)
  — gauges are instantaneous values, so summing them would be meaningless.
* **synthetic ``fleet.*`` counters** describe the collection itself
  (process/event/span counts, malformed lines), so the merged registry is
  self-describing in ``prometheus_text`` output.

Only the *last* ``metrics`` event per file is merged: registry snapshots
are cumulative, so folding every intermediate snapshot would double-count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .events import read_events_tolerant, spool_dir_for
from .metrics import MetricsRegistry

__all__ = ["FleetView", "collect_fleet", "merge_registry_snapshot",
           "merge_snapshots"]


def merge_registry_snapshot(registry: MetricsRegistry, snapshot: dict) -> None:
    """Fold one serialized registry snapshot into a live registry.

    Counters add, gauges overwrite (last writer wins), histograms merge
    exactly through their embedded ``state`` (snapshots without state —
    from pre-fleet event files — are skipped rather than merged lossily).
    """
    for name, value in snapshot.get("counters", {}).items():
        registry.counter(name).inc(value)
    for name, value in snapshot.get("gauges", {}).items():
        registry.gauge(name).set(value)
    for name, summary in snapshot.get("histograms", {}).items():
        state = summary.get("state")
        if state is None:
            continue
        histogram = registry.histogram(
            name, bounds=np.asarray(state["bounds"], dtype=float))
        histogram.merge_state(state)


def merge_snapshots(snapshots) -> MetricsRegistry:
    """Merge an iterable of registry snapshots into one fresh registry."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        merge_registry_snapshot(registry, snapshot)
    return registry


@dataclass
class FleetView:
    """Everything one collection pass recovered from a run's event files."""

    events: list = field(default_factory=list)
    """All events, main file first then spools (each spool in file order)."""

    spans: list = field(default_factory=list)
    """The ``span`` events across every process."""

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    """Merged fleet metrics (counters summed, histograms bucket-merged)."""

    processes: list = field(default_factory=list)
    """Per-file census: role, worker, pid, generation, event/span counts."""

    malformed_lines: int = 0
    """Lines skipped as invalid JSON across every file (live-writer torn
    lines, truncated tails)."""


def collect_fleet(path: str | Path) -> FleetView:
    """Collect one run: the main events file plus its worker spools.

    ``path`` is the file handed to ``--events-out``; spools are discovered
    at ``<path>.d/*.jsonl`` automatically.  Malformed lines anywhere are
    skipped and counted, never fatal — a live fleet's files may end
    mid-write.
    """
    sources = [Path(path)]
    spool_dir = spool_dir_for(path)
    if spool_dir.is_dir():
        sources.extend(sorted(spool_dir.glob("*.jsonl")))

    view = FleetView()
    for source in sources:
        events, malformed = read_events_tolerant(source)
        view.events.extend(events)
        view.malformed_lines += malformed
        proc = next((event["proc"] for event in events if "proc" in event),
                    None) or {"role": "main"}
        snapshots = [event for event in events
                     if event.get("type") == "metrics"]
        if snapshots:
            merge_registry_snapshot(view.registry,
                                    snapshots[-1].get("registry", {}))
        span_count = sum(1 for event in events if event.get("type") == "span")
        view.processes.append({
            "file": str(source),
            "role": proc.get("role", "main"),
            "worker": proc.get("worker"),
            "pid": proc.get("pid"),
            "generation": proc.get("generation"),
            "events": len(events),
            "spans": span_count,
            "malformed_lines": malformed,
        })

    view.spans = [event for event in view.events
                  if event.get("type") == "span"]
    registry = view.registry
    registry.counter("fleet.processes").inc(len(view.processes))
    registry.counter("fleet.events").inc(len(view.events))
    registry.counter("fleet.spans").inc(len(view.spans))
    registry.counter("fleet.malformed_lines").inc(view.malformed_lines)
    return view
