"""Exporters: Prometheus text exposition and per-run manifests.

Three machine-readable outputs leave the telemetry layer:

* **JSON-lines event logs** — produced by the sink itself
  (:mod:`repro.obs.events`), rendered by ``python -m repro obs``.
* **Prometheus exposition** — :func:`prometheus_text` renders any
  :class:`~repro.obs.metrics.MetricsRegistry` in the text format scrapers
  expect (counters, gauges, cumulative histogram buckets).
* **Run manifests** — :func:`write_run_manifest` captures what produced a
  checkpoint (config, seed, git SHA, final metrics, environment) as a JSON
  file next to the checkpoint, so every ``.npz`` on disk stays attributable
  months later.
"""

from __future__ import annotations

import json
import platform
import re
import subprocess
import sys
import time
from pathlib import Path

from .metrics import Counter, Gauge, MetricsRegistry

__all__ = ["prometheus_text", "write_run_manifest", "git_revision"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_OK.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(round(float(value), 9))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters and gauges become single samples; histograms expand into
    cumulative ``_bucket{le="..."}`` samples plus ``_sum`` and ``_count``,
    matching what a scraper expects from a native client, and additionally
    export derived ``_p50`` / ``_p90`` / ``_p99`` gauges — bucket
    upper-bound quantiles (:meth:`~repro.obs.metrics.Histogram.percentile_upper`)
    so latency SLOs are readable without recomputing from the buckets.
    """
    lines: list[str] = []
    for name in registry.names():
        metric = registry.get(name)
        prom = _prom_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_fmt(metric.value)}")
        else:
            lines.append(f"# TYPE {prom} histogram")
            for bound, count in metric.bucket_counts():
                lines.append(f'{prom}_bucket{{le="{_fmt(bound)}"}} {count}')
            lines.append(f"{prom}_sum {_fmt(metric.total)}")
            lines.append(f"{prom}_count {metric.count}")
            for percentile, label in ((50.0, "p50"), (90.0, "p90"),
                                      (99.0, "p99")):
                lines.append(f"# TYPE {prom}_{label} gauge")
                lines.append(f"{prom}_{label} "
                             f"{_fmt(metric.percentile_upper(percentile))}")
    return "\n".join(lines) + ("\n" if lines else "")


def git_revision() -> str | None:
    """The current repository's HEAD SHA, or None outside a git checkout."""
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True, timeout=5.0)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def write_run_manifest(path: str | Path, *, config: dict | None = None,
                       seed: int | None = None, metrics: dict | None = None,
                       extra: dict | None = None) -> Path:
    """Write one run's provenance manifest as pretty-printed JSON.

    Args:
        path: manifest destination (conventionally
            ``<checkpoint>.manifest.json`` next to the checkpoint).
        config: the run's configuration (e.g. ``dataclasses.asdict`` of a
            :class:`~repro.train.trainer.TrainConfig`).
        seed: the run's master seed.
        metrics: final metric values (best validation / test report).
        extra: any further JSON-serializable context.

    The manifest additionally records the git SHA (when available), the
    Python/NumPy versions, the platform and a wall-clock timestamp.
    """
    import numpy as np

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    manifest = {
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": git_revision(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "seed": seed,
        "config": config or {},
        "metrics": metrics or {},
        "extra": extra or {},
    }
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True,
                               default=str) + "\n", encoding="utf-8")
    return path
