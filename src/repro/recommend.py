"""Serving-style recommendation API.

The evaluation stack ranks pre-drawn candidates; a *deployed* recommender
answers "give me the top-k items for this user, excluding what they already
interacted with."  :func:`recommend` provides that surface over any trained
:class:`~repro.core.base.SequentialRecommender`, building the user's input
from the corpus on the fly.

    >>> recs = recommend(model, dataset, user=42, k=10)
    >>> [r.item for r in recs]
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.batching import collate
from repro.data.dataset import MultiBehaviorDataset
from repro.data.splits import SequenceExample
from repro.nn.tensor import no_grad

__all__ = ["Recommendation", "recommend", "recommend_batch", "build_inference_example"]


@dataclass(frozen=True)
class Recommendation:
    """One recommended item with its model score and rank (0-based)."""

    item: int
    score: float
    rank: int


def build_inference_example(dataset: MultiBehaviorDataset, user: int,
                            max_len: int = 50) -> SequenceExample:
    """The prediction input for ``user``'s *entire* recorded history.

    Unlike split examples (which cut at a target event), inference consumes
    everything the corpus knows about the user.  The ``target`` field is a
    placeholder (0 is never a real item) and must not be read.
    """
    if not dataset.has_user(user):
        raise KeyError(f"user {user} not in the corpus")
    schema = dataset.schema
    inputs = {
        behavior: tuple(dataset.sequence(user, behavior)[-max_len:])
        for behavior in schema.behaviors
    }
    merged = [(item, schema.behavior_id(behavior))
              for item, behavior, _ in dataset.merged_sequence(user)][-max_len:]
    return SequenceExample(
        user=user,
        inputs=inputs,
        merged_items=tuple(item for item, _ in merged),
        merged_behavior_ids=tuple(bid for _, bid in merged),
        target=1,  # placeholder; never used for inference
    )


def recommend_batch(model, dataset: MultiBehaviorDataset, users: list[int],
                    k: int = 10, max_len: int = 50,
                    exclude_seen: bool = True) -> dict[int, list[Recommendation]]:
    """Top-``k`` recommendations for several users at once.

    Scores the full catalog per user via :meth:`score_all_items` (one shared
    item block, no per-user candidate tile); items the user already
    interacted with (under any behavior) are excluded when ``exclude_seen``
    is True.  The model's train/eval mode is restored on exit.
    """
    if k < 1:
        raise ValueError("k must be positive")
    examples = [build_inference_example(dataset, user, max_len) for user in users]
    batch = collate(examples, dataset.schema)
    all_items = np.arange(1, dataset.num_items + 1)
    was_training = bool(getattr(model, "training", False))
    model.eval()
    with no_grad():
        scores = model.score_all_items(batch, dataset.num_items).numpy()
    if was_training:
        model.train()
    results: dict[int, list[Recommendation]] = {}
    for row, user in enumerate(users):
        row_scores = scores[row].astype(np.float64, copy=True)
        if exclude_seen:
            seen = dataset.items_of_user(user)
            if seen:
                row_scores[np.fromiter(seen, dtype=np.int64) - 1] = -np.inf
        top = np.argsort(-row_scores)[:k]
        results[user] = [
            Recommendation(item=int(all_items[i]), score=float(row_scores[i]),
                           rank=rank)
            for rank, i in enumerate(top) if np.isfinite(row_scores[i])
        ]
    return results


def recommend(model, dataset: MultiBehaviorDataset, user: int, k: int = 10,
              max_len: int = 50, exclude_seen: bool = True) -> list[Recommendation]:
    """Top-``k`` novel items for one user (see :func:`recommend_batch`)."""
    return recommend_batch(model, dataset, [user], k=k, max_len=max_len,
                           exclude_seen=exclude_seen)[user]
