"""Pure-NumPy inference kernels mirroring the eval-time autodiff forward.

Each function replicates, operation for operation and in the same dtype, what
the corresponding :mod:`repro.nn` module computes in eval mode with the fused
kernels enabled (the default).  That makes a served forward bitwise-comparable
to the training stack's forward: the parity tests assert identical top-k.

Nothing here touches :class:`repro.nn.tensor.Tensor` — these kernels are what
the serving subsystem runs after an artifact is loaded without the autodiff
graph.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "linear", "layer_norm", "softmax", "masked_softmax", "masked_fill",
    "gelu", "sigmoid", "multi_head_attention", "transformer_encoder",
    "build_attention_mask", "interest_readout", "pq_adc_scores",
]

_NEG_INF = -1e9
_GELU_C = float(np.sqrt(2.0 / np.pi))
_GELU_A = 0.044715


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
           ) -> np.ndarray:
    """Affine map ``x @ W^T + b`` on the last axis (mirrors ``nn.Linear``)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
               eps: float = 1e-5) -> np.ndarray:
    """Layer norm over the last axis (mirrors the fused ``F.layer_norm``)."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(variance + eps)
    return (centered * inv_std) * gamma + beta


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax (mirrors the fused ``F.softmax``)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def masked_fill(x: np.ndarray, mask: np.ndarray, value: float = _NEG_INF
                ) -> np.ndarray:
    """``value`` where ``mask`` is True (mirrors ``Tensor.masked_fill``)."""
    return np.where(mask, np.asarray(value, dtype=x.dtype), x)


def masked_softmax(x: np.ndarray, mask: np.ndarray | None, axis: int = -1,
                   neg: float = _NEG_INF) -> np.ndarray:
    """Softmax with blocked positions (mirrors the fused ``F.masked_softmax``).

    Blocked positions get exactly zero weight: the ``-1e9`` fill underflows
    ``exp`` to 0.0 in float32, so padded keys cannot leak into the output —
    which is what makes served results independent of batch composition.
    """
    if mask is None:
        return softmax(x, axis=axis)
    return softmax(masked_fill(x, mask, neg), axis=axis)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated GELU (mirrors the fused ``F.gelu``)."""
    t = np.tanh(_GELU_C * (x + _GELU_A * x * x * x))
    return 0.5 * x * (1.0 + t)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Piecewise-stable logistic (mirrors ``Tensor.sigmoid``)."""
    value = np.empty_like(x)
    positive = x >= 0
    value[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    value[~positive] = exp_x / (1.0 + exp_x)
    return value


def build_attention_mask(valid_mask: np.ndarray | None, length: int,
                         causal: bool = True) -> np.ndarray | None:
    """Combined padding + causal block mask, broadcastable to ``(B, H, L, L)``
    (mirrors ``TransformerEncoder.build_mask``)."""
    mask = None
    if valid_mask is not None:
        mask = ~valid_mask.astype(bool)[:, None, None, :]
    if causal:
        causal_mask = np.triu(np.ones((length, length), dtype=bool), k=1)[None, None]
        mask = causal_mask if mask is None else (mask | causal_mask)
    return mask


def _take(params: dict[str, np.ndarray], name: str) -> np.ndarray:
    try:
        return params[name]
    except KeyError:
        raise KeyError(f"artifact is missing serving parameter {name!r}") from None


def multi_head_attention(x: np.ndarray, mask: np.ndarray | None,
                         params: dict[str, np.ndarray], prefix: str,
                         num_heads: int) -> np.ndarray:
    """Self-attention block (mirrors ``nn.attention.MultiHeadAttention``)."""
    batch, length, dim = x.shape
    head_dim = dim // num_heads

    def project(name: str) -> np.ndarray:
        out = linear(x, _take(params, f"{prefix}{name}.weight"),
                     _take(params, f"{prefix}{name}.bias"))
        return out.reshape(batch, length, num_heads, head_dim).transpose(0, 2, 1, 3)

    q, k, v = project("q_proj"), project("k_proj"), project("v_proj")
    scale = np.asarray(1.0 / np.sqrt(head_dim), dtype=x.dtype)
    scores = (q @ k.swapaxes(-1, -2)) * scale
    weights = masked_softmax(scores, mask, axis=-1)
    attended = (weights @ v).transpose(0, 2, 1, 3).reshape(batch, length, dim)
    return linear(attended, _take(params, f"{prefix}out_proj.weight"),
                  _take(params, f"{prefix}out_proj.bias"))


def transformer_encoder(x: np.ndarray, valid_mask: np.ndarray | None,
                        params: dict[str, np.ndarray], prefix: str,
                        num_layers: int, num_heads: int,
                        causal: bool = True) -> np.ndarray:
    """Pre-LN encoder stack (mirrors ``nn.transformer.TransformerEncoder``)."""
    mask = build_attention_mask(valid_mask, x.shape[1], causal=causal)
    for layer in range(num_layers):
        base = f"{prefix}layers.{layer}."
        normed = layer_norm(x, _take(params, f"{base}attn_norm.gamma"),
                            _take(params, f"{base}attn_norm.beta"))
        x = x + multi_head_attention(normed, mask, params, f"{base}attn.",
                                     num_heads)
        normed = layer_norm(x, _take(params, f"{base}ffn_norm.gamma"),
                            _take(params, f"{base}ffn_norm.beta"))
        hidden = gelu(linear(normed, _take(params, f"{base}ffn.fc1.weight"),
                             _take(params, f"{base}ffn.fc1.bias")))
        x = x + linear(hidden, _take(params, f"{base}ffn.fc2.weight"),
                       _take(params, f"{base}ffn.fc2.bias"))
    return layer_norm(x, _take(params, f"{prefix}final_norm.gamma"),
                      _take(params, f"{prefix}final_norm.beta"))


def interest_readout(per_interest: np.ndarray, score_mode: str = "max",
                     score_pow: float = 1.0) -> np.ndarray:
    """Collapse ``(..., K, C)`` per-interest scores to ``(..., C)`` (mirrors
    ``SequentialRecommender.interest_readout``)."""
    if score_mode == "max":
        return per_interest.max(axis=-2)
    if score_mode == "softmax":
        weights = softmax(per_interest * np.asarray(score_pow,
                                                    dtype=per_interest.dtype),
                          axis=-2)
        return (weights * per_interest).sum(axis=-2)
    raise ValueError(f"unknown score_mode {score_mode!r}")


def pq_adc_scores(luts: np.ndarray, codes: np.ndarray,
                  out: np.ndarray | None = None) -> np.ndarray:
    """Asymmetric-distance (ADC) scores from PQ lookup tables.

    ``luts`` is ``(K, m, ksub)`` — for each of ``K`` queries, the inner
    product of the query's ``m`` sub-vectors with every sub-codebook entry.
    ``codes`` is ``(N, m)`` uint8.  The score of item ``n`` under query ``k``
    is the sum over subspaces of ``luts[k, sub, codes[n, sub]]`` — one table
    gather per subspace, never decoding the codes back to floats.
    """
    num_queries, m, _ = luts.shape
    num_codes = codes.shape[0]
    if out is None:
        out = np.zeros((num_queries, num_codes), dtype=luts.dtype)
    else:
        out[:] = 0
    for sub in range(m):
        out += luts[:, sub, codes[:, sub]]
    return out
