"""Micro-batching request engine.

Single-request model inference wastes the substrate's batch parallelism: a
``(1, L)`` transformer forward costs nearly as much as a ``(16, L)`` one.
:class:`MicroBatcher` sits between callers and the encoder: concurrent
``submit`` calls enqueue; a worker thread flushes the queue as one batch when
either ``max_batch`` requests are waiting (size trigger) or the oldest
request has waited ``max_wait_ms`` (latency trigger).  Callers block until
their result is ready, so the surface stays synchronous.

The clock is injectable; an ``on_flush`` hook reports batch sizes and
per-request queue delays (wired to serving metrics).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

__all__ = ["MicroBatcher"]


class _Pending:
    __slots__ = ("payload", "done", "result", "error", "enqueued_at")

    def __init__(self, payload, enqueued_at: float):
        self.payload = payload
        self.done = threading.Event()
        self.result = None
        self.error: BaseException | None = None
        self.enqueued_at = enqueued_at


class MicroBatcher:
    """Collects concurrent requests and processes them in micro-batches.

    Args:
        process: ``process(payloads) -> results`` called on the worker thread
            with 1..max_batch payloads; must return one result per payload.
        max_batch: flush as soon as this many requests are queued.
        max_wait_ms: flush when the oldest queued request is this old, even
            if the batch is not full.
        clock: monotonic time source (injectable for tests).
        on_flush: optional ``on_flush(batch_size, queue_delays)`` observer.
    """

    def __init__(self, process: Callable[[Sequence], Sequence],
                 max_batch: int = 32, max_wait_ms: float = 5.0,
                 clock: Callable[[], float] = time.monotonic,
                 on_flush: Callable[[int, list[float]], None] | None = None):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self._process = process
        self.max_batch = max_batch
        self.max_wait = max_wait_ms / 1000.0
        self._clock = clock
        self._on_flush = on_flush
        self._queue: list[_Pending] = []
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-batcher")
        self._worker.start()

    # ------------------------------------------------------------------
    # caller side
    # ------------------------------------------------------------------
    def submit(self, payload, timeout: float | None = 30.0):
        """Enqueue one request and block until its batch is processed.

        Raises the processing exception if the batch failed, and
        ``TimeoutError`` if no flush happened within ``timeout`` seconds.
        """
        with self._wake:
            if self._closed:
                raise RuntimeError("batcher is closed")
            pending = _Pending(payload, self._clock())
            self._queue.append(pending)
            self._wake.notify_all()
        if not pending.done.wait(timeout):
            raise TimeoutError("micro-batch was not processed in time")
        if pending.error is not None:
            raise pending.error
        return pending.result

    def close(self) -> None:
        """Flush remaining requests and stop the worker thread."""
        with self._wake:
            if self._closed:
                return
            self._closed = True
            self._wake.notify_all()
        self._worker.join(timeout=10.0)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _take_batch(self) -> list[_Pending] | None:
        """Block until a batch is due (size or age trigger) or shutdown."""
        with self._wake:
            while True:
                if self._queue:
                    if self._closed or len(self._queue) >= self.max_batch:
                        break
                    oldest = self._queue[0].enqueued_at
                    remaining = oldest + self.max_wait - self._clock()
                    if remaining <= 0:
                        break
                    self._wake.wait(remaining)
                elif self._closed:
                    return None
                else:
                    self._wake.wait()
            batch = self._queue[:self.max_batch]
            del self._queue[:len(batch)]
            return batch

    def _run(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            started = self._clock()
            delays = [started - p.enqueued_at for p in batch]
            try:
                results = self._process([p.payload for p in batch])
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"process returned {len(results)} results for "
                        f"{len(batch)} payloads")
                for pending, result in zip(batch, results):
                    pending.result = result
            except BaseException as error:  # noqa: BLE001 - forwarded to callers
                for pending in batch:
                    pending.error = error
            finally:
                for pending in batch:
                    pending.done.set()
            if self._on_flush is not None:
                try:
                    self._on_flush(len(batch), delays)
                except Exception:  # pragma: no cover - observer must not kill serving
                    pass
