"""Serving observability: latency histograms, throughput and cache counters.

Mirrors the spirit of :mod:`repro.perf` — cheap enough to stay always-on,
with a ``report()`` table in the profiler's style — but aimed at the request
path: per-stage latency histograms (queue / encode / retrieve / rank and
end-to-end), QPS since start, micro-batch occupancy, cache hit rate, and the
approximate index's measured recall against the exact backend.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

__all__ = ["LatencyHistogram", "ServingMetrics", "STAGES"]

STAGES = ("queue", "encode", "retrieve", "rank", "total")


class LatencyHistogram:
    """Log-bucketed latency accumulator with percentile estimates.

    Buckets are geometric (factor 2) from 1 µs to ~64 s; a recorded value
    lands in the first bucket whose upper bound contains it.  Percentiles
    interpolate within the winning bucket, so they are estimates with
    bounded relative error (a factor-2 bucket bounds the error at 2×),
    while ``count`` / ``mean`` / ``max`` are exact.
    """

    _BOUNDS = 1e-6 * np.power(2.0, np.arange(27))  # 1 µs .. ~67 s

    def __init__(self):
        self._counts = np.zeros(len(self._BOUNDS) + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Add one observation (in seconds)."""
        bucket = int(np.searchsorted(self._BOUNDS, seconds, side="left"))
        self._counts[bucket] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile in seconds (0 when empty)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = np.cumsum(self._counts)
        bucket = int(np.searchsorted(cumulative, rank, side="left"))
        upper = self._BOUNDS[bucket] if bucket < len(self._BOUNDS) else self.max
        lower = self._BOUNDS[bucket - 1] if bucket > 0 else 0.0
        previous = cumulative[bucket - 1] if bucket > 0 else 0
        in_bucket = self._counts[bucket]
        fraction = (rank - previous) / in_bucket if in_bucket else 1.0
        return min(lower + fraction * (upper - lower), self.max or upper)

    def snapshot(self) -> dict:
        """Summary dict (milliseconds for human-facing fields)."""
        return {
            "count": self.count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.percentile(50.0) * 1e3,
            "p99_ms": self.percentile(99.0) * 1e3,
            "max_ms": self.max * 1e3,
        }


class ServingMetrics:
    """Aggregated counters for one :class:`~repro.serve.service.RecommenderService`."""

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self.started_at = clock()
        self.stages = {stage: LatencyHistogram() for stage in STAGES}
        self.requests = 0
        self.errors = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_size = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.recall_sum = 0.0
        self.recall_count = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_stage(self, stage: str, seconds: float) -> None:
        """Add one latency observation to a stage histogram."""
        self.stages[stage].record(seconds)

    def record_request(self, total_seconds: float) -> None:
        """Count one completed request with its end-to-end latency."""
        self.requests += 1
        self.stages["total"].record(total_seconds)

    def record_error(self) -> None:
        self.errors += 1

    def record_batch(self, size: int, queue_delays: list[float]) -> None:
        """Count one micro-batch flush and its per-request queue delays."""
        self.batches += 1
        self.batched_requests += size
        if size > self.max_batch_size:
            self.max_batch_size = size
        for delay in queue_delays:
            self.stages["queue"].record(delay)

    def record_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def record_recall(self, recall: float) -> None:
        """Add one recall@k sample of the approximate index vs exact."""
        self.recall_sum += recall
        self.recall_count += 1

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return max(self._clock() - self.started_at, 1e-9)

    def qps(self) -> float:
        """Completed requests per second since construction."""
        return self.requests / self.elapsed()

    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def mean_recall(self) -> float:
        return self.recall_sum / self.recall_count if self.recall_count else float("nan")

    def snapshot(self) -> dict:
        """One JSON-serializable view of every counter and histogram."""
        return {
            "uptime_seconds": self.elapsed(),
            "requests": self.requests,
            "errors": self.errors,
            "qps": self.qps(),
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size(),
            "max_batch_size": self.max_batch_size,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate(),
            },
            "recall": {
                "samples": self.recall_count,
                "mean": self.mean_recall() if self.recall_count else None,
            },
            "stages": {stage: hist.snapshot()
                       for stage, hist in self.stages.items()},
        }

    def report(self) -> str:
        """Human-readable table in the :mod:`repro.perf` profiler style."""
        from repro.utils import format_table

        rows = []
        for stage in STAGES:
            hist = self.stages[stage]
            rows.append([
                stage, hist.count, f"{hist.mean * 1e3:.3f}",
                f"{hist.percentile(50.0) * 1e3:.3f}",
                f"{hist.percentile(99.0) * 1e3:.3f}",
                f"{hist.max * 1e3:.3f}",
            ])
        table = format_table(["stage", "count", "mean ms", "p50 ms",
                              "p99 ms", "max ms"], rows)
        recall = (f", recall@k {self.mean_recall():.3f} "
                  f"({self.recall_count} probes)") if self.recall_count else ""
        return (f"{table}\n"
                f"qps {self.qps():.1f} over {self.elapsed():.1f}s, "
                f"{self.requests} requests, {self.batches} batches "
                f"(mean size {self.mean_batch_size():.1f}), "
                f"cache hit-rate {self.cache_hit_rate():.2f}{recall}")
