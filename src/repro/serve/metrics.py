"""Serving observability: latency histograms, throughput and cache counters.

Built on the shared :mod:`repro.obs.metrics` substrate — the per-stage
latency histograms are :class:`repro.obs.metrics.Histogram` instances and
every counter lives in a :class:`repro.obs.metrics.MetricsRegistry`, so a
serving process exposes one coherent namespace (``serve.*``) to the
telemetry exporters.  The surface stays the same as ever: cheap enough to
be always-on, with a ``report()`` table in the profiler's style covering
per-stage latency (queue / encode / retrieve / rank and end-to-end), QPS
since start, micro-batch occupancy, cache hit rate, and the approximate
index's measured recall against the exact backend.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.names import serve_latency_stage

__all__ = ["LatencyHistogram", "ServingMetrics", "STAGES"]

STAGES = ("queue", "encode", "retrieve", "rank", "total")


class LatencyHistogram(Histogram):
    """Log-bucketed latency accumulator with millisecond-facing snapshots.

    The bucketing, exact aggregates and percentile estimation come from
    :class:`repro.obs.metrics.Histogram` (geometric factor-2 buckets from
    1 µs to ~67 s); this subclass only fixes the human-facing unit to
    milliseconds.
    """

    def snapshot(self) -> dict:
        """Summary dict (milliseconds for human-facing fields)."""
        return {
            "count": self.count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.percentile(50.0) * 1e3,
            "p90_ms": self.percentile(90.0) * 1e3,
            "p99_ms": self.percentile(99.0) * 1e3,
            "max_ms": self.max * 1e3,
            "state": self.state(),
        }


class ServingMetrics:
    """Aggregated counters for one :class:`~repro.serve.service.RecommenderService`.

    Args:
        clock: monotonic time source (injectable for tests).
        registry: metrics registry to register into.  Defaults to a private
            registry so concurrent services never share counters; pass
            :func:`repro.obs.get_registry` to publish into the process-wide
            namespace (the serving CLI does this when telemetry is on).
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 registry: MetricsRegistry | None = None):
        self._clock = clock
        self.started_at = clock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stages = {
            stage: self.registry.histogram(serve_latency_stage(stage),
                                           cls=LatencyHistogram)
            for stage in STAGES
        }
        self._requests = self.registry.counter("serve.requests")
        self._errors = self.registry.counter("serve.errors")
        self._batches = self.registry.counter("serve.batches")
        self._batched_requests = self.registry.counter("serve.batched_requests")
        self._max_batch_size = self.registry.gauge("serve.max_batch_size")
        self._cache_hits = self.registry.counter("serve.cache.hits")
        self._cache_misses = self.registry.counter("serve.cache.misses")
        self._cache_stampedes = self.registry.counter(
            "serve.cache.stampede_suppressed")
        self._recall_sum = self.registry.gauge("serve.recall.sum")
        self._recall_count = self.registry.counter("serve.recall.samples")
        self._index_scan = self.registry.histogram("serve.index.scan_seconds",
                                                   cls=LatencyHistogram)
        self._index_refine = self.registry.histogram(
            "serve.index.refine_seconds", cls=LatencyHistogram)
        self._index_candidates = self.registry.counter("serve.index.candidates")
        self._index_refined = self.registry.counter("serve.index.refined")
        self._index_prebuilt_loads = self.registry.counter(
            "serve.index.prebuilt_loads")

    # ------------------------------------------------------------------
    # registry-backed views (kept as attributes of the historic API)
    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        """Completed requests since construction."""
        return self._requests.value

    @property
    def errors(self) -> int:
        """Requests rejected or failed."""
        return self._errors.value

    @property
    def batches(self) -> int:
        """Micro-batch flushes."""
        return self._batches.value

    @property
    def batched_requests(self) -> int:
        """Requests that went through a micro-batch flush."""
        return self._batched_requests.value

    @property
    def max_batch_size(self) -> int:
        """Largest micro-batch seen."""
        return int(self._max_batch_size.value)

    @property
    def cache_hits(self) -> int:
        """Interest-cache hits."""
        return self._cache_hits.value

    @property
    def cache_misses(self) -> int:
        """Interest-cache misses."""
        return self._cache_misses.value

    @property
    def stampedes_suppressed(self) -> int:
        """Duplicate concurrent encodes avoided by single-flight claims."""
        return self._cache_stampedes.value

    @property
    def recall_sum(self) -> float:
        """Sum of sampled recall@k probes."""
        return self._recall_sum.value

    @property
    def recall_count(self) -> int:
        """Number of recall probes recorded."""
        return self._recall_count.value

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_stage(self, stage: str, seconds: float) -> None:
        """Add one latency observation to a stage histogram."""
        self.stages[stage].record(seconds)

    def record_request(self, total_seconds: float) -> None:
        """Count one completed request with its end-to-end latency."""
        self._requests.inc()
        self.stages["total"].record(total_seconds)

    def record_error(self) -> None:
        """Count one failed/rejected request."""
        self._errors.inc()

    def record_batch(self, size: int, queue_delays: list[float]) -> None:
        """Count one micro-batch flush and its per-request queue delays."""
        self._batches.inc()
        self._batched_requests.inc(size)
        if size > self._max_batch_size.value:
            self._max_batch_size.set(size)
        for delay in queue_delays:
            self.stages["queue"].record(delay)

    def record_cache(self, hit: bool) -> None:
        """Count one interest-cache lookup."""
        if hit:
            self._cache_hits.inc()
        else:
            self._cache_misses.inc()

    def record_stampede_suppressed(self, count: int = 1) -> None:
        """Count encodes deduplicated by the cache's single-flight claims."""
        if count:
            self._cache_stampedes.inc(count)

    def record_recall(self, recall: float) -> None:
        """Add one recall@k sample of the approximate index vs exact."""
        self._recall_sum.add(recall)
        self._recall_count.inc()

    def record_search(self, result) -> None:
        """Record one index query's candidate count and, for quantized
        backends, its scan/refine timing split (non-quantized backends
        report zero scan/refine seconds and are only counted)."""
        self._index_candidates.inc(int(result.candidates_scored))
        if result.scan_seconds:
            self._index_scan.record(result.scan_seconds)
        if result.refined:
            self._index_refine.record(result.refine_seconds)
            self._index_refined.inc(int(result.refined))

    def record_prebuilt_load(self) -> None:
        """Count one index attach from a serialized artifact structure."""
        self._index_prebuilt_loads.inc()

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since construction (floored away from zero)."""
        return max(self._clock() - self.started_at, 1e-9)

    def qps(self) -> float:
        """Completed requests per second since construction."""
        return self.requests / self.elapsed()

    def cache_hit_rate(self) -> float:
        """Fraction of interest-cache lookups that hit (0 when none)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def mean_batch_size(self) -> float:
        """Average micro-batch occupancy (0 when no batch flushed)."""
        return self.batched_requests / self.batches if self.batches else 0.0

    def mean_recall(self) -> float:
        """Mean sampled recall@k (NaN when never probed)."""
        return self.recall_sum / self.recall_count if self.recall_count else float("nan")

    def snapshot(self) -> dict:
        """One JSON-serializable view of every counter and histogram."""
        return {
            "uptime_seconds": self.elapsed(),
            "requests": self.requests,
            "errors": self.errors,
            "qps": self.qps(),
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size(),
            "max_batch_size": self.max_batch_size,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate(),
                "stampede_suppressed": self.stampedes_suppressed,
            },
            "recall": {
                "samples": self.recall_count,
                "mean": self.mean_recall() if self.recall_count else None,
            },
            "search": {
                "candidates_scored": self._index_candidates.value,
                "refined": self._index_refined.value,
                "prebuilt_loads": self._index_prebuilt_loads.value,
                "scan": self._index_scan.snapshot(),
                "refine": self._index_refine.snapshot(),
            },
            "stages": {stage: hist.snapshot()
                       for stage, hist in self.stages.items()},
        }

    def report(self) -> str:
        """Human-readable table in the :mod:`repro.perf` profiler style."""
        from repro.utils import format_table

        rows = []
        for stage in STAGES:
            hist = self.stages[stage]
            rows.append([
                stage, hist.count, f"{hist.mean * 1e3:.3f}",
                f"{hist.percentile(50.0) * 1e3:.3f}",
                f"{hist.percentile(99.0) * 1e3:.3f}",
                f"{hist.max * 1e3:.3f}",
            ])
        table = format_table(["stage", "count", "mean ms", "p50 ms",
                              "p99 ms", "max ms"], rows)
        recall = (f", recall@k {self.mean_recall():.3f} "
                  f"({self.recall_count} probes)") if self.recall_count else ""
        return (f"{table}\n"
                f"qps {self.qps():.1f} over {self.elapsed():.1f}s, "
                f"{self.requests} requests, {self.batches} batches "
                f"(mean size {self.mean_batch_size():.1f}), "
                f"cache hit-rate {self.cache_hit_rate():.2f}{recall}")
