"""Network serving tier: NDJSON front-end, replica sharding, load generator.

This module turns the in-process :class:`~repro.serve.service.RecommenderService`
into a network service without changing a single scoring code path — the
acceptance bar is *parity through a real socket*: a recommend answered over
TCP is byte-for-byte the answer ``RecommenderService.recommend`` gives for
the same artifact and request.

Three layers:

* :class:`NetServer` — an asyncio TCP front-end speaking newline-delimited
  JSON with the exact request schema of the CLI's stdin loop (``op`` ∈
  recommend / append / stats / report, plus ``quit`` to close a
  connection).  Connections get per-read timeouts (slow or silent peers are
  dropped, never accumulated), the number of in-flight requests is bounded
  with *explicit load shedding* — an over-limit request is answered
  immediately with ``{"ok": false, "shed": true}`` instead of queueing
  without bound — and ``SIGTERM``/``SIGINT`` trigger a graceful drain:
  stop accepting, finish what is executing, exit.
* :class:`LocalBackend` / :class:`ReplicaSet` — the execution substrate
  behind the front-end.  ``LocalBackend`` wraps one in-process service (its
  micro-batcher aggregates the executor threads' concurrent submits).
  ``ReplicaSet`` forks N single-worker
  :class:`~repro.data.pipeline.WorkerPool` replicas, each holding the full
  frozen artifact; requests route by user hash so one user's appends and
  recommends land on the same replica, per-replica front-side
  :class:`~repro.serve.batcher.MicroBatcher` instances coalesce concurrent
  recommends into one cross-process task, and batches ride a per-replica
  :class:`~repro.data.shm.ShmArena` in both directions.  A replica death is
  noticed by the pool heartbeat (or its collector), every in-flight request
  on it fails fast (``ReplicaUnavailable`` — never a hang), the request is
  retried once on the survivor set, and a supervisor respawns the replica
  from the same artifact snapshot.
* :class:`NetClient` and :func:`run_load` — a blocking NDJSON client and a
  closed-loop load generator (K persistent connections pacing a target
  aggregate QPS, warmup excluded from the measured window) used by the
  parity tests, the serve smoke and ``benchmarks/bench_p7_net.py``.

Failure semantics in replica mode: appends are applied on the routed
replica only, and a respawned replica restarts from the artifact-seeded
history — appends accepted by a replica that later dies are lost.  That is
the documented trade for never blocking the serving path on cross-replica
replication.

``BLOCKING-IO-CONTAINMENT`` (see :mod:`repro.lint`) pins every raw socket
and blocking ``recv``/``sendall`` in the tree to this module, so the async
front-end can never silently grow a blocking call outside the executor.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.data.pipeline import WorkerError, WorkerPool
from repro.data.shm import ShmArena
from repro.obs import (current_context, get_logger, get_telemetry, span,
                       watched_lock)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceContext

from .artifact import InferenceArtifact, load_artifact
from .batcher import MicroBatcher
from .history import HistoryStore
from .service import RecommenderService

__all__ = [
    "LoadReport",
    "LocalBackend",
    "NetClient",
    "NetServer",
    "ReplicaSet",
    "ReplicaUnavailable",
    "build_backend",
    "normalize_request",
    "run_load",
]

_log = get_logger(__name__)


class ReplicaUnavailable(RuntimeError):
    """A replica died (or timed out) with the request in flight.

    Raised to fail fast instead of hanging; the :class:`ReplicaSet` retries
    the request once on the survivor set before letting it escape to the
    client as an explicit error response.
    """


# ----------------------------------------------------------------------
# Request schema (shared with the CLI stdin loop)
# ----------------------------------------------------------------------

def normalize_request(request: dict, default_k: int = 10) -> dict:
    """Validate one decoded request into a canonical op dict.

    Mirrors the CLI stdin loop's schema exactly; raises ``KeyError`` /
    ``ValueError`` / ``TypeError`` for malformed requests (the server turns
    those into ``{"ok": false}`` responses).
    """
    op = request.get("op", "recommend")
    if op == "recommend":
        return {"op": "recommend", "user": int(request["user"]),
                "k": int(request.get("k", default_k))}
    if op == "append":
        timestamp = request.get("timestamp")
        return {"op": "append", "user": int(request["user"]),
                "item": int(request["item"]),
                "behavior": str(request["behavior"]),
                "timestamp": None if timestamp is None else int(timestamp)}
    if op in ("stats", "report"):
        return {"op": op}
    raise ValueError(f"unknown op {op!r} (expected recommend/append/stats/report)")


def _recommend_response(user: int, items: Sequence[int],
                        scores: Sequence[float]) -> dict:
    return {"ok": True, "user": int(user),
            "items": [int(item) for item in items],
            "scores": [float(score) for score in scores]}


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------

class LocalBackend:
    """One in-process service behind the front-end (``--replicas 0``).

    The executor threads' concurrent :meth:`process` calls all funnel into
    the service's existing micro-batcher, so network concurrency turns into
    batched encodes exactly like in-process concurrency does.
    """

    kind = "local"

    def __init__(self, service: RecommenderService):
        self.service = service

    def process(self, op: dict) -> dict:
        """Execute one normalized op; raises the service's validation
        errors (the server formats them)."""
        if op["op"] == "recommend":
            recs = self.service.recommend(op["user"], k=op["k"])
            return _recommend_response(op["user"], [r.item for r in recs],
                                       [r.score for r in recs])
        if op["op"] == "append":
            version = self.service.append_event(
                op["user"], op["item"], op["behavior"],
                timestamp=op["timestamp"])
            return {"ok": True, "user": op["user"], "version": version}
        if op["op"] == "stats":
            return {"ok": True, "stats": self.service.stats()}
        if op["op"] == "report":
            return {"ok": True, "report": self.service.report()}
        raise ValueError(f"unknown op {op['op']!r}")

    def stats(self) -> dict:
        return self.service.stats()

    def report(self) -> str:
        return self.service.report()

    def close(self) -> None:
        self.service.close()


def _emit_replica_request_span(telemetry, context, user: int,
                               batch_size: int, seconds: float) -> None:
    """Record one per-request ``replica.request`` span under a remote parent.

    A whole micro-batch crosses the process boundary as one task, so the
    batched ``serve.*`` spans can only hang from one request's trace.  Every
    request in the batch additionally gets this explicit span — emitted with
    the request's own ``(trace_id, span_id, request_id)`` parentage so each
    front-end ``net.request`` tree reaches into the replica that served it.
    """
    parent = TraceContext.unpack(context)
    fields = dict(name="replica.request",
                  span_id=telemetry.next_span_id(),
                  parent_id=parent.span_id, trace_id=parent.trace_id,
                  start=time.perf_counter() - seconds, seconds=seconds,
                  attrs={"user": int(user), "batch": int(batch_size)},
                  thread=threading.current_thread().name)
    if parent.request_id is not None:
        fields["request_id"] = parent.request_id
    telemetry.emit("span", **fields)


def _replica_factory(artifact: InferenceArtifact, history: HistoryStore,
                     options: dict) -> Callable[[dict], object]:
    """Worker-side entry point: build a full service, serve op batches.

    Runs inside the forked replica process.  Results use compact markers —
    ``("rec", items_ndarray, scores_list)`` per recommend (the ndarray rides
    the shm arena), ``("ok", payload)`` for the rest, ``("err", type, msg)``
    for per-request failures — so one bad request never fails its batch.

    The service publishes its metrics into the replica's relay registry when
    fleet telemetry is on (see :func:`repro.obs.enable_worker_telemetry`, which
    the pool installed before this factory ran), so per-replica ``serve.*``
    counters land in the spool's final snapshot and merge into the fleet view.

    A directory-format artifact is **re-attached from disk** here rather than
    used through the fork-inherited reference: the fresh ``mmap_mode="r"``
    load gives this replica file-backed, page-cache-shared array pages (N
    replicas, one physical copy) and — with prebuilt index structures in the
    bundle — makes respawn O(mmap) instead of re-running k-means / graph
    insertion.  If the bundle vanished from disk the inherited copy still
    works, so a crash-respawn never fails on a moved artifact.
    """
    options = dict(options)
    telemetry = get_telemetry()
    if telemetry is not None:
        options.setdefault("registry", telemetry.registry)
    if artifact.fmt == "dir" and artifact.source:
        try:
            artifact = load_artifact(artifact.source)
        except (OSError, ValueError) as error:
            get_logger("repro.serve.net").warning(
                "replica could not re-attach artifact bundle %s (%s); "
                "serving from the fork-inherited copy", artifact.source, error)
    service = RecommenderService(artifact, history, **options)

    def handle(task: dict):
        kind = task["kind"]
        if kind == "recommend":
            users = [int(user) for user in task["users"]]
            ks = [int(k) for k in task["ks"]]
            contexts = task.get("contexts") or [None] * len(users)
            results: list = [None] * len(users)
            pairs: list[tuple[int, int]] = []
            valid: list[int] = []
            for idx, (user, k) in enumerate(zip(users, ks)):
                if k < 1:
                    results[idx] = ("err", "ValueError", "k must be positive")
                elif not service.history.has_user(user):
                    results[idx] = ("err", "KeyError",
                                    f"user {user} not in the history store")
                else:
                    valid.append(idx)
                    pairs.append((user, k))
            if pairs:
                started = time.perf_counter()
                ranked = service.recommend_pairs(pairs)
                elapsed = time.perf_counter() - started
                telemetry = get_telemetry()
                for idx, recs in zip(valid, ranked):
                    items = np.fromiter((r.item for r in recs),
                                        dtype=np.int64, count=len(recs))
                    scores = [r.score for r in recs]
                    results[idx] = ("rec", items, scores)
                    if telemetry is not None and contexts[idx] is not None:
                        _emit_replica_request_span(
                            telemetry, contexts[idx], users[idx],
                            len(pairs), elapsed)
            return results
        if kind == "append":
            try:
                version = service.append_event(
                    task["user"], task["item"], task["behavior"],
                    timestamp=task["timestamp"])
            except (KeyError, ValueError, TypeError) as error:
                return ("err", type(error).__name__, str(error))
            return ("ok", {"user": task["user"], "version": version})
        if kind == "stats":
            return ("ok", service.stats())
        if kind == "report":
            return ("ok", service.report())
        raise ValueError(f"unknown replica task kind {kind!r}")

    return handle


class _Ticket:
    """One in-flight cross-process task awaited by a front-end thread."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class _Replica:
    """Front-end handle for one forked replica process.

    Owns the single-worker pool, its shm arena, a collector thread matching
    pool results back to tickets, and the per-replica micro-batcher that
    coalesces concurrent recommends into one cross-process task.
    """

    def __init__(self, replica_id: int, artifact: InferenceArtifact,
                 history: HistoryStore, service_options: dict,
                 max_batch: int, max_wait_ms: float, pool_timeout: float,
                 arena_slot_bytes: int,
                 registry: MetricsRegistry | None = None):
        self.id = replica_id
        self.generation = 0
        registry = registry if registry is not None else MetricsRegistry()
        self._replica_seconds = registry.histogram(
            "net.request.replica_seconds")
        self._batch_wait = registry.histogram(
            "net.request.batch_wait_seconds")
        self.alive = False
        self._artifact = artifact
        self._history = history
        self._service_options = service_options
        self._pool_timeout = pool_timeout
        self._arena_slot_bytes = arena_slot_bytes
        self._lock = watched_lock("serve.net.replica")
        self._pending: dict[int, _Ticket] = {}
        self._task_ids = itertools.count()
        self._closing = False
        self.pool: WorkerPool | None = None
        self.arena: ShmArena | None = None
        self._collector: threading.Thread | None = None
        self._spawn()
        self.batcher = MicroBatcher(self._flush_recommends,
                                    max_batch=max_batch,
                                    max_wait_ms=max_wait_ms,
                                    on_flush=self._record_batch)

    # -- lifecycle -------------------------------------------------------
    def _spawn(self) -> None:
        """Fork a fresh worker process (initial start and respawn)."""
        self.arena = ShmArena(slot_bytes=self._arena_slot_bytes, num_slots=8)
        try:
            self.pool = WorkerPool(
                _replica_factory,
                initargs=(self._artifact, self._history,
                          self._service_options),
                num_workers=1, timeout=self._pool_timeout,
                transport=self.arena, transport_copy=True,
                transport_requests=True, transport_min_bytes=64,
                process_role=f"replica{self.id}",
                generation=self.generation)
        except BaseException:
            # A failed fork must not strand the arena segment it was
            # about to adopt (respawn would replace, not close, it).
            self.arena.close()
            self.arena = None
            raise
        pool = self.pool
        self._collector = threading.Thread(
            target=self._collect, args=(pool,), daemon=True,
            name=f"repro-replica-{self.id}-collector")
        with self._lock:
            self.alive = True
        self._collector.start()

    def respawn(self) -> None:
        """Replace a dead worker with a fresh fork of the same artifact."""
        old_arena = self.arena
        self.generation += 1
        self._spawn()
        if old_arena is not None:
            old_arena.close()
        _log.info("replica %d respawned (generation %d)",
                  self.id, self.generation)

    def close(self) -> None:
        """Drain the batcher, stop the worker, join the collector."""
        self._closing = True
        self.batcher.close()
        with self._lock:
            self.alive = False
        if self.pool is not None:
            self.pool.close()
        if self._collector is not None:
            self._collector.join(timeout=10.0)
        self._fail_pending(ReplicaUnavailable(
            f"replica {self.id} shut down"))
        if self.arena is not None:
            self.arena.close()

    # -- result collection ----------------------------------------------
    def _collect(self, pool: WorkerPool) -> None:
        while True:
            try:
                _, task_id, value = pool.next_result()
            except WorkerError as error:
                with self._lock:
                    self.alive = False
                if not self._closing:
                    _log.warning("replica %d died: %s", self.id,
                                 str(error).splitlines()[0])
                self._fail_pending(ReplicaUnavailable(
                    f"replica {self.id} died with the request in flight"))
                return
            except (OSError, ValueError, EOFError):
                # queues closed under us: normal shutdown path
                with self._lock:
                    self.alive = False
                self._fail_pending(ReplicaUnavailable(
                    f"replica {self.id} shut down"))
                return
            with self._lock:
                ticket = self._pending.pop(task_id, None)
            if ticket is not None:
                ticket.value = value
                ticket.event.set()

    def _fail_pending(self, error: ReplicaUnavailable) -> None:
        with self._lock:
            tickets = list(self._pending.values())
            self._pending.clear()
        for ticket in tickets:
            ticket.error = error
            ticket.event.set()

    # -- calling ---------------------------------------------------------
    def call(self, task: dict, timeout: float | None = None, context=None):
        """Ship one task to the replica and block for its result.

        ``context`` is an optional packed trace context forwarded with the
        task (the batcher's flush thread has no span stack of its own, so
        the front-end captures the context where the request executes).

        Raises :class:`ReplicaUnavailable` when the replica is dead, dies
        mid-flight, or the result does not arrive in time — the caller
        (ReplicaSet) decides whether to retry on a survivor.
        """
        if timeout is None:
            timeout = self._pool_timeout + 10.0
        with self._lock:
            if not self.alive:
                raise ReplicaUnavailable(f"replica {self.id} is down")
            task_id = next(self._task_ids)
            ticket = _Ticket()
            self._pending[task_id] = ticket
            pool = self.pool
        started = time.perf_counter()
        try:
            pool.submit(task_id, task, context=context)
        except (RuntimeError, OSError, ValueError) as error:
            with self._lock:
                self._pending.pop(task_id, None)
            raise ReplicaUnavailable(
                f"replica {self.id} rejected the task: {error}") from error
        if not ticket.event.wait(timeout):
            with self._lock:
                self._pending.pop(task_id, None)
            raise ReplicaUnavailable(
                f"replica {self.id} gave no result within {timeout:.0f}s")
        if ticket.error is not None:
            raise ticket.error
        self._replica_seconds.record(time.perf_counter() - started)
        return ticket.value

    def _record_batch(self, size: int, delays: list[float]) -> None:
        """Micro-batcher flush observer: per-request queue-wait histogram."""
        for delay in delays:
            self._batch_wait.record(delay)

    def _flush_recommends(self, ops: Sequence[dict]) -> list[dict]:
        """Micro-batch flush: one cross-process task for the whole batch.

        Trace contexts the front-end attached to the ops ride along — the
        first one parents the replica's ``worker.task``/``serve.*`` spans,
        and the full per-op list lets the replica emit one
        ``replica.request`` span per correlated request in the batch.
        """
        task = {
            "kind": "recommend",
            "users": np.fromiter((op["user"] for op in ops),
                                 dtype=np.int64, count=len(ops)),
            "ks": np.fromiter((op["k"] for op in ops),
                              dtype=np.int64, count=len(ops)),
        }
        contexts = [op.get("ctx") for op in ops]
        first = next((ctx for ctx in contexts if ctx is not None), None)
        if first is not None:
            task["contexts"] = contexts
        markers = self.call(task, context=first)
        return [_marker_to_response(marker, op) for marker, op in
                zip(markers, ops)]


def _marker_to_response(marker, op: dict) -> dict:
    kind = marker[0]
    if kind == "rec":
        _, items, scores = marker
        return _recommend_response(op["user"], items, scores)
    if kind == "ok":
        payload = marker[1]
        if op["op"] == "append":
            return {"ok": True, **payload}
        return {"ok": True, op["op"]: payload}
    if kind == "err":
        return {"ok": False, "error": marker[2]}
    raise ValueError(f"unknown result marker {kind!r}")


class ReplicaSet:
    """N forked single-worker replicas with user-hash routing and failover.

    Args:
        artifact / history: the frozen snapshot every replica starts from
            (fork-inherited; a respawn restarts from the same snapshot).
        replicas: replica count (at least 1).
        service_options: kwargs for each replica's
            :class:`RecommenderService` (index backend, cache bounds, ...).
        max_batch / max_wait_ms: per-replica front-side micro-batching.
        pool_timeout: per-task heartbeat for the worker pools (seconds).
        registry: metrics registry for the ``serve.net.replica.*`` counters.
        respawn_poll: supervisor poll interval for dead replicas (seconds).

    Routing: ``user`` hashes to a primary replica, so one user's appends and
    recommends stay on one replica's history copy.  When the primary is down
    the request goes to the next live replica, and a request that fails with
    :class:`ReplicaUnavailable` mid-flight is retried exactly once on the
    survivor set — after that the error is surfaced explicitly.
    """

    kind = "replicas"

    def __init__(self, artifact: InferenceArtifact, history: HistoryStore,
                 replicas: int = 2, service_options: dict | None = None,
                 max_batch: int = 32, max_wait_ms: float = 5.0,
                 pool_timeout: float | None = None,
                 registry: MetricsRegistry | None = None,
                 respawn_poll: float = 0.2,
                 arena_slot_bytes: int = 1 << 20):
        if replicas < 1:
            raise ValueError(f"need at least one replica, got {replicas}")
        if pool_timeout is None:
            pool_timeout = float(os.environ.get("REPRO_POOL_TIMEOUT", "120"))
        self.registry = registry if registry is not None else MetricsRegistry()
        self._respawns = self.registry.counter("serve.net.replica.respawns")
        self._retries = self.registry.counter("serve.net.replica.retries")
        self._deaths = self.registry.counter("serve.net.replica.deaths")
        self._closed = False
        self.replicas = [
            _Replica(i, artifact, history, dict(service_options or {}),
                     max_batch=max_batch, max_wait_ms=max_wait_ms,
                     pool_timeout=pool_timeout,
                     arena_slot_bytes=arena_slot_bytes,
                     registry=self.registry)
            for i in range(replicas)
        ]
        self._respawn_poll = respawn_poll
        self._stop = threading.Event()
        self._supervisor = threading.Thread(target=self._supervise,
                                            daemon=True,
                                            name="repro-replica-supervisor")
        self._supervisor.start()

    # -- routing ---------------------------------------------------------
    @staticmethod
    def route(user: int, num_replicas: int) -> int:
        """Primary replica for a user (Knuth multiplicative hash)."""
        return ((int(user) * 2654435761) & 0xFFFFFFFF) % num_replicas

    def _route_order(self, user: int) -> list[_Replica]:
        primary = self.route(user, len(self.replicas))
        order = [self.replicas[(primary + offset) % len(self.replicas)]
                 for offset in range(len(self.replicas))]
        live = [replica for replica in order if replica.alive]
        if not live:
            raise ReplicaUnavailable("no live replicas")
        return live

    def _with_retry(self, user: int, fn: Callable[[_Replica], dict]) -> dict:
        last: ReplicaUnavailable | None = None
        for attempt in range(2):
            try:
                candidates = self._route_order(user)
            except ReplicaUnavailable as error:
                last = error
                break
            replica = candidates[min(attempt, len(candidates) - 1)]
            try:
                return fn(replica)
            except ReplicaUnavailable as error:
                last = error
                if attempt == 0:
                    self._retries.inc()
        raise last

    # -- request surface -------------------------------------------------
    def process(self, op: dict) -> dict:
        """Execute one normalized op with routing + single retry."""
        if op["op"] == "recommend":
            return self._with_retry(
                op["user"],
                lambda replica: replica.batcher.submit(
                    op, timeout=replica._pool_timeout + 15.0))
        if op["op"] == "append":
            task = {"kind": "append", "user": op["user"], "item": op["item"],
                    "behavior": op["behavior"], "timestamp": op["timestamp"]}
            marker = self._with_retry(
                op["user"],
                lambda replica: replica.call(task, context=op.get("ctx")))
            return _marker_to_response(marker, op)
        if op["op"] == "stats":
            return {"ok": True, "stats": self.stats()}
        if op["op"] == "report":
            return {"ok": True, "report": self.report()}
        raise ValueError(f"unknown op {op['op']!r}")

    def stats(self) -> dict:
        """Per-replica service stats plus replica-set counters."""
        per_replica = []
        for replica in self.replicas:
            entry = {"replica": replica.id, "generation": replica.generation,
                     "alive": replica.alive}
            if replica.alive:
                try:
                    entry["stats"] = replica.call({"kind": "stats"})[1]
                except ReplicaUnavailable:
                    entry["alive"] = False
            per_replica.append(entry)
        return {"replicas": per_replica,
                "respawns": self._respawns.value,
                "retries": self._retries.value,
                "deaths": self._deaths.value}

    def report(self) -> str:
        parts = []
        for replica in self.replicas:
            if not replica.alive:
                parts.append(f"replica {replica.id}: down")
                continue
            try:
                text = replica.call({"kind": "report"})[1]
            except ReplicaUnavailable:
                text = "down"
            parts.append(f"replica {replica.id} "
                         f"(generation {replica.generation}):\n{text}")
        return "\n".join(parts)

    # -- supervision ------------------------------------------------------
    def _supervise(self) -> None:
        while not self._stop.wait(self._respawn_poll):
            for replica in self.replicas:
                if self._closed:
                    return
                if not replica.alive and not replica._closing:
                    self._deaths.inc()
                    try:
                        replica.respawn()
                        self._respawns.inc()
                    except Exception:  # pragma: no cover - fork failure
                        _log.exception("replica %d respawn failed", replica.id)

    def kill_replica(self, replica_id: int) -> None:
        """Chaos hook: hard-kill one replica's worker process (tests and the
        failover benchmark use this to exercise fail-fast + respawn)."""
        replica = self.replicas[replica_id]
        pool = replica.pool
        if pool is not None:
            for worker in pool._workers:
                if worker.is_alive():
                    worker.terminate()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        self._supervisor.join(timeout=10.0)
        for replica in self.replicas:
            replica.close()


def build_backend(artifact: InferenceArtifact, history: HistoryStore,
                  replicas: int = 0, service_options: dict | None = None,
                  max_batch: int = 32, max_wait_ms: float = 5.0,
                  registry: MetricsRegistry | None = None,
                  pool_timeout: float | None = None):
    """The serving backend for a replica count: 0 → in-process, N ≥ 1 →
    a :class:`ReplicaSet` of N forked workers."""
    if replicas <= 0:
        service = RecommenderService(artifact, history,
                                     max_batch=max_batch,
                                     max_wait_ms=max_wait_ms,
                                     registry=registry,
                                     **(service_options or {}))
        return LocalBackend(service)
    return ReplicaSet(artifact, history, replicas=replicas,
                      service_options=service_options, max_batch=max_batch,
                      max_wait_ms=max_wait_ms, registry=registry,
                      pool_timeout=pool_timeout)


# ----------------------------------------------------------------------
# Async TCP front-end
# ----------------------------------------------------------------------

class NetServer:
    """Newline-delimited-JSON TCP front-end over a serving backend.

    Args:
        backend: :class:`LocalBackend` or :class:`ReplicaSet` (not owned —
            the caller closes it after :meth:`stop`).
        host / port: bind address; port 0 picks a free port (read
            :attr:`address` after start).
        max_inflight: bound on concurrently executing requests across all
            connections; a request over the bound is *shed* with an explicit
            ``{"ok": false, "shed": true}`` response, never queued.
        read_timeout: per-connection seconds to wait for the next request
            line before dropping the connection.
        drain_grace: seconds a drain waits for in-flight requests.
        default_k: ``k`` for recommend requests that omit it.
        registry: metrics registry for the ``serve.net.*`` counters.
    """

    def __init__(self, backend, host: str = "127.0.0.1", port: int = 0, *,
                 max_inflight: int = 64, read_timeout: float = 30.0,
                 drain_grace: float = 10.0, default_k: int = 10,
                 registry: MetricsRegistry | None = None):
        if max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        self.backend = backend
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.read_timeout = read_timeout
        self.drain_grace = drain_grace
        self.default_k = default_k
        self.registry = registry if registry is not None else MetricsRegistry()
        self._connections = self.registry.counter("serve.net.connections")
        self._requests = self.registry.counter("serve.net.requests")
        self._shed_count = self.registry.counter("serve.net.shed")
        self._errors = self.registry.counter("serve.net.errors")
        self._read_timeouts = self.registry.counter("serve.net.read_timeouts")
        self._inflight_gauge = self.registry.gauge("serve.net.inflight")
        self._request_seconds = self.registry.histogram("net.request.seconds")
        self._dispatch_seconds = self.registry.histogram(
            "net.request.dispatch_seconds")
        # Correlates one request across front-end, batcher and replica: the
        # pid keeps ids unique across servers sharing one event spool.
        self._request_ids = itertools.count(1)
        self.address: tuple[str, int] | None = None
        self._inflight = 0
        self._draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drain_requested: asyncio.Event | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set = set()
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._thread: threading.Thread | None = None
        self._failure: BaseException | None = None

    # -- lifecycle -------------------------------------------------------
    def run(self, install_signals: bool = True) -> None:
        """Serve until drained (blocking; the CLI entry point)."""
        try:
            asyncio.run(self._main(install_signals))
        except BaseException as error:
            self._failure = error
            raise
        finally:
            self._started.set()
            self._stopped.set()

    def start_background(self, timeout: float = 30.0) -> tuple[str, int]:
        """Run the server on a daemon thread; returns the bound address."""
        self._thread = threading.Thread(
            target=self._run_quietly, daemon=True, name="repro-net-server")
        self._thread.start()
        if not self._started.wait(timeout) or self.address is None:
            raise RuntimeError(
                f"server failed to start: {self._failure or 'timeout'}")
        return self.address

    def _run_quietly(self) -> None:
        try:
            self.run(install_signals=False)
        except BaseException:  # surfaced via start_background/stop
            pass

    def drain(self) -> None:
        """Begin a graceful drain (threadsafe; signal handlers call this):
        stop accepting, finish in-flight requests, exit the serve loop."""
        self._draining = True
        loop = self._loop
        if loop is not None and self._drain_requested is not None:
            try:
                loop.call_soon_threadsafe(self._drain_requested.set)
            except RuntimeError:  # loop already closed
                pass

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the serve loop exits (drain completed); True when it
        did within ``timeout``."""
        return self._stopped.wait(timeout)

    def stop(self, timeout: float = 30.0) -> None:
        """Drain and wait for the serve loop to exit."""
        self.drain()
        if self._thread is not None:
            self._thread.join(timeout)
        else:
            self._stopped.wait(timeout)

    # -- event loop ------------------------------------------------------
    async def _main(self, install_signals: bool) -> None:
        self._loop = asyncio.get_running_loop()
        self._drain_requested = asyncio.Event()
        if self._draining:  # drain() won the race before the loop existed
            self._drain_requested.set()
        self._executor = ThreadPoolExecutor(
            max_workers=min(self.max_inflight, 64),
            thread_name_prefix="repro-net")
        server = await asyncio.start_server(self._handle_connection,
                                            self.host, self.port)
        self.address = server.sockets[0].getsockname()[:2]
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(signum, self.drain)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-main thread or unsupported platform
        self._started.set()
        _log.info("serving on %s:%d (max in-flight %d)",
                  self.address[0], self.address[1], self.max_inflight)
        try:
            await self._drain_requested.wait()
            server.close()
            await server.wait_closed()
            deadline = self._loop.time() + self.drain_grace
            while self._inflight > 0 and self._loop.time() < deadline:
                await asyncio.sleep(0.02)
            for writer in list(self._writers):
                writer.close()
            pending = [task for task in self._conn_tasks if not task.done()]
            if pending:
                await asyncio.wait(pending, timeout=2.0)
            _log.info("drained (%d requests served)", self._requests.value)
        finally:
            self._executor.shutdown(wait=False)

    async def _send(self, writer: asyncio.StreamWriter, response: dict) -> None:
        writer.write(json.dumps(response).encode("utf-8") + b"\n")
        await writer.drain()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.inc()
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while not self._draining:
                try:
                    line = await asyncio.wait_for(reader.readline(),
                                                  self.read_timeout)
                except asyncio.TimeoutError:
                    self._read_timeouts.inc()
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                text = line.strip()
                if not text:
                    continue
                try:
                    request = json.loads(text)
                except json.JSONDecodeError as error:
                    self._errors.inc()
                    await self._send(writer, {"ok": False,
                                              "error": f"bad json: {error}"})
                    continue
                if isinstance(request, dict) and request.get("op") == "quit":
                    break
                request_id = f"req-{os.getpid():x}-{next(self._request_ids)}"
                if self._inflight >= self.max_inflight:
                    self._shed_count.inc()
                    await self._send(writer, {
                        "ok": False, "shed": True,
                        "request_id": request_id,
                        "error": "overloaded: in-flight limit reached, "
                                 "retry later"})
                    continue
                try:
                    op = normalize_request(request, self.default_k)
                except (KeyError, ValueError, TypeError) as error:
                    self._errors.inc()
                    await self._send(writer, {"ok": False,
                                              "request_id": request_id,
                                              "error": str(error)})
                    continue
                self._inflight += 1
                self._inflight_gauge.set(self._inflight)
                accepted = time.monotonic()
                try:
                    response = await self._loop.run_in_executor(
                        self._executor, self._dispatch, op, request_id)
                finally:
                    self._inflight -= 1
                    self._inflight_gauge.set(self._inflight)
                self._request_seconds.record(time.monotonic() - accepted)
                self._requests.inc()
                if not response.get("ok", False):
                    self._errors.inc()
                await self._send(writer, response)
        except (ConnectionError, OSError):
            pass  # peer vanished mid-write; nothing to answer
        except asyncio.CancelledError:
            pass  # loop teardown cancelled the connection; exit quietly
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(self, op: dict, request_id: str) -> dict:
        """Execute one op on the backend (runs on an executor thread).

        With telemetry enabled the whole dispatch runs inside a
        ``net.request`` root span correlated by ``request_id``; the packed
        trace context rides on the op (``op["ctx"]``) so the replica tier —
        which executes on batcher threads and forked workers — can parent
        its spans on this one.  Error responses always carry the
        ``request_id`` so a client-visible failure is greppable in the
        fleet's event spools.
        """
        started = time.monotonic()
        if get_telemetry() is None:
            response = self._execute(op)
        else:
            with span("net.request", op=op["op"]) as net_span:
                net_span.request_id = request_id
                context = current_context(request_id=request_id)
                if context is not None:
                    op["ctx"] = context.pack()
                response = self._execute(op)
        self._dispatch_seconds.record(time.monotonic() - started)
        if not response.get("ok", False):
            response.setdefault("request_id", request_id)
        if op["op"] == "stats" and response.get("ok"):
            response["stats"]["net"] = self.net_stats()
        return response

    def _execute(self, op: dict) -> dict:
        try:
            return self.backend.process(op)
        except ReplicaUnavailable as error:
            return {"ok": False, "error": str(error), "retryable": True}
        except (KeyError, ValueError, TypeError) as error:
            return {"ok": False, "error": str(error)}

    def net_stats(self) -> dict:
        """The front-end's own counters (connections, sheds, timeouts)."""
        return {
            "connections": self._connections.value,
            "requests": self._requests.value,
            "shed": self._shed_count.value,
            "errors": self._errors.value,
            "read_timeouts": self._read_timeouts.value,
            "inflight": int(self._inflight_gauge.value),
            "draining": self._draining,
        }


# ----------------------------------------------------------------------
# Blocking client + closed-loop load generator
# ----------------------------------------------------------------------

class NetClient:
    """Blocking NDJSON client for :class:`NetServer` (one connection).

    Connection setup retries briefly so tests can race server startup.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 connect_retries: int = 40, retry_delay: float = 0.05):
        last: OSError | None = None
        for _ in range(max(1, connect_retries)):
            try:
                self._sock = socket.create_connection((host, port),
                                                      timeout=timeout)
                break
            except OSError as error:
                last = error
                time.sleep(retry_delay)
        else:
            raise ConnectionError(
                f"could not connect to {host}:{port}: {last}") from last
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict) -> dict:
        """Send one request line, block for its response line."""
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def recommend(self, user: int, k: int | None = None) -> dict:
        payload = {"op": "recommend", "user": user}
        if k is not None:
            payload["k"] = k
        return self.request(payload)

    def append(self, user: int, item: int, behavior: str,
               timestamp: int | None = None) -> dict:
        payload = {"op": "append", "user": user, "item": item,
                   "behavior": behavior}
        if timestamp is not None:
            payload["timestamp"] = timestamp
        return self.request(payload)

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def report(self) -> dict:
        return self.request({"op": "report"})

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


@dataclass
class LoadReport:
    """Aggregated closed-loop load-generation outcome.

    ``latencies_ms`` covers only the measurement window (post-warmup)
    requests that were answered ``ok``; sheds and errors are counted but
    never hidden — ``sent == ok + shed + errors`` always holds.
    """

    sent: int = 0
    ok: int = 0
    shed: int = 0
    errors: int = 0
    elapsed_s: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def achieved_qps(self) -> float:
        return self.sent / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def percentile(self, pct: float) -> float:
        """Latency percentile in milliseconds (NaN with no samples)."""
        if not self.latencies_ms:
            return float("nan")
        ordered = sorted(self.latencies_ms)
        rank = min(len(ordered) - 1,
                   max(0, int(round(pct / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def to_dict(self) -> dict:
        return {
            "sent": self.sent, "ok": self.ok, "shed": self.shed,
            "errors": self.errors, "elapsed_s": self.elapsed_s,
            "achieved_qps": self.achieved_qps,
            "samples": len(self.latencies_ms),
            "p50_ms": self.percentile(50.0),
            "p99_ms": self.percentile(99.0),
        }


def run_load(host: str, port: int, users: Sequence[int], *,
             connections: int = 4, target_qps: float = 200.0,
             total_requests: int = 400, warmup: int = 50, k: int = 10,
             seed: int = 0, timeout: float = 30.0,
             on_request: Callable[[int], None] | None = None) -> LoadReport:
    """Closed-loop load generation against a running :class:`NetServer`.

    ``connections`` persistent clients send ``total_requests`` recommend
    requests overall, paced to an aggregate ``target_qps`` (0 disables
    pacing).  The first ``warmup`` requests per run are excluded from the
    latency sample.  Every request terminates — answered, shed, or an
    explicit error — so the report's ``sent`` always reaches the target
    even under replica failure; a dropped connection reconnects once.

    ``on_request`` (optional) is invoked with the global request ordinal
    before each send — the chaos tests use it to kill a replica mid-load.
    """
    if connections < 1:
        raise ValueError("connections must be positive")
    rng = np.random.default_rng(seed)
    chosen = rng.choice(np.asarray(users, dtype=np.int64),
                        size=total_requests, replace=True)
    per_thread: list[list[int]] = [[] for _ in range(connections)]
    for ordinal, user in enumerate(chosen.tolist()):
        per_thread[ordinal % connections].append(ordinal)
    interval = connections / target_qps if target_qps > 0 else 0.0
    counter_lock = threading.Lock()
    report = LoadReport()

    def drive(thread_id: int) -> None:
        ordinals = per_thread[thread_id]
        if not ordinals:
            return
        client = NetClient(host, port, timeout=timeout)
        reconnected = False
        start = time.monotonic()
        try:
            for position, ordinal in enumerate(ordinals):
                if interval:
                    due = start + position * interval
                    delay = due - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                if on_request is not None:
                    on_request(ordinal)
                user = int(chosen[ordinal])
                sent_at = time.monotonic()
                try:
                    response = client.request(
                        {"op": "recommend", "user": user, "k": k})
                except (ConnectionError, OSError):
                    response = None
                    if not reconnected:
                        reconnected = True
                        try:
                            client.close()
                            client = NetClient(host, port, timeout=timeout)
                        except ConnectionError:
                            pass
                latency_ms = (time.monotonic() - sent_at) * 1e3
                with counter_lock:
                    report.sent += 1
                    if response is None:
                        report.errors += 1
                    elif response.get("ok"):
                        report.ok += 1
                        if ordinal >= warmup:
                            report.latencies_ms.append(latency_ms)
                    elif response.get("shed"):
                        report.shed += 1
                    else:
                        report.errors += 1
        finally:
            client.close()

    started = time.monotonic()
    threads = [threading.Thread(target=drive, args=(i,), daemon=True,
                                name=f"repro-loadgen-{i}")
               for i in range(connections)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_s = time.monotonic() - started
    return report
