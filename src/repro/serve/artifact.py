"""Frozen inference artifacts: export a trained model for online serving.

An *inference artifact* is everything the request path needs and nothing it
does not: the (hypergraph-enhanced) item table precomputed once at export
time, the sequence-encoder and interest-extraction weights, and a JSON
manifest with the schema and the inference-relevant config.  The hypergraph
transformer — the most expensive part of a MISSL forward — never runs at
serve time; its output is baked into the item table, MB-HT style.

The on-disk format reuses the ``.npz`` + ``__meta__`` convention of
:mod:`repro.nn.serialization`, so artifacts are inspectable with plain NumPy
and loadable without constructing the autodiff graph.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.schema import BehaviorSchema

__all__ = ["InferenceArtifact", "export_artifact", "load_artifact",
           "ARTIFACT_FORMAT_VERSION"]

ARTIFACT_FORMAT_VERSION = 1

_META_KEY = "__meta__"
_TABLE_KEY = "item_table"
_PARAM_PREFIX = "param/"

# Parameter sub-trees a MISSL artifact must carry.  ``item_embedding`` and
# ``hg_encoder`` are deliberately absent: their effect is frozen into the
# exported item table.
_MISSL_SERVING_PREFIXES = (
    "seq_embedding.", "encoders.", "fused_encoder.", "interest_extractor.",
    "behavior_extractors.", "fusion_gate.",
)


@dataclass(frozen=True)
class InferenceArtifact:
    """A frozen, autodiff-free snapshot of a trained recommender.

    Attributes:
        family: model family tag (``"missl"``) selecting the serving encoder.
        item_table: ``(num_items + 1, D)`` frozen item representations
            (row 0 is padding), already hypergraph-enhanced.
        params: flat name → array map of the serving-path weights.
        config: inference-relevant hyper-parameters (JSON manifest).
        behaviors / target: the behavior schema.
        num_items: item vocabulary size.
        extra: free-form provenance metadata recorded at export time
            (e.g. dataset preset / scale / seed for corpus reconstruction).
    """

    family: str
    item_table: np.ndarray
    params: dict[str, np.ndarray]
    config: dict
    behaviors: tuple[str, ...]
    target: str
    num_items: int
    extra: dict = field(default_factory=dict)

    @property
    def schema(self) -> BehaviorSchema:
        """The behavior schema reconstructed from the manifest."""
        return BehaviorSchema(behaviors=self.behaviors, target=self.target)

    @property
    def dim(self) -> int:
        return int(self.item_table.shape[1])

    @property
    def num_interests(self) -> int:
        return int(self.config["num_interests"])

    def item_vectors(self) -> np.ndarray:
        """The ``(num_items, D)`` catalog block (padding row stripped);
        row ``i`` is item ``i + 1``."""
        return self.item_table[1:]


def _serving_state(model) -> dict[str, np.ndarray]:
    state = model.state_dict()
    kept = {name: value for name, value in state.items()
            if name.startswith(_MISSL_SERVING_PREFIXES)}
    if not kept:
        raise ValueError("model exposes no serving-path parameters to export")
    return kept


def export_artifact(model, path: str | Path, extra: dict | None = None) -> Path:
    """Freeze a trained MISSL into an inference artifact at ``path``.

    Runs the hypergraph enhancement once (eval mode, no grad) to materialize
    the item table, keeps only the request-path parameter sub-trees, and
    writes a self-describing ``.npz``.  The model's train/eval mode is
    restored on exit.  Returns the written path (``.npz`` enforced).
    """
    from repro.core.model import MISSL
    from repro.nn.tensor import no_grad

    if not isinstance(model, MISSL):
        raise TypeError(
            f"artifact export currently supports MISSL models, got "
            f"{type(model).__name__}; extend repro.serve.encoder with a "
            f"family encoder to serve other models")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    was_training = bool(model.training)
    model.eval()
    with no_grad():
        table = np.array(model.item_representations().numpy(), copy=True)
    if was_training:
        model.train()

    params = _serving_state(model)
    config = dict(model.config.__dict__)
    config["active_behaviors"] = list(model.active_behaviors)
    meta = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "family": "missl",
        "config": config,
        "schema": {"behaviors": list(model.schema.behaviors),
                   "target": model.schema.target},
        "num_items": int(model.num_items),
        "parameters": sorted(params),
        "extra": extra or {},
    }
    arrays = {_PARAM_PREFIX + name: value for name, value in params.items()}
    arrays[_TABLE_KEY] = table
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path


def load_artifact(path: str | Path) -> InferenceArtifact:
    """Load an artifact written by :func:`export_artifact`.

    Pure NumPy: no model construction, no autodiff graph.  Raises
    ``ValueError`` on missing metadata or an unsupported format version.
    """
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro inference artifact "
                             f"(missing metadata)")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode())
        version = meta.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise ValueError(f"artifact format {version} unsupported "
                             f"(expected {ARTIFACT_FORMAT_VERSION})")
        if _TABLE_KEY not in archive:
            raise ValueError(f"{path} has no item table")
        table = archive[_TABLE_KEY]
        params = {name: archive[_PARAM_PREFIX + name]
                  for name in meta["parameters"]}
    return InferenceArtifact(
        family=meta["family"],
        item_table=table,
        params=params,
        config=meta["config"],
        behaviors=tuple(meta["schema"]["behaviors"]),
        target=meta["schema"]["target"],
        num_items=int(meta["num_items"]),
        extra=meta.get("extra", {}),
    )
