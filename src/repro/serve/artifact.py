"""Frozen inference artifacts: export a trained model for online serving.

An *inference artifact* is everything the request path needs and nothing it
does not: the (hypergraph-enhanced) item table precomputed once at export
time, the sequence-encoder and interest-extraction weights, and a JSON
manifest with the schema and the inference-relevant config.  The hypergraph
transformer — the most expensive part of a MISSL forward — never runs at
serve time; its output is baked into the item table, MB-HT style.

Two on-disk formats:

* ``npz`` (format_version 1, legacy) — a single compressed file reusing the
  ``.npz`` + ``__meta__`` convention of :mod:`repro.nn.serialization`.
  Compact and copyable, but every loader decompresses a private copy of
  every array.
* ``dir`` (format_version 2) — a directory bundle: ``manifest.json`` plus
  one *uncompressed* ``.npy`` per array (item table, each parameter, and
  any serialized index structures).  Arrays load with ``mmap_mode="r"``,
  so N replicas on one host share page-cache pages instead of holding N
  private copies, and prebuilt index structures (IVF centroids + lists,
  HNSW levels + adjacency, PQ/SQ codebooks + codes) re-attach in O(mmap)
  instead of re-running k-means / graph insertion at every replica spawn.

Both load through :func:`load_artifact`; both are inspectable with plain
NumPy and loadable without constructing the autodiff graph.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.schema import BehaviorSchema

from .index import SERIALIZABLE_BACKENDS, build_index

__all__ = ["InferenceArtifact", "export_artifact", "write_artifact",
           "load_artifact", "ARTIFACT_FORMAT_VERSION",
           "ARTIFACT_DIR_FORMAT_VERSION"]

ARTIFACT_FORMAT_VERSION = 1        # single-file .npz
ARTIFACT_DIR_FORMAT_VERSION = 2    # directory bundle of mmap-able .npy files

_META_KEY = "__meta__"
_TABLE_KEY = "item_table"
_PARAM_PREFIX = "param/"
_MANIFEST_NAME = "manifest.json"
_PARAMS_DIR = "params"
_INDEX_DIR = "index"

# Parameter sub-trees a MISSL artifact must carry.  ``item_embedding`` and
# ``hg_encoder`` are deliberately absent: their effect is frozen into the
# exported item table.
_MISSL_SERVING_PREFIXES = (
    "seq_embedding.", "encoders.", "fused_encoder.", "interest_extractor.",
    "behavior_extractors.", "fusion_gate.",
)


@dataclass(frozen=True)
class InferenceArtifact:
    """A frozen, autodiff-free snapshot of a trained recommender.

    Attributes:
        family: model family tag (``"missl"``) selecting the serving encoder.
        item_table: ``(num_items + 1, D)`` frozen item representations
            (row 0 is padding), already hypergraph-enhanced.
        params: flat name → array map of the serving-path weights.
        config: inference-relevant hyper-parameters (JSON manifest).
        behaviors / target: the behavior schema.
        num_items: item vocabulary size.
        extra: free-form provenance metadata recorded at export time
            (e.g. dataset preset / scale / seed for corpus reconstruction).
        fmt: on-disk format this instance came from (``"npz"`` or ``"dir"``;
            freshly exported, in-memory artifacts default to ``"npz"``).
        source: path the artifact was loaded from, if any — replicas use it
            to re-attach a ``dir`` bundle with a fresh mmap in the child.
        prebuilt: serialized index structures shipped in a ``dir`` bundle:
            backend name → ``{"meta": dict, "arrays": dict}`` as produced by
            the index ``state()`` methods.
    """

    family: str
    item_table: np.ndarray
    params: dict[str, np.ndarray]
    config: dict
    behaviors: tuple[str, ...]
    target: str
    num_items: int
    extra: dict = field(default_factory=dict)
    fmt: str = "npz"
    source: str | None = None
    prebuilt: dict = field(default_factory=dict)

    @property
    def schema(self) -> BehaviorSchema:
        """The behavior schema reconstructed from the manifest."""
        return BehaviorSchema(behaviors=self.behaviors, target=self.target)

    @property
    def dim(self) -> int:
        return int(self.item_table.shape[1])

    @property
    def num_interests(self) -> int:
        return int(self.config["num_interests"])

    def item_vectors(self) -> np.ndarray:
        """The ``(num_items, D)`` catalog block (padding row stripped);
        row ``i`` is item ``i + 1``."""
        return self.item_table[1:]


def _serving_state(model) -> dict[str, np.ndarray]:
    state = model.state_dict()
    kept = {name: value for name, value in state.items()
            if name.startswith(_MISSL_SERVING_PREFIXES)}
    if not kept:
        raise ValueError("model exposes no serving-path parameters to export")
    return kept


def _manifest(artifact: InferenceArtifact) -> dict:
    return {
        "family": artifact.family,
        "config": artifact.config,
        "schema": {"behaviors": list(artifact.behaviors),
                   "target": artifact.target},
        "num_items": int(artifact.num_items),
        "parameters": sorted(artifact.params),
        "extra": artifact.extra,
    }


def _write_npz(artifact: InferenceArtifact, path: Path) -> Path:
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = _manifest(artifact)
    meta["format"] = "npz"
    meta["format_version"] = ARTIFACT_FORMAT_VERSION
    arrays = {_PARAM_PREFIX + name: value
              for name, value in artifact.params.items()}
    arrays[_TABLE_KEY] = artifact.item_table
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode(),
                                      dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path


def _write_dir(artifact: InferenceArtifact, path: Path,
               states: dict[str, tuple[dict, dict]]) -> Path:
    for name in artifact.params:
        if "/" in name or name.startswith("."):
            raise ValueError(f"parameter name {name!r} is not a safe "
                             f"bundle file name")
    path.mkdir(parents=True, exist_ok=True)
    np.save(path / f"{_TABLE_KEY}.npy",
            np.ascontiguousarray(artifact.item_table))
    params_dir = path / _PARAMS_DIR
    params_dir.mkdir(exist_ok=True)
    for name, value in artifact.params.items():
        np.save(params_dir / f"{name}.npy", np.ascontiguousarray(value))
    manifest = _manifest(artifact)
    manifest["format"] = "dir"
    manifest["format_version"] = ARTIFACT_DIR_FORMAT_VERSION
    manifest["indexes"] = {}
    for backend, (meta, arrays) in states.items():
        index_dir = path / _INDEX_DIR / backend
        index_dir.mkdir(parents=True, exist_ok=True)
        for array_name, value in arrays.items():
            np.save(index_dir / f"{array_name}.npy",
                    np.ascontiguousarray(value))
        manifest["indexes"][backend] = {"meta": meta,
                                        "arrays": sorted(arrays)}
    (path / _MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True))
    return path


def write_artifact(artifact: InferenceArtifact, path: str | Path, *,
                   artifact_format: str = "npz",
                   prebuilt: tuple[str, ...] = (),
                   index_options: dict | None = None) -> Path:
    """Write an in-memory artifact to disk in either on-disk format.

    ``artifact_format="npz"`` writes the legacy single compressed file
    (``.npz`` suffix enforced).  ``artifact_format="dir"`` writes the
    memory-mappable directory bundle at exactly ``path``; ``prebuilt`` then
    names index backends (any of :data:`repro.serve.index.SERIALIZABLE_BACKENDS`)
    to build once here — with per-backend construction knobs from
    ``index_options[backend]`` — and serialize into the bundle, so replicas
    attach the built structure instead of rebuilding it.  Returns the
    written path.
    """
    path = Path(path)
    prebuilt = tuple(prebuilt)
    if artifact_format == "npz":
        if prebuilt:
            raise ValueError("prebuilt index serialization requires "
                             "artifact_format='dir' (npz decompresses "
                             "private copies, defeating the point)")
        return _write_npz(artifact, path)
    if artifact_format != "dir":
        raise ValueError(f"unknown artifact format {artifact_format!r}; "
                         f"choose 'npz' or 'dir'")
    score_mode = artifact.config.get("score_mode", "max")
    score_pow = float(artifact.config.get("score_pow", 1.0))
    states = {}
    for backend in prebuilt:
        if backend not in SERIALIZABLE_BACKENDS:
            raise ValueError(f"backend {backend!r} cannot be prebuilt; "
                             f"serializable backends: {SERIALIZABLE_BACKENDS}")
        options = dict((index_options or {}).get(backend, {}))
        index = build_index(artifact.item_vectors(), backend,
                            score_mode=score_mode, score_pow=score_pow,
                            **options)
        states[backend] = index.state()
    return _write_dir(artifact, path, states)


def export_artifact(model, path: str | Path, extra: dict | None = None, *,
                    artifact_format: str = "npz",
                    prebuilt: tuple[str, ...] = (),
                    index_options: dict | None = None) -> Path:
    """Freeze a trained MISSL into an inference artifact at ``path``.

    Runs the hypergraph enhancement once (eval mode, no grad) to materialize
    the item table, keeps only the request-path parameter sub-trees, and
    writes the artifact via :func:`write_artifact` (``artifact_format``,
    ``prebuilt`` and ``index_options`` pass straight through).  The model's
    train/eval mode is restored on exit.  Returns the written path.
    """
    from repro.core.model import MISSL
    from repro.nn.tensor import no_grad

    if not isinstance(model, MISSL):
        raise TypeError(
            f"artifact export currently supports MISSL models, got "
            f"{type(model).__name__}; extend repro.serve.encoder with a "
            f"family encoder to serve other models")

    was_training = bool(model.training)
    model.eval()
    with no_grad():
        table = np.array(model.item_representations().numpy(), copy=True)
    if was_training:
        model.train()

    config = dict(model.config.__dict__)
    config["active_behaviors"] = list(model.active_behaviors)
    artifact = InferenceArtifact(
        family="missl",
        item_table=table,
        params=_serving_state(model),
        config=config,
        behaviors=tuple(model.schema.behaviors),
        target=model.schema.target,
        num_items=int(model.num_items),
        extra=extra or {},
    )
    return write_artifact(artifact, path, artifact_format=artifact_format,
                          prebuilt=prebuilt, index_options=index_options)


def _load_npz(path: Path) -> InferenceArtifact:
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro inference artifact "
                             f"(missing metadata)")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode())
        version = meta.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise ValueError(f"artifact format {version} unsupported "
                             f"(expected {ARTIFACT_FORMAT_VERSION})")
        if _TABLE_KEY not in archive:
            raise ValueError(f"{path} has no item table")
        table = archive[_TABLE_KEY]
        params = {name: archive[_PARAM_PREFIX + name]
                  for name in meta["parameters"]}
    return InferenceArtifact(
        family=meta["family"],
        item_table=table,
        params=params,
        config=meta["config"],
        behaviors=tuple(meta["schema"]["behaviors"]),
        target=meta["schema"]["target"],
        num_items=int(meta["num_items"]),
        extra=meta.get("extra", {}),
        fmt="npz",
        source=str(path),
    )


def _load_dir(path: Path, mmap: bool) -> InferenceArtifact:
    manifest_path = path / _MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValueError(f"{path} is not a repro artifact bundle "
                         f"(missing {_MANIFEST_NAME})")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("format_version")
    if version != ARTIFACT_DIR_FORMAT_VERSION:
        raise ValueError(f"artifact format {version} unsupported "
                         f"(expected {ARTIFACT_DIR_FORMAT_VERSION})")
    mode = "r" if mmap else None

    def _load(relative: str) -> np.ndarray:
        return np.load(path / relative, mmap_mode=mode, allow_pickle=False)

    table = _load(f"{_TABLE_KEY}.npy")
    params = {name: _load(f"{_PARAMS_DIR}/{name}.npy")
              for name in manifest["parameters"]}
    prebuilt = {}
    for backend, entry in manifest.get("indexes", {}).items():
        arrays = {name: _load(f"{_INDEX_DIR}/{backend}/{name}.npy")
                  for name in entry["arrays"]}
        prebuilt[backend] = {"meta": entry["meta"], "arrays": arrays}
    return InferenceArtifact(
        family=manifest["family"],
        item_table=table,
        params=params,
        config=manifest["config"],
        behaviors=tuple(manifest["schema"]["behaviors"]),
        target=manifest["schema"]["target"],
        num_items=int(manifest["num_items"]),
        extra=manifest.get("extra", {}),
        fmt="dir",
        source=str(path),
        prebuilt=prebuilt,
    )


def load_artifact(path: str | Path, mmap: bool = True) -> InferenceArtifact:
    """Load an artifact written by :func:`write_artifact` (either format).

    Pure NumPy: no model construction, no autodiff graph.  Directory bundles
    load their arrays with ``mmap_mode="r"`` by default, so co-located
    replicas share page-cache pages (``mmap=False`` forces private in-memory
    copies; ``npz`` artifacts are always in-memory).  Raises ``ValueError``
    on missing metadata or an unsupported format version.
    """
    path = Path(path)
    if path.is_dir():
        return _load_dir(path, mmap)
    return _load_npz(path)
