"""Artifact-backed user encoders: multi-interest vectors without autodiff.

A *serving encoder* turns a collated :class:`~repro.data.batching.Batch` into
``(B, K, D)`` fused multi-interest vectors using only the frozen arrays of an
:class:`~repro.serve.artifact.InferenceArtifact` and the NumPy kernels in
:mod:`repro.serve.ops`.  The MISSL encoder below reproduces
``MISSL.user_representation`` in eval mode exactly (same op order, same
dtype), which is what makes exact-backend serving provably equal to the
offline :func:`repro.recommend.recommend` path.

New model families plug in via :func:`register_encoder`.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch

from . import ops
from .artifact import InferenceArtifact

__all__ = ["MisslServingEncoder", "build_encoder", "register_encoder"]

FUSED_KEY = "__fused__"


class MisslServingEncoder:
    """NumPy-only replica of the MISSL interest pipeline (eval mode).

    Pipeline per call: per-behavior sequence embedding → causal transformer
    encoding → multi-interest extraction (prototype attention or dynamic
    routing), the fused cross-behavior timeline, and the slot-aligned gated
    fusion of auxiliary interests into the target interests.  The hypergraph
    stage never runs — the artifact's item table already carries it.
    """

    def __init__(self, artifact: InferenceArtifact):
        if artifact.family != "missl":
            raise ValueError(f"MisslServingEncoder cannot serve family "
                             f"{artifact.family!r}")
        self.artifact = artifact
        config = artifact.config
        # The item table stays as loaded — with a dir-format artifact that is
        # a read-only memmap whose pages N co-located replicas share.  The
        # small weight arrays, in contrast, are touched on every request, so
        # mmap-backed ones are materialized once here to avoid per-request
        # page-fault jitter (values are identical — parity is unaffected).
        self.table = artifact.item_table
        self.params = {
            name: np.array(value) if isinstance(value, np.memmap) else value
            for name, value in artifact.params.items()}
        self.schema = artifact.schema
        self.dim = artifact.dim
        self.max_len = int(config["max_len"])
        self.num_heads = int(config["num_heads"])
        self.seq_layers = int(config["seq_layers"])
        self.num_interests = int(config["num_interests"])
        self.interest_mode = config.get("interest_mode", "attention")
        self.routing_iterations = int(config.get("routing_iterations", 3))
        self.use_auxiliary = bool(config["use_auxiliary"])
        self.use_shared_fusion = bool(config["use_shared_fusion"])
        self.shared_prototypes = bool(config.get("shared_prototypes", True))
        self.score_mode = config.get("score_mode", "max")
        self.score_pow = float(config.get("score_pow", 1.0))
        self.active_behaviors = tuple(config["active_behaviors"])
        self._encoder_of = {b: i for i, b in enumerate(self.active_behaviors)}

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------
    def _clip(self, *arrays: np.ndarray) -> tuple[np.ndarray, ...]:
        return tuple(a[:, -self.max_len:] for a in arrays)

    def _embed(self, items: np.ndarray, behavior: str | np.ndarray) -> np.ndarray:
        """Mirror of ``core.embedding.SequenceEmbedding`` (dropout = identity)."""
        batch, length = items.shape
        if length > self.max_len:
            raise ValueError(f"sequence length {length} exceeds max_len "
                             f"{self.max_len}")
        vectors = np.take(self.table, items, axis=0)
        positions = np.arange(self.max_len - length, self.max_len, dtype=np.intp)
        vectors = vectors + self.params["seq_embedding.position.weight"][positions]
        if isinstance(behavior, str):
            type_ids = np.full((batch, length), self.schema.behavior_id(behavior),
                               dtype=np.int64)
        else:
            type_ids = np.asarray(behavior)
        vectors = vectors + self.params["seq_embedding.behavior.weight"][type_ids]
        return ops.layer_norm(vectors, self.params["seq_embedding.norm.gamma"],
                              self.params["seq_embedding.norm.beta"])

    def _encode(self, states: np.ndarray, mask: np.ndarray, prefix: str
                ) -> np.ndarray:
        return ops.transformer_encoder(states, mask, self.params, prefix,
                                       self.seq_layers, self.num_heads,
                                       causal=True)

    def _extract_attention(self, states: np.ndarray, valid_mask: np.ndarray,
                           prefix: str) -> np.ndarray:
        """Mirror of ``core.interest.MultiInterestExtractor.forward``."""
        prototypes = self.params[f"{prefix}prototypes"]
        keys = ops.linear(states, self.params[f"{prefix}key_proj.weight"])
        scores = keys @ prototypes.T
        scores = scores * np.asarray(1.0 / np.sqrt(self.dim), dtype=scores.dtype)
        blocked = ~valid_mask.astype(bool)
        empty_rows = blocked.all(axis=1)
        if empty_rows.any():
            blocked = blocked.copy()
            blocked[empty_rows] = False
        scores = ops.masked_fill(scores, blocked[:, :, None])
        attention = ops.softmax(scores, axis=1)
        interests = attention.swapaxes(1, 2) @ states
        return ops.linear(interests, self.params[f"{prefix}out_proj.weight"])

    def _extract_routing(self, states: np.ndarray, valid_mask: np.ndarray,
                         prefix: str) -> np.ndarray:
        """Mirror of ``core.routing.DynamicRoutingExtractor.forward``."""
        batch, length, _ = states.shape
        messages = ops.linear(states, self.params[f"{prefix}bilinear.weight"])
        valid = valid_mask.astype(messages.dtype)[:, :, None]
        prior = self.params[f"{prefix}logit_prior"]
        logits = prior[None, None, :] + np.zeros(
            (batch, length, self.num_interests), dtype=prior.dtype)

        def squash(x: np.ndarray) -> np.ndarray:
            squared = (x * x).sum(axis=-1, keepdims=True)
            norm = np.sqrt(squared + 1e-9)
            return x * (squared / (1.0 + squared) / norm)

        capsules = None
        for iteration in range(self.routing_iterations):
            weights = ops.softmax(logits, axis=2) * valid
            capsules = squash(weights.swapaxes(1, 2) @ messages)
            if iteration < self.routing_iterations - 1:
                logits = logits + messages @ capsules.swapaxes(1, 2)
        return capsules

    def _extract(self, states: np.ndarray, valid_mask: np.ndarray,
                 behavior: str | None) -> np.ndarray:
        if self.shared_prototypes or behavior is None:
            prefix = "interest_extractor."
        else:
            prefix = f"behavior_extractors.{self._encoder_of[behavior]}."
        if self.interest_mode == "routing":
            return self._extract_routing(states, valid_mask, prefix)
        return self._extract_attention(states, valid_mask, prefix)

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    def behavior_interests(self, batch: Batch) -> dict[str, np.ndarray]:
        """Per-behavior ``(B, K, D)`` interests (plus the fused timeline's
        under ``"__fused__"``), mirroring ``MISSL.behavior_interests``."""
        interests: dict[str, np.ndarray] = {}
        for behavior in self.active_behaviors:
            items, mask = self._clip(batch.items[behavior], batch.masks[behavior])
            states = self._embed(items, behavior)
            encoded = self._encode(states, mask,
                                   f"encoders.{self._encoder_of[behavior]}.")
            interests[behavior] = self._extract(encoded, mask, behavior)
        if self.use_auxiliary:
            merged_items, merged_behaviors, merged_mask = self._clip(
                batch.merged_items, batch.merged_behaviors, batch.merged_mask)
            behaviors = np.where(merged_mask, merged_behaviors, 0)
            states = self._embed(merged_items, behaviors)
            encoded = self._encode(states, merged_mask, "fused_encoder.")
            interests[FUSED_KEY] = self._extract(encoded, merged_mask, None)
        return interests

    def interests(self, batch: Batch) -> np.ndarray:
        """Fused ``(B, K, D)`` user interests, mirroring
        ``MISSL.user_representation`` (gated slot-aligned fusion)."""
        extracted = self.behavior_interests(batch)
        target = extracted[self.schema.target]
        if not self.use_auxiliary or not self.use_shared_fusion:
            return target
        fused = target
        views: list[tuple[np.ndarray, np.ndarray]] = []
        for behavior in self.schema.auxiliary:
            if behavior in extracted:
                views.append((extracted[behavior],
                              batch.masks[behavior].any(axis=1)))
        if FUSED_KEY in extracted:
            views.append((extracted[FUSED_KEY], batch.merged_mask.any(axis=1)))
        gate_weight = self.params["fusion_gate.weight"]
        gate_bias = self.params["fusion_gate.bias"]
        for aux, has_rows in views:
            gate = ops.sigmoid(ops.linear(
                np.concatenate([target, aux], axis=-1), gate_weight, gate_bias))
            gate = gate * has_rows.astype(target.dtype)[:, None, None]
            fused = fused + gate * aux
        return fused

    def score_items(self, interests: np.ndarray, item_vectors: np.ndarray
                    ) -> np.ndarray:
        """Readout scores ``(..., N)`` of interests against ``(N, D)`` items."""
        per_interest = interests @ item_vectors.swapaxes(-1, -2)
        return ops.interest_readout(per_interest, self.score_mode, self.score_pow)


_ENCODERS = {"missl": MisslServingEncoder}


def register_encoder(family: str, factory) -> None:
    """Register a serving encoder factory for a model family."""
    _ENCODERS[family] = factory


def build_encoder(artifact: InferenceArtifact):
    """Instantiate the serving encoder for an artifact's model family."""
    try:
        factory = _ENCODERS[artifact.family]
    except KeyError:
        raise ValueError(
            f"no serving encoder registered for family {artifact.family!r}; "
            f"known families: {sorted(_ENCODERS)}") from None
    return factory(artifact)
