"""Versioned user-history store backing the online service.

The offline stack reads immutable :class:`~repro.data.dataset.MultiBehaviorDataset`
corpora; an online service needs histories that *grow* as events stream in,
plus a cheap way to know when a cached user representation went stale.
:class:`HistoryStore` keeps per-user, per-behavior event lists (seeded from a
dataset), a monotonically increasing **version** per user that bumps on every
append, and builds the exact same inference examples as
:func:`repro.recommend.build_inference_example` — so a service answer equals
the offline answer for an unmodified user.

Thread safety: the async network front-end interleaves cold-start appends
with encode-path reads from executor threads, so every accessor and the
append path run under one re-entrant store lock.  ``append`` in particular
is a read-modify-write (latest-timestamp read, list append, version bump)
that must be atomic — without the lock two concurrent appends could both
read version ``v`` and publish ``v + 1``, making one event invisible to the
``(user, version)`` cache key.  Contention is negligible: every critical
section is a few dict/list operations, orders of magnitude cheaper than the
encodes they synchronize against.  The lock is a
:func:`repro.obs.lockwatch.watched_rlock` so the runtime lock-order
watchdog can place it in the fleet acquisition graph when enabled.
"""

from __future__ import annotations

from collections import defaultdict

from repro.data.dataset import MultiBehaviorDataset
from repro.data.schema import BehaviorSchema
from repro.data.splits import SequenceExample
from repro.obs.lockwatch import watched_rlock

__all__ = ["HistoryStore"]


class HistoryStore:
    """Mutable multi-behavior histories with per-user versioning."""

    def __init__(self, schema: BehaviorSchema, num_items: int):
        self.schema = schema
        self.num_items = int(num_items)
        self._sequences: dict[int, dict[str, list[tuple[int, int]]]] = {}
        self._seen: dict[int, set[int]] = defaultdict(set)
        self._versions: dict[int, int] = defaultdict(int)
        self._behavior_order = {b: i for i, b in enumerate(schema.behaviors)}
        self._lock = watched_rlock("serve.history.store")

    @classmethod
    def from_dataset(cls, dataset: MultiBehaviorDataset) -> "HistoryStore":
        """Seed the store from a corpus (histories copied, versions start 0)."""
        store = cls(dataset.schema, dataset.num_items)
        for user in dataset.users:
            store._sequences[user] = {
                behavior: list(dataset.sequence_with_times(user, behavior))
                for behavior in dataset.schema.behaviors
            }
            store._seen[user] = set(dataset.items_of_user(user))
        return store

    # ------------------------------------------------------------------
    # pickling (lock objects do not cross process/pickle boundaries)
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = watched_rlock("serve.history.store")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def users(self) -> list[int]:
        with self._lock:
            users = list(self._sequences)
        return sorted(users)  # O(n log n) outside the critical section

    def has_user(self, user: int) -> bool:
        """True when the store holds any history for ``user``."""
        with self._lock:
            return user in self._sequences

    def version(self, user: int) -> int:
        """The user's history version (bumps on every append); 0 initially."""
        with self._lock:
            return self._versions[user]

    def seen(self, user: int) -> set[int]:
        """Items the user touched under any behavior (copy)."""
        with self._lock:
            return set(self._seen[user])

    def _last_timestamp(self, user: int) -> int:
        sequences = self._sequences.get(user)
        if not sequences:
            return 0
        stamps = [events[-1][1] for events in sequences.values() if events]
        return max(stamps) if stamps else 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append(self, user: int, item: int, behavior: str,
               timestamp: int | None = None) -> int:
        """Record one new event and bump the user's version.

        ``timestamp`` defaults to one past the user's latest event; explicit
        timestamps must be non-decreasing (an online log never rewrites the
        past).  Unknown users are created — the online cold-start path.
        Returns the new version.
        """
        if behavior not in self._behavior_order:
            raise KeyError(f"unknown behavior {behavior!r}; schema has "
                           f"{self.schema.behaviors}")
        if not 1 <= item <= self.num_items:
            raise ValueError(f"item id {item} outside [1, {self.num_items}]")
        with self._lock:
            last = self._last_timestamp(user)
            if timestamp is None:
                timestamp = last + 1
            elif timestamp < last:
                raise ValueError(f"timestamp {timestamp} precedes the user's "
                                 f"latest event at {last}")
            if user not in self._sequences:
                self._sequences[user] = {b: [] for b in self.schema.behaviors}
            self._sequences[user][behavior].append((item, timestamp))
            self._seen[user].add(item)
            self._versions[user] += 1
            return self._versions[user]

    # ------------------------------------------------------------------
    # inference examples
    # ------------------------------------------------------------------
    def example(self, user: int, max_len: int = 50) -> SequenceExample:
        """The user's full-history inference example.

        Field-for-field identical to
        :func:`repro.recommend.build_inference_example` for a user whose
        history has not been modified since :meth:`from_dataset`.
        """
        with self._lock:
            if user not in self._sequences:
                raise KeyError(f"user {user} not in the history store")
            sequences = self._sequences[user]
            inputs = {
                behavior: tuple(item for item, _ in sequences[behavior][-max_len:])
                for behavior in self.schema.behaviors
            }
            triples = [
                (item, behavior, ts)
                for behavior in self.schema.behaviors
                for item, ts in sequences[behavior]
            ]
        triples.sort(key=lambda t: (t[2], self._behavior_order[t[1]]))
        merged = [(item, self.schema.behavior_id(behavior))
                  for item, behavior, _ in triples][-max_len:]
        return SequenceExample(
            user=user,
            inputs=inputs,
            merged_items=tuple(item for item, _ in merged),
            merged_behavior_ids=tuple(bid for _, bid in merged),
            target=1,  # placeholder; never read at inference
        )
