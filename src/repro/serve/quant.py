"""Quantized retrieval: PQ codebooks and int8 scalar-quantized item tables.

The approximate backends in :mod:`repro.serve.index` shrink *scan cost* but
every replica still holds the full float32 item block.  This module shrinks
the *table itself* — the highest-leverage memory lever for the
industrial-scale catalogs MISSL's setting targets:

* :class:`ScalarQuantizer` / :class:`SQIndex` (backend ``exact_sq``) — int8
  codes with a per-dimension affine ``scale``/``offset``.  Exactly 4× smaller
  than float32, full-catalog scan, and the scan never decodes: the inner
  product decomposes as ``q·x ≈ (q*scale)·codes + q·offset``, so the int8
  block is streamed through a float32 scratch tile.
* :class:`ProductQuantizer` / :class:`PQIndex` (backend ``pq``) — seeded
  k-means codebooks over ``m`` subspaces, one uint8 code per subspace
  (``m`` bytes/item; 16× smaller at dim 32, ``m=8``).  Scoring is classic
  asymmetric-distance (ADC): per-query lookup tables
  (:func:`repro.serve.ops.pq_adc_scores`), one gather per subspace.
* :class:`IVFPQIndex` (backend ``ivf_pq``) — IVF coarse partitions pruning
  which rows get ADC-scanned.  Codes are built over the raw vectors, not
  residuals — a documented simplification; the refine step absorbs the
  accuracy gap.

All three expose the same ``search``/exclusion API as the float indexes and
support an optional **refine step**: the top ``refine`` scan candidates
(exclusions applied *before* selection, so excluded items never occupy
refine slots) are re-scored exactly in float64 — the same promotion
:class:`~repro.serve.index.ExactIndex` performs — which makes served==offline
top-k parity a chosen-depth knob rather than a casualty of quantization.
Dtype discipline is load-bearing here: scan paths stay in code dtypes and
float32 (the ``DTYPE-DISCIPLINE`` lint rule enforces it); float64 appears
only inside the refine step.

Each index keeps an *uncopied* reference to the full vector block purely for
refine — with a directory-format artifact (:mod:`repro.serve.artifact`) that
reference is a read-only memmap, so only the refined rows ever fault in and
``resident_bytes()`` (codes + codebooks + coarse structures) is an honest
account of what must stay hot.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from .index import (SearchResult, _apply_exclusions, _as_queries,
                    _finite_topk, _kmeans, scratch)
from .ops import interest_readout, pq_adc_scores

__all__ = ["ScalarQuantizer", "ProductQuantizer", "SQIndex", "PQIndex",
           "IVFPQIndex", "build_quant_index", "load_quant_state"]

# Rows of int8 codes upcast per tile during an SQ scan (bounds the float32
# scratch to _SCAN_BLOCK * dim, independent of catalog size).
_SCAN_BLOCK = 8192


class ScalarQuantizer:
    """Per-dimension affine int8 quantizer: ``x ≈ codes * scale + offset``.

    ``fit`` centers each dimension on the midpoint of its observed range and
    spreads the half-range over 127 steps, so codes stay within ``±127`` and
    the decode error per dimension is at most ``scale / 2``.
    """

    def __init__(self, scale: np.ndarray, offset: np.ndarray):
        self.scale = np.asarray(scale, dtype=np.float32)
        self.offset = np.asarray(offset, dtype=np.float32)

    @classmethod
    def fit(cls, vectors: np.ndarray) -> "ScalarQuantizer":
        vectors = np.asarray(vectors, dtype=np.float32)
        lo = vectors.min(axis=0)
        hi = vectors.max(axis=0)
        center = (hi + lo) * np.float32(0.5)
        halfspan = (hi - lo) * np.float32(0.5)
        scale = np.maximum(halfspan / np.float32(127.0), np.float32(1e-12))
        return cls(scale, center)

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.asarray(vectors, dtype=np.float32)
        steps = np.rint((vectors - self.offset) / self.scale)
        return np.clip(steps, -127.0, 127.0).astype(np.int8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        return np.asarray(codes, dtype=np.float32) * self.scale + self.offset


class ProductQuantizer:
    """Seeded product quantizer: ``m`` subspaces × ``ksub``-entry codebooks.

    Each item stores one uint8 code per subspace (``m`` bytes/item).  The
    codebooks are per-subspace seeded k-means (:func:`repro.serve.index._kmeans`)
    centroids, so construction is deterministic given the seed.
    """

    def __init__(self, codebooks: np.ndarray):
        self.codebooks = np.asarray(codebooks, dtype=np.float32)
        if self.codebooks.ndim != 3:
            raise ValueError(f"expected (m, ksub, dsub) codebooks, got shape "
                             f"{self.codebooks.shape}")

    @property
    def m(self) -> int:
        return int(self.codebooks.shape[0])

    @property
    def ksub(self) -> int:
        return int(self.codebooks.shape[1])

    @property
    def dsub(self) -> int:
        return int(self.codebooks.shape[2])

    @classmethod
    def fit(cls, vectors: np.ndarray, m: int = 8, ksub: int = 256,
            iterations: int = 8, seed: int = 0) -> "ProductQuantizer":
        vectors = np.asarray(vectors, dtype=np.float32)
        n, dim = vectors.shape
        if m < 1 or dim % m:
            raise ValueError(f"pq subspace count m={m} must divide dim={dim}")
        if not 1 <= ksub <= 256:
            raise ValueError(f"ksub={ksub} must fit a uint8 code (1..256)")
        ksub = min(int(ksub), n)
        dsub = dim // m
        rng = np.random.default_rng(seed)
        codebooks = np.empty((m, ksub, dsub), dtype=np.float32)
        for sub in range(m):
            block = np.ascontiguousarray(vectors[:, sub * dsub:(sub + 1) * dsub])
            codebooks[sub], _ = _kmeans(block, ksub, iterations, rng)
        return cls(codebooks)

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Nearest sub-codebook entry per subspace → ``(N, m)`` uint8."""
        vectors = np.asarray(vectors, dtype=np.float32)
        codes = np.empty((vectors.shape[0], self.m), dtype=np.uint8)
        for sub in range(self.m):
            block = vectors[:, sub * self.dsub:(sub + 1) * self.dsub]
            entries = self.codebooks[sub]
            cross = block @ entries.T
            distances = (block ** 2).sum(axis=1, keepdims=True) - 2.0 * cross \
                + (entries ** 2).sum(axis=1)[None, :]
            codes[:, sub] = distances.argmin(axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        parts = [self.codebooks[sub][codes[:, sub]] for sub in range(self.m)]
        return np.concatenate(parts, axis=1)

    def lookup_tables(self, queries: np.ndarray) -> np.ndarray:
        """Per-query ADC tables ``(K, m, ksub)``: inner product of each query
        sub-vector with every sub-codebook entry."""
        queries = np.asarray(queries, dtype=np.float32)
        split = queries.reshape(queries.shape[0], self.m, self.dsub)
        return np.einsum("kmd,mcd->kmc", split, self.codebooks)


def _refine_and_rank(index, queries: np.ndarray, scan_scores: np.ndarray,
                     k: int, depth: int, scanned: int,
                     scan_seconds: float) -> SearchResult:
    """Exact float64 re-score of the top ``depth`` scan candidates.

    Exclusions were applied to ``scan_scores`` before this call, so excluded
    items are ``-inf`` and never occupy refine slots.  The candidate rows are
    gathered out of the (possibly memory-mapped) vector block and re-scored
    with the model readout, promoted to float64 — the same promotion
    ``ExactIndex`` performs — so with ``depth >= N`` the ranking matches the
    exact backend.  This is the only float64 code path in the module.
    """
    start = perf_counter()
    num_items = index.num_items
    take = min(depth, num_items)
    if take < num_items:
        shortlist = np.argpartition(-scan_scores, take - 1)[:take]
    else:
        shortlist = np.arange(num_items, dtype=np.int64)
    rows = shortlist[np.isfinite(scan_scores[shortlist])]
    scores = scratch.filled((num_items,), np.float64, -np.inf)
    if len(rows):
        gathered = np.asarray(index.vectors[rows], dtype=np.float32)
        per_interest = queries @ gathered.T                   # (K, R)
        scores[rows] = interest_readout(per_interest, index.score_mode,
                                        index.score_pow)
    take_k = min(k, num_items)
    if take_k < num_items:
        short = np.argpartition(-scores, take_k - 1)[:take_k]
        order = short[np.argsort(-scores[short])]
    else:
        order = np.argsort(-scores)
    return _finite_topk(index.items, scores, order, scanned, scan_seconds,
                        perf_counter() - start, int(len(rows)))


class _QuantIndex:
    """Shared search skeleton: quantized scan → exclusions → optional exact
    refine → rank.  Subclasses implement ``_scan`` returning a full-length
    float32 score vector (``-inf`` for unscanned rows) plus the number of
    candidates actually ADC/SQ-scored."""

    def __init__(self, item_vectors: np.ndarray, score_mode: str,
                 score_pow: float, refine: int):
        # Uncopied reference — a read-only memmap with dir-format artifacts;
        # touched only by the refine gather, never by the scan.
        self.vectors = np.asarray(item_vectors, dtype=np.float32)
        self.num_items = int(self.vectors.shape[0])
        if self.num_items < 1:
            raise ValueError("cannot index an empty catalog")
        self.score_mode = score_mode
        self.score_pow = float(score_pow)
        self.refine = max(0, int(refine))
        self.items = np.arange(1, self.num_items + 1, dtype=np.int64)

    def _scan(self, queries: np.ndarray) -> tuple[np.ndarray, int]:
        raise NotImplementedError

    def search(self, interests: np.ndarray, k: int, exclude=None,
               refine: int | None = None) -> SearchResult:
        """Top-``k`` via quantized scan; ``refine`` overrides the constructor
        depth for this call (0 disables the exact re-score)."""
        if k < 1:
            raise ValueError("k must be positive")
        queries = np.asarray(_as_queries(interests), dtype=np.float32)
        depth = self.refine if refine is None else max(0, int(refine))
        start = perf_counter()
        scores, scanned = self._scan(queries)
        scan_seconds = perf_counter() - start
        scores = _apply_exclusions(scores, exclude)
        if depth > 0:
            return _refine_and_rank(self, queries, scores, k, depth, scanned,
                                    scan_seconds)
        take = min(k, self.num_items)
        if take < self.num_items:
            shortlist = np.argpartition(-scores, take - 1)[:take]
            order = shortlist[np.argsort(-scores[shortlist])]
        else:
            order = np.argsort(-scores)
        return _finite_topk(self.items, scores, order, scanned, scan_seconds)


class SQIndex(_QuantIndex):
    """Int8 scalar-quantized full-catalog scan (backend ``exact_sq``).

    Scan scores decompose as ``(q * scale) · codes + q · offset``, so the
    int8 block is consumed tile by tile through a float32 scratch buffer —
    the codes are never decoded to a full float copy of the table.
    """

    backend = "exact_sq"

    def __init__(self, item_vectors: np.ndarray, score_mode: str = "max",
                 score_pow: float = 1.0, refine: int = 0,
                 quantizer: ScalarQuantizer | None = None,
                 codes: np.ndarray | None = None):
        super().__init__(item_vectors, score_mode, score_pow, refine)
        self.quantizer = quantizer if quantizer is not None \
            else ScalarQuantizer.fit(self.vectors)
        self.codes = np.asarray(codes, dtype=np.int8) if codes is not None \
            else self.quantizer.encode(self.vectors)

    def _scan(self, queries: np.ndarray) -> tuple[np.ndarray, int]:
        scaled = queries * self.quantizer.scale[None, :]          # (K, D)
        base = queries @ self.quantizer.offset                    # (K,)
        dim = self.codes.shape[1]
        per_interest = scratch.take((queries.shape[0], self.num_items),
                                    np.float32)
        tile = scratch.take((min(_SCAN_BLOCK, self.num_items), dim),
                            np.float32)
        for lo in range(0, self.num_items, _SCAN_BLOCK):
            hi = min(lo + _SCAN_BLOCK, self.num_items)
            chunk = tile[:hi - lo]
            np.copyto(chunk, self.codes[lo:hi], casting="safe")
            np.matmul(scaled, chunk.T, out=per_interest[:, lo:hi])
        per_interest += base[:, None]
        combined = interest_readout(per_interest, self.score_mode,
                                    self.score_pow)
        return combined, self.num_items

    def resident_bytes(self) -> int:
        """Bytes hot at scan time: int8 codes + the affine parameters."""
        return int(self.codes.nbytes + self.quantizer.scale.nbytes
                   + self.quantizer.offset.nbytes)

    def describe(self) -> dict:
        return {"refine": self.refine,
                "code_bytes_per_item": int(self.codes.shape[1]),
                "resident_bytes": self.resident_bytes()}

    # -- serialization ----------------------------------------------------
    def state(self) -> tuple[dict, dict]:
        meta = {"backend": self.backend, "refine": int(self.refine),
                "score_mode": self.score_mode,
                "score_pow": float(self.score_pow)}
        return meta, {"codes": self.codes, "scale": self.quantizer.scale,
                      "offset": self.quantizer.offset}

    @classmethod
    def from_state(cls, item_vectors: np.ndarray, meta: dict, arrays: dict,
                   score_mode: str = "max",
                   score_pow: float = 1.0) -> "SQIndex":
        quantizer = ScalarQuantizer(arrays["scale"], arrays["offset"])
        return cls(item_vectors, score_mode=score_mode, score_pow=score_pow,
                   refine=int(meta.get("refine", 0)), quantizer=quantizer,
                   codes=arrays["codes"])


class PQIndex(_QuantIndex):
    """Product-quantized full-catalog ADC scan (backend ``pq``).

    ``m`` uint8 codes per item; per-query lookup tables turn the scan into
    ``m`` table gathers (:func:`repro.serve.ops.pq_adc_scores`).
    """

    backend = "pq"

    def __init__(self, item_vectors: np.ndarray, m: int = 8, ksub: int = 256,
                 score_mode: str = "max", score_pow: float = 1.0,
                 refine: int = 0, seed: int = 0, kmeans_iterations: int = 8,
                 quantizer: ProductQuantizer | None = None,
                 codes: np.ndarray | None = None):
        super().__init__(item_vectors, score_mode, score_pow, refine)
        self.quantizer = quantizer if quantizer is not None \
            else ProductQuantizer.fit(self.vectors, m=m, ksub=ksub,
                                      iterations=kmeans_iterations, seed=seed)
        self.codes = np.asarray(codes, dtype=np.uint8) if codes is not None \
            else self.quantizer.encode(self.vectors)

    def _scan(self, queries: np.ndarray) -> tuple[np.ndarray, int]:
        luts = self.quantizer.lookup_tables(queries)              # (K, m, ksub)
        per_interest = pq_adc_scores(
            luts, self.codes,
            out=scratch.take((queries.shape[0], self.num_items), np.float32))
        combined = interest_readout(per_interest, self.score_mode,
                                    self.score_pow)
        return combined, self.num_items

    def resident_bytes(self) -> int:
        """Bytes hot at scan time: uint8 codes + the codebooks."""
        return int(self.codes.nbytes + self.quantizer.codebooks.nbytes)

    def describe(self) -> dict:
        return {"m": self.quantizer.m, "ksub": self.quantizer.ksub,
                "refine": self.refine,
                "code_bytes_per_item": int(self.codes.shape[1]),
                "resident_bytes": self.resident_bytes()}

    # -- serialization ----------------------------------------------------
    def state(self) -> tuple[dict, dict]:
        meta = {"backend": self.backend, "refine": int(self.refine),
                "m": self.quantizer.m, "ksub": self.quantizer.ksub,
                "score_mode": self.score_mode,
                "score_pow": float(self.score_pow)}
        return meta, {"codebooks": self.quantizer.codebooks,
                      "codes": self.codes}

    @classmethod
    def from_state(cls, item_vectors: np.ndarray, meta: dict, arrays: dict,
                   score_mode: str = "max",
                   score_pow: float = 1.0) -> "PQIndex":
        return cls(item_vectors, score_mode=score_mode, score_pow=score_pow,
                   refine=int(meta.get("refine", 0)),
                   quantizer=ProductQuantizer(arrays["codebooks"]),
                   codes=arrays["codes"])


class IVFPQIndex(PQIndex):
    """IVF coarse partitions composed with PQ codes (backend ``ivf_pq``).

    Each interest vector probes its ``nprobe`` closest partitions (same
    coarse structure as :class:`~repro.serve.index.IVFIndex`) and only the
    union of probed rows is ADC-scanned.  The default ``nprobe`` is more
    generous than IVF's (``nlist // 2``) because the per-candidate scan cost
    is a handful of table gathers, and the refine step absorbs the residual
    coarse/code error.
    """

    backend = "ivf_pq"

    def __init__(self, item_vectors: np.ndarray, m: int = 8, ksub: int = 256,
                 nlist: int | None = None, nprobe: int | None = None,
                 score_mode: str = "max", score_pow: float = 1.0,
                 refine: int = 0, seed: int = 0, kmeans_iterations: int = 8,
                 quantizer: ProductQuantizer | None = None,
                 codes: np.ndarray | None = None,
                 coarse: tuple[np.ndarray, list[np.ndarray]] | None = None):
        super().__init__(item_vectors, m=m, ksub=ksub, score_mode=score_mode,
                         score_pow=score_pow, refine=refine, seed=seed,
                         kmeans_iterations=kmeans_iterations,
                         quantizer=quantizer, codes=codes)
        if nlist is None:
            nlist = max(1, int(round(np.sqrt(self.num_items))))
        self.nlist = min(int(nlist), self.num_items)
        self.nprobe = max(1, self.nlist // 2) if nprobe is None \
            else max(1, min(int(nprobe), self.nlist))
        if coarse is not None:
            self.centroids, self.lists = coarse
        else:
            rng = np.random.default_rng(seed)
            self.centroids, assignment = _kmeans(self.vectors, self.nlist,
                                                 kmeans_iterations, rng)
            self.lists = [np.flatnonzero(assignment == c)
                          for c in range(self.nlist)]

    def _candidate_rows(self, queries: np.ndarray) -> np.ndarray:
        affinity = queries @ self.centroids.T                     # (K, C)
        probe_count = min(self.nprobe, self.nlist)
        probed = np.argpartition(-affinity, probe_count - 1,
                                 axis=1)[:, :probe_count]
        clusters = np.unique(probed)
        return np.concatenate([self.lists[c] for c in clusters]) \
            if len(clusters) else np.arange(self.num_items, dtype=np.int64)

    def _scan(self, queries: np.ndarray) -> tuple[np.ndarray, int]:
        rows = self._candidate_rows(queries)
        luts = self.quantizer.lookup_tables(queries)
        per_interest = pq_adc_scores(luts, self.codes[rows])      # (K, M)
        combined = interest_readout(per_interest, self.score_mode,
                                    self.score_pow)
        scores = scratch.filled((self.num_items,), np.float32, -np.inf)
        scores[rows] = combined
        return scores, int(len(rows))

    def resident_bytes(self) -> int:
        """PQ residency plus the coarse centroids and inverted lists."""
        return int(super().resident_bytes() + self.centroids.nbytes
                   + sum(rows.nbytes for rows in self.lists))

    def describe(self) -> dict:
        info = super().describe()
        info.update({"nlist": self.nlist, "nprobe": self.nprobe,
                     "resident_bytes": self.resident_bytes()})
        return info

    # -- serialization ----------------------------------------------------
    def state(self) -> tuple[dict, dict]:
        meta, arrays = super().state()
        meta.update({"backend": self.backend, "nlist": int(self.nlist),
                     "nprobe": int(self.nprobe)})
        sizes = np.fromiter((len(rows) for rows in self.lists),
                            dtype=np.int64, count=self.nlist)
        arrays["centroids"] = self.centroids
        arrays["list_rows"] = np.concatenate(self.lists) if self.num_items \
            else np.empty(0, dtype=np.int64)
        arrays["list_sizes"] = sizes
        return meta, arrays

    @classmethod
    def from_state(cls, item_vectors: np.ndarray, meta: dict, arrays: dict,
                   score_mode: str = "max",
                   score_pow: float = 1.0) -> "IVFPQIndex":
        sizes = np.asarray(arrays["list_sizes"], dtype=np.int64)
        rows = np.asarray(arrays["list_rows"], dtype=np.int64)
        lists = np.split(rows, np.cumsum(sizes)[:-1])
        return cls(item_vectors, score_mode=score_mode, score_pow=score_pow,
                   refine=int(meta.get("refine", 0)),
                   nlist=int(meta["nlist"]), nprobe=int(meta["nprobe"]),
                   quantizer=ProductQuantizer(arrays["codebooks"]),
                   codes=arrays["codes"],
                   coarse=(np.asarray(arrays["centroids"], dtype=np.float32),
                           lists))


_QUANT_CLASSES = {"exact_sq": SQIndex, "pq": PQIndex, "ivf_pq": IVFPQIndex}


def build_quant_index(item_vectors: np.ndarray, backend: str,
                      score_mode: str = "max", score_pow: float = 1.0,
                      **kwargs):
    """Construct a quantized index; ``backend`` is ``"pq"``, ``"ivf_pq"`` or
    ``"exact_sq"`` (normally reached via :func:`repro.serve.index.build_index`)."""
    try:
        cls = _QUANT_CLASSES[backend]
    except KeyError:
        raise ValueError(f"unknown quantized backend {backend!r}; choose "
                         f"'pq', 'ivf_pq' or 'exact_sq'") from None
    return cls(item_vectors, score_mode=score_mode, score_pow=score_pow,
               **kwargs)


def load_quant_state(item_vectors: np.ndarray, meta: dict, arrays: dict,
                     score_mode: str = "max", score_pow: float = 1.0):
    """Re-attach a serialized quantized index (``state()`` output) without
    re-running k-means or re-encoding the catalog."""
    backend = meta.get("backend")
    try:
        cls = _QUANT_CLASSES[backend]
    except KeyError:
        raise ValueError(f"unknown quantized backend {backend!r}; choose "
                         f"'pq', 'ivf_pq' or 'exact_sq'") from None
    return cls.from_state(item_vectors, meta, arrays, score_mode=score_mode,
                          score_pow=score_pow)
