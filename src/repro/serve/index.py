"""Multi-interest item retrieval indexes.

A retrieval index answers "given a user's K interest vectors, which items
score highest?" without the caller touching the full catalog.  Three
backends:

* :class:`ExactIndex` — brute-force matmul over the whole item block.  Its
  results are *identical* to offline full-catalog scoring (same readout, same
  float64 ordering as :func:`repro.recommend.recommend`), which makes it both
  the correctness baseline and the recall reference for approximate backends.
* :class:`IVFIndex` — an inverted-file (coarse-quantized) index: items are
  partitioned by a seeded NumPy k-means; each interest vector probes its
  ``nprobe`` closest partitions and the per-interest candidate sets are
  merged before exact re-scoring.  Classic ComiRec-style serving: K queries
  against an ANN structure, merge, rank.
* :class:`HNSWIndex` — a layered navigable-small-world proximity graph built
  with seeded level draws.  Each interest vector descends from the top-layer
  entry point and runs an ``ef_search``-wide beam over the bottom layer; the
  union of beam candidates across interests is re-scored exactly, so recall
  is tuned by one knob without touching the ranking math.  This is the
  second-generation index: where IVF's recall plateaus against its partition
  boundaries, widening ``ef_search`` walks the graph past them (the
  recall-vs-p99 Pareto in BENCH_P7).

Scores use the same multi-interest readout as the model (``max`` or
label-aware ``softmax``), so a candidate's index score equals its model
score.  All approximate backends apply seen-item exclusion *after* exact
re-scoring, mirroring the offline path.
"""

from __future__ import annotations

import heapq

import numpy as np

from .ops import interest_readout

__all__ = ["ExactIndex", "IVFIndex", "HNSWIndex", "build_index",
           "SearchResult", "topk_overlap"]


class SearchResult:
    """Top-k result of one index query: parallel ``items`` / ``scores``
    arrays (best first) plus the number of candidates actually scored."""

    __slots__ = ("items", "scores", "candidates_scored")

    def __init__(self, items: np.ndarray, scores: np.ndarray,
                 candidates_scored: int):
        self.items = items
        self.scores = scores
        self.candidates_scored = candidates_scored

    def __len__(self) -> int:
        return len(self.items)


def _as_queries(interests: np.ndarray) -> np.ndarray:
    queries = np.asarray(interests)
    if queries.ndim == 1:
        queries = queries[None, :]
    if queries.ndim != 2:
        raise ValueError(f"expected (K, D) interest queries, got shape "
                         f"{queries.shape}")
    return queries


def _apply_exclusions(scores: np.ndarray, exclude) -> np.ndarray:
    if exclude:
        scores[np.fromiter(exclude, dtype=np.int64) - 1] = -np.inf
    return scores


def _finite_topk(items: np.ndarray, scores: np.ndarray, order: np.ndarray,
                 candidates_scored: int) -> SearchResult:
    keep = np.isfinite(scores[order])
    order = order[keep]
    return SearchResult(items[order], scores[order], candidates_scored)


class ExactIndex:
    """Brute-force index over the ``(N, D)`` item block (row ``i`` = item
    ``i + 1``).

    The full sort mirrors the offline path exactly — scores are promoted to
    float64 and ordered with ``argsort(-scores)``, byte for byte the
    selection :func:`repro.recommend.recommend_batch` performs — so served
    exact-backend top-k lists are interchangeable with offline ones.
    """

    backend = "exact"

    def __init__(self, item_vectors: np.ndarray, score_mode: str = "max",
                 score_pow: float = 1.0):
        self.vectors = np.ascontiguousarray(item_vectors)
        self.num_items = int(self.vectors.shape[0])
        self.score_mode = score_mode
        self.score_pow = score_pow
        self.items = np.arange(1, self.num_items + 1, dtype=np.int64)

    def combined_scores(self, interests: np.ndarray) -> np.ndarray:
        """Readout scores ``(N,)`` of one user's interests over the catalog."""
        queries = _as_queries(interests)
        per_interest = queries @ self.vectors.T            # (K, N)
        return interest_readout(per_interest, self.score_mode, self.score_pow)

    def search(self, interests: np.ndarray, k: int,
               exclude=None) -> SearchResult:
        """Exact top-``k``; ``exclude`` item ids are masked to ``-inf``."""
        if k < 1:
            raise ValueError("k must be positive")
        scores = self.combined_scores(interests).astype(np.float64, copy=True)
        scores = _apply_exclusions(scores, exclude)
        order = np.argsort(-scores)[:k]
        return _finite_topk(self.items, scores, order, self.num_items)


def _kmeans(vectors: np.ndarray, num_clusters: int, iterations: int,
            rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Seeded Lloyd's k-means; empty clusters are reseeded from random rows."""
    n = vectors.shape[0]
    centroids = vectors[rng.choice(n, size=num_clusters, replace=False)].copy()
    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        distances = ((vectors[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=-1) \
            if n * num_clusters * vectors.shape[1] < 2_000_000 else None
        if distances is None:
            # Large case: ||x - c||^2 = ||x||^2 - 2 x·c + ||c||^2 without the
            # (N, C, D) broadcast temporary.
            cross = vectors @ centroids.T
            distances = (vectors ** 2).sum(axis=1, keepdims=True) - 2.0 * cross \
                + (centroids ** 2).sum(axis=1)[None, :]
        assignment = distances.argmin(axis=1)
        for cluster in range(num_clusters):
            members = assignment == cluster
            if members.any():
                centroids[cluster] = vectors[members].mean(axis=0)
            else:
                centroids[cluster] = vectors[rng.integers(n)]
    return centroids, assignment


class IVFIndex:
    """Inverted-file index: coarse k-means partitions + per-interest probing.

    Args:
        item_vectors: ``(N, D)`` catalog block, row ``i`` = item ``i + 1``.
        nlist: number of partitions (default ``round(sqrt(N))``).
        nprobe: partitions each interest vector probes (default
            ``max(1, nlist // 4)``); higher = better recall, slower.
        score_mode / score_pow: multi-interest readout, as in the model.
        seed: k-means initialization seed.
    """

    backend = "ivf"

    def __init__(self, item_vectors: np.ndarray, nlist: int | None = None,
                 nprobe: int | None = None, score_mode: str = "max",
                 score_pow: float = 1.0, seed: int = 0,
                 kmeans_iterations: int = 8):
        self.vectors = np.ascontiguousarray(item_vectors)
        self.num_items = int(self.vectors.shape[0])
        self.score_mode = score_mode
        self.score_pow = score_pow
        if nlist is None:
            nlist = max(1, int(round(np.sqrt(self.num_items))))
        nlist = min(nlist, self.num_items)
        self.nlist = nlist
        self.nprobe = max(1, nlist // 4) if nprobe is None else min(nprobe, nlist)
        rng = np.random.default_rng(seed)
        self.centroids, assignment = _kmeans(self.vectors, nlist,
                                             kmeans_iterations, rng)
        self.lists = [np.flatnonzero(assignment == c) for c in range(nlist)]

    def _candidate_rows(self, queries: np.ndarray) -> np.ndarray:
        """Union of the item rows in every probed partition."""
        affinity = queries @ self.centroids.T                    # (K, C)
        probe_count = min(self.nprobe, self.nlist)
        probed = np.argpartition(-affinity, probe_count - 1,
                                 axis=1)[:, :probe_count]
        clusters = np.unique(probed)
        return np.concatenate([self.lists[c] for c in clusters]) \
            if len(clusters) else np.arange(self.num_items, dtype=np.int64)

    def search(self, interests: np.ndarray, k: int,
               exclude=None) -> SearchResult:
        """Approximate top-``k``: probe, merge per-interest candidates,
        re-score exactly, rank."""
        if k < 1:
            raise ValueError("k must be positive")
        queries = _as_queries(interests)
        rows = self._candidate_rows(queries)
        per_interest = queries @ self.vectors[rows].T            # (K, M)
        combined = interest_readout(per_interest, self.score_mode,
                                    self.score_pow)
        scores = np.full(self.num_items, -np.inf, dtype=np.float64)
        scores[rows] = combined
        scores = _apply_exclusions(scores, exclude)
        take = min(k, self.num_items)
        if take < self.num_items:
            shortlist = np.argpartition(-scores, take - 1)[:take]
            order = shortlist[np.argsort(-scores[shortlist])]
        else:
            order = np.argsort(-scores)
        items = np.arange(1, self.num_items + 1, dtype=np.int64)
        return _finite_topk(items, scores, order, len(rows))


class HNSWIndex:
    """Hierarchical navigable-small-world graph index (seeded, NumPy-only).

    Construction follows the classic HNSW recipe: every item draws a level
    from a seeded geometric distribution (expected layer population shrinks
    by ``1/M`` per layer); items insert one at a time by greedy descent from
    the entry point through the upper layers, then an ``ef_construction``-wide
    beam on each layer at or below their level picks the ``M`` most similar
    neighbors, with reciprocal links pruned back to the per-layer degree cap.
    Similarity is the inner product — the same quantity the readout scores —
    so graph neighborhoods agree with what retrieval actually ranks.

    Search runs one descent *per interest vector* (each interest lands in its
    own region of the item space) and an ``ef_search``-wide bottom-layer
    beam; the union of beam candidates across interests is re-scored exactly
    with the model readout in float64, exclusions applied after re-scoring —
    identical post-processing to :class:`IVFIndex`, so the only approximation
    is which candidates the graph surfaces.

    Args:
        item_vectors: ``(N, D)`` catalog block, row ``i`` = item ``i + 1``.
        M: neighbors kept per node per layer (bottom layer keeps ``2 * M``).
        ef_construction: beam width while inserting (build quality).
        ef_search: beam width while querying — *the* recall/latency knob;
            raise it to walk more of the graph per interest.
        score_mode / score_pow: multi-interest readout, as in the model.
        seed: level-draw seed (construction is deterministic given it).
    """

    backend = "hnsw"

    def __init__(self, item_vectors: np.ndarray, M: int = 8,
                 ef_construction: int = 64, ef_search: int = 48,
                 score_mode: str = "max", score_pow: float = 1.0,
                 seed: int = 0):
        self.vectors = np.ascontiguousarray(item_vectors)
        self.num_items = int(self.vectors.shape[0])
        if self.num_items < 1:
            raise ValueError("cannot index an empty catalog")
        self.score_mode = score_mode
        self.score_pow = score_pow
        self.M = max(2, int(M))
        self.ef_construction = max(int(ef_construction), self.M + 1)
        self.ef_search = max(1, int(ef_search))
        rng = np.random.default_rng(seed)
        level_mult = 1.0 / np.log(self.M)
        draws = np.maximum(rng.random(self.num_items), 1e-12)
        self._levels = np.floor(-np.log(draws) * level_mult).astype(np.int64)
        layers = int(self._levels.max()) + 1
        # Per layer: node -> neighbor list (python lists; degree-capped).
        self._graph: list[dict[int, list[int]]] = [{} for _ in range(layers)]
        self._entry = 0
        self.max_level = 0
        for node in range(self.num_items):
            self._insert(node)

    # -- construction -----------------------------------------------------
    def _search_layer(self, query: np.ndarray, entries: list[int], ef: int,
                      layer: int) -> list[tuple[float, int]]:
        """Beam search on one layer: best-first over inner-product similarity.

        Returns up to ``ef`` ``(similarity, node)`` pairs (a min-heap list,
        not sorted).  Ties break on node id, keeping traversal deterministic.
        """
        adjacency = self._graph[layer]
        visited = set(entries)
        results: list[tuple[float, int]] = []
        candidates: list[tuple[float, int]] = []
        for node in entries:
            sim = float(query @ self.vectors[node])
            heapq.heappush(results, (sim, node))
            heapq.heappush(candidates, (-sim, node))
        while len(results) > ef:
            heapq.heappop(results)
        while candidates:
            negative, node = heapq.heappop(candidates)
            if len(results) >= ef and -negative < results[0][0]:
                break
            fresh = [n for n in adjacency.get(node, ()) if n not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            sims = self.vectors[fresh] @ query
            for neighbor, sim in zip(fresh, sims):
                sim = float(sim)
                if len(results) < ef or sim > results[0][0]:
                    heapq.heappush(results, (sim, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)
                    heapq.heappush(candidates, (-sim, neighbor))
        return results

    def _greedy_descent(self, query: np.ndarray, stop_layer: int) -> list[int]:
        """Entry point refined layer by layer down to ``stop_layer + 1``."""
        entry = [self._entry]
        for layer in range(self.max_level, stop_layer, -1):
            found = self._search_layer(query, entry, 1, layer)
            entry = [max(found)[1]]
        return entry

    def _insert(self, node: int) -> None:
        level = int(self._levels[node])
        vector = self.vectors[node]
        if not self._graph[0]:                       # very first node
            for layer in range(level + 1):
                self._graph[layer][node] = []
            self.max_level = level
            self._entry = node
            return
        entry = self._greedy_descent(vector, level)
        for layer in range(min(level, self.max_level), -1, -1):
            found = self._search_layer(vector, entry, self.ef_construction,
                                       layer)
            cap = 2 * self.M if layer == 0 else self.M
            best = sorted(found, reverse=True)[:self.M]
            self._graph[layer][node] = [n for _, n in best]
            for _, neighbor in best:
                links = self._graph[layer][neighbor]
                links.append(node)
                if len(links) > cap:
                    sims = self.vectors[links] @ self.vectors[neighbor]
                    order = np.argsort(-sims, kind="stable")[:cap]
                    self._graph[layer][neighbor] = [links[i] for i in order]
            entry = [n for _, n in found]
        if level > self.max_level:
            for layer in range(self.max_level + 1, level + 1):
                self._graph[layer][node] = []
            self.max_level = level
            self._entry = node

    # -- querying ---------------------------------------------------------
    def _candidate_rows(self, queries: np.ndarray,
                        ef_search: int | None = None) -> np.ndarray:
        """Union of bottom-layer beam candidates over every interest."""
        ef = self.ef_search if ef_search is None else max(1, int(ef_search))
        rows: set[int] = set()
        for query in queries:
            entry = self._greedy_descent(query, 0)
            found = self._search_layer(query, entry, ef, 0)
            rows.update(node for _, node in found)
        return np.fromiter(sorted(rows), dtype=np.int64, count=len(rows))

    def search(self, interests: np.ndarray, k: int, exclude=None,
               ef_search: int | None = None) -> SearchResult:
        """Approximate top-``k``: per-interest graph beams, union, exact
        re-score, rank.  ``ef_search`` overrides the constructor knob."""
        if k < 1:
            raise ValueError("k must be positive")
        queries = _as_queries(interests)
        rows = self._candidate_rows(queries, ef_search)
        per_interest = queries @ self.vectors[rows].T            # (K, M)
        combined = interest_readout(per_interest, self.score_mode,
                                    self.score_pow)
        scores = np.full(self.num_items, -np.inf, dtype=np.float64)
        scores[rows] = combined
        scores = _apply_exclusions(scores, exclude)
        take = min(k, self.num_items)
        if take < self.num_items:
            shortlist = np.argpartition(-scores, take - 1)[:take]
            order = shortlist[np.argsort(-scores[shortlist])]
        else:
            order = np.argsort(-scores)
        items = np.arange(1, self.num_items + 1, dtype=np.int64)
        return _finite_topk(items, scores, order, len(rows))


def topk_overlap(approx_items: np.ndarray, exact_items: np.ndarray) -> float:
    """Recall@k of an approximate result against the exact reference:
    ``|approx ∩ exact| / |exact|`` (1.0 when the reference is empty)."""
    if len(exact_items) == 0:
        return 1.0
    return len(np.intersect1d(approx_items, exact_items)) / len(exact_items)


def build_index(item_vectors: np.ndarray, backend: str = "exact",
                score_mode: str = "max", score_pow: float = 1.0, **kwargs):
    """Construct a retrieval index: ``backend`` is ``"exact"``, ``"ivf"``
    or ``"hnsw"``."""
    if backend == "exact":
        return ExactIndex(item_vectors, score_mode=score_mode,
                          score_pow=score_pow)
    if backend == "ivf":
        return IVFIndex(item_vectors, score_mode=score_mode,
                        score_pow=score_pow, **kwargs)
    if backend == "hnsw":
        return HNSWIndex(item_vectors, score_mode=score_mode,
                         score_pow=score_pow, **kwargs)
    raise ValueError(f"unknown index backend {backend!r}; "
                     f"choose 'exact', 'ivf' or 'hnsw'")
