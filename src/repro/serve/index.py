"""Multi-interest item retrieval indexes.

A retrieval index answers "given a user's K interest vectors, which items
score highest?" without the caller touching the full catalog.  Three
backends:

* :class:`ExactIndex` — brute-force matmul over the whole item block.  Its
  results are *identical* to offline full-catalog scoring (same readout, same
  float64 ordering as :func:`repro.recommend.recommend`), which makes it both
  the correctness baseline and the recall reference for approximate backends.
* :class:`IVFIndex` — an inverted-file (coarse-quantized) index: items are
  partitioned by a seeded NumPy k-means; each interest vector probes its
  ``nprobe`` closest partitions and the per-interest candidate sets are
  merged before exact re-scoring.  Classic ComiRec-style serving: K queries
  against an ANN structure, merge, rank.
* :class:`HNSWIndex` — a layered navigable-small-world proximity graph built
  with seeded level draws.  Each interest vector descends from the top-layer
  entry point and runs an ``ef_search``-wide beam over the bottom layer; the
  union of beam candidates across interests is re-scored exactly, so recall
  is tuned by one knob without touching the ranking math.  This is the
  second-generation index: where IVF's recall plateaus against its partition
  boundaries, widening ``ef_search`` walks the graph past them (the
  recall-vs-p99 Pareto in BENCH_P7).

Scores use the same multi-interest readout as the model (``max`` or
label-aware ``softmax``), so a candidate's index score equals its model
score.  All approximate backends apply seen-item exclusion *after* exact
re-scoring, mirroring the offline path.
"""

from __future__ import annotations

import heapq
import threading

import numpy as np

from .ops import interest_readout

__all__ = ["ExactIndex", "IVFIndex", "HNSWIndex", "build_index",
           "load_index_state", "SearchResult", "topk_overlap",
           "INDEX_RUNTIME_OPTIONS", "SERIALIZABLE_BACKENDS"]

# Search-time knobs that can be re-applied to a deserialized index without
# rebuilding it (everything else — partition counts, graph degrees, code
# sizes — is baked into the serialized structure).
INDEX_RUNTIME_OPTIONS = frozenset({"nprobe", "ef_search", "refine"})

# Backends whose built structure can be serialized into an artifact bundle
# and re-attached in O(mmap) (``exact`` has no structure worth shipping).
SERIALIZABLE_BACKENDS = ("ivf", "hnsw", "pq", "ivf_pq", "exact_sq")


class SearchResult:
    """Top-k result of one index query: parallel ``items`` / ``scores``
    arrays (best first) plus the number of candidates actually scored.
    Quantized backends additionally report their scan/refine split
    (``scan_seconds`` / ``refine_seconds`` / ``refined``); other backends
    leave those at zero."""

    __slots__ = ("items", "scores", "candidates_scored", "scan_seconds",
                 "refine_seconds", "refined")

    def __init__(self, items: np.ndarray, scores: np.ndarray,
                 candidates_scored: int, scan_seconds: float = 0.0,
                 refine_seconds: float = 0.0, refined: int = 0):
        self.items = items
        self.scores = scores
        self.candidates_scored = candidates_scored
        self.scan_seconds = scan_seconds
        self.refine_seconds = refine_seconds
        self.refined = refined

    def __len__(self) -> int:
        return len(self.items)


class _ScratchBuffers:
    """Thread-local reusable arrays for the per-call score vectors.

    Every ``search`` used to allocate a fresh ``(N,)`` float64 buffer
    (``astype(copy=True)`` on the exact path, ``np.full(-inf)`` on the
    approximate ones).  Shapes repeat across a micro-batch — one buffer per
    ``(shape, dtype)`` per thread covers the whole batch without churn.
    Returned arrays alias the pool: callers must copy out anything that
    outlives the call (the fancy-indexed top-k slices the searches return
    already do).
    """

    def __init__(self):
        self._local = threading.local()

    def take(self, shape, dtype) -> np.ndarray:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        key = (tuple(shape), np.dtype(dtype).str)
        array = pool.get(key)
        if array is None:
            array = pool[key] = np.empty(shape, dtype=dtype)
        return array

    def filled(self, shape, dtype, value) -> np.ndarray:
        array = self.take(shape, dtype)
        array.fill(value)
        return array


scratch = _ScratchBuffers()


def _as_queries(interests: np.ndarray) -> np.ndarray:
    queries = np.asarray(interests)
    if queries.ndim == 1:
        queries = queries[None, :]
    if queries.ndim != 2:
        raise ValueError(f"expected (K, D) interest queries, got shape "
                         f"{queries.shape}")
    return queries


def _apply_exclusions(scores: np.ndarray, exclude) -> np.ndarray:
    if exclude:
        scores[np.fromiter(exclude, dtype=np.int64) - 1] = -np.inf
    return scores


def _finite_topk(items: np.ndarray, scores: np.ndarray, order: np.ndarray,
                 candidates_scored: int, scan_seconds: float = 0.0,
                 refine_seconds: float = 0.0, refined: int = 0) -> SearchResult:
    keep = np.isfinite(scores[order])
    order = order[keep]
    # Fancy indexing copies, so the result does not alias scratch buffers.
    return SearchResult(items[order], scores[order], candidates_scored,
                        scan_seconds, refine_seconds, refined)


class ExactIndex:
    """Brute-force index over the ``(N, D)`` item block (row ``i`` = item
    ``i + 1``).

    The full sort mirrors the offline path exactly — scores are promoted to
    float64 and ordered with ``argsort(-scores)``, byte for byte the
    selection :func:`repro.recommend.recommend_batch` performs — so served
    exact-backend top-k lists are interchangeable with offline ones.
    """

    backend = "exact"

    def __init__(self, item_vectors: np.ndarray, score_mode: str = "max",
                 score_pow: float = 1.0):
        self.vectors = np.ascontiguousarray(item_vectors)
        self.num_items = int(self.vectors.shape[0])
        self.score_mode = score_mode
        self.score_pow = score_pow
        self.items = np.arange(1, self.num_items + 1, dtype=np.int64)

    def combined_scores(self, interests: np.ndarray) -> np.ndarray:
        """Readout scores ``(N,)`` of one user's interests over the catalog."""
        queries = _as_queries(interests)
        per_interest = queries @ self.vectors.T            # (K, N)
        return interest_readout(per_interest, self.score_mode, self.score_pow)

    def resident_bytes(self) -> int:
        """Bytes that must stay hot for scanning (the full item block)."""
        return int(self.vectors.nbytes)

    def search(self, interests: np.ndarray, k: int,
               exclude=None) -> SearchResult:
        """Exact top-``k``; ``exclude`` item ids are masked to ``-inf``."""
        if k < 1:
            raise ValueError("k must be positive")
        scores = scratch.take((self.num_items,), np.float64)
        np.copyto(scores, self.combined_scores(interests), casting="safe")
        scores = _apply_exclusions(scores, exclude)
        order = np.argsort(-scores)[:k]
        return _finite_topk(self.items, scores, order, self.num_items)


def _kmeans(vectors: np.ndarray, num_clusters: int, iterations: int,
            rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Seeded Lloyd's k-means; empty clusters are reseeded from random rows."""
    n = vectors.shape[0]
    centroids = vectors[rng.choice(n, size=num_clusters, replace=False)].copy()
    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        distances = ((vectors[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=-1) \
            if n * num_clusters * vectors.shape[1] < 2_000_000 else None
        if distances is None:
            # Large case: ||x - c||^2 = ||x||^2 - 2 x·c + ||c||^2 without the
            # (N, C, D) broadcast temporary.
            cross = vectors @ centroids.T
            distances = (vectors ** 2).sum(axis=1, keepdims=True) - 2.0 * cross \
                + (centroids ** 2).sum(axis=1)[None, :]
        assignment = distances.argmin(axis=1)
        for cluster in range(num_clusters):
            members = assignment == cluster
            if members.any():
                centroids[cluster] = vectors[members].mean(axis=0)
            else:
                centroids[cluster] = vectors[rng.integers(n)]
    return centroids, assignment


class IVFIndex:
    """Inverted-file index: coarse k-means partitions + per-interest probing.

    When ``nprobe`` is not given it is **auto-calibrated** at build time: a
    seeded sample of catalog vectors plays held-out queries, and the default
    becomes the smallest probe count whose probed partitions cover at least
    ``target_recall`` of each query's exact top-``calibration_k`` (the old
    shipped default, ``nlist // 4``, sat at recall@10 ≈ 0.65 in BENCH_P2).

    Args:
        item_vectors: ``(N, D)`` catalog block, row ``i`` = item ``i + 1``.
        nlist: number of partitions (default ``round(sqrt(N))``).
        nprobe: partitions each interest vector probes; higher = better
            recall, slower.  ``None`` (default) auto-calibrates as above.
        score_mode / score_pow: multi-interest readout, as in the model.
        seed: k-means initialization + calibration-sample seed.
        target_recall / calibration_queries / calibration_k: the coverage
            target and seeded sample used when ``nprobe`` is auto-calibrated.
    """

    backend = "ivf"

    def __init__(self, item_vectors: np.ndarray, nlist: int | None = None,
                 nprobe: int | None = None, score_mode: str = "max",
                 score_pow: float = 1.0, seed: int = 0,
                 kmeans_iterations: int = 8, target_recall: float = 0.9,
                 calibration_queries: int = 32, calibration_k: int = 10):
        self.vectors = np.ascontiguousarray(item_vectors)
        self.num_items = int(self.vectors.shape[0])
        self.score_mode = score_mode
        self.score_pow = score_pow
        if nlist is None:
            nlist = max(1, int(round(np.sqrt(self.num_items))))
        nlist = min(nlist, self.num_items)
        self.nlist = nlist
        rng = np.random.default_rng(seed)
        self.centroids, assignment = _kmeans(self.vectors, nlist,
                                             kmeans_iterations, rng)
        self.lists = [np.flatnonzero(assignment == c) for c in range(nlist)]
        if nprobe is None:
            self.nprobe, self.calibration = self._calibrate_nprobe(
                assignment, rng, target_recall, calibration_queries,
                calibration_k)
            self.auto_calibrated = True
        else:
            self.nprobe = max(1, min(int(nprobe), nlist))
            self.calibration = None
            self.auto_calibrated = False

    def _calibrate_nprobe(self, assignment: np.ndarray,
                          rng: np.random.Generator, target_recall: float,
                          num_queries: int, k: int) -> tuple[int, dict]:
        """Smallest ``nprobe`` whose probed partitions cover ``target_recall``
        of the exact top-``k`` on a seeded held-out query sample.

        O(Q·(N + C)): for each sampled query, every exact-top-``k`` item's
        partition is mapped (via the inverse permutation of the query's
        centroid-affinity order) to the probe depth at which it would be
        reached; coverage(nprobe) is then one cumulative histogram away.
        """
        sample = rng.choice(self.num_items,
                            size=min(num_queries, self.num_items),
                            replace=False)
        queries = self.vectors[sample]
        k = min(k, self.num_items)
        exact = queries @ self.vectors.T                          # (Q, N)
        top = np.argpartition(-exact, k - 1, axis=1)[:, :k]
        affinity = queries @ self.centroids.T                     # (Q, C)
        order = np.argsort(-affinity, axis=1, kind="stable")
        rank = np.empty_like(order)                               # inverse perm
        np.put_along_axis(
            rank, order,
            np.broadcast_to(np.arange(self.nlist, dtype=np.int64),
                            order.shape),
            axis=1)
        # Probe depth at which each exact-top item's partition is reached.
        needed = np.take_along_axis(rank, assignment[top], axis=1)
        coverage = np.bincount(needed.ravel() + 1,
                               minlength=self.nlist + 1).cumsum()
        coverage = coverage / needed.size
        target = min(float(target_recall), 1.0)
        hit = coverage >= target
        nprobe = int(np.argmax(hit)) if hit.any() else self.nlist
        nprobe = max(1, min(nprobe, self.nlist))
        return nprobe, {"target_recall": target,
                        "queries": int(len(sample)), "k": int(k),
                        "achieved_coverage": float(coverage[nprobe])}

    def _candidate_rows(self, queries: np.ndarray) -> np.ndarray:
        """Union of the item rows in every probed partition."""
        affinity = queries @ self.centroids.T                    # (K, C)
        probe_count = min(self.nprobe, self.nlist)
        probed = np.argpartition(-affinity, probe_count - 1,
                                 axis=1)[:, :probe_count]
        clusters = np.unique(probed)
        return np.concatenate([self.lists[c] for c in clusters]) \
            if len(clusters) else np.arange(self.num_items, dtype=np.int64)

    def search(self, interests: np.ndarray, k: int,
               exclude=None) -> SearchResult:
        """Approximate top-``k``: probe, merge per-interest candidates,
        re-score exactly, rank."""
        if k < 1:
            raise ValueError("k must be positive")
        queries = _as_queries(interests)
        rows = self._candidate_rows(queries)
        per_interest = queries @ self.vectors[rows].T            # (K, M)
        combined = interest_readout(per_interest, self.score_mode,
                                    self.score_pow)
        scores = scratch.filled((self.num_items,), np.float64, -np.inf)
        scores[rows] = combined
        scores = _apply_exclusions(scores, exclude)
        take = min(k, self.num_items)
        if take < self.num_items:
            shortlist = np.argpartition(-scores, take - 1)[:take]
            order = shortlist[np.argsort(-scores[shortlist])]
        else:
            order = np.argsort(-scores)
        items = np.arange(1, self.num_items + 1, dtype=np.int64)
        return _finite_topk(items, scores, order, len(rows))

    def resident_bytes(self) -> int:
        """Bytes hot at scan time: item block + centroids + list rows."""
        return int(self.vectors.nbytes + self.centroids.nbytes
                   + sum(rows.nbytes for rows in self.lists))

    # -- serialization ----------------------------------------------------
    def state(self) -> tuple[dict, dict]:
        """``(meta, arrays)`` capturing the built structure (not the item
        block, which lives in the artifact)."""
        sizes = np.fromiter((len(rows) for rows in self.lists), dtype=np.int64,
                            count=self.nlist)
        list_rows = np.concatenate(self.lists) if self.num_items else \
            np.empty(0, dtype=np.int64)
        meta = {"backend": self.backend, "nlist": int(self.nlist),
                "nprobe": int(self.nprobe),
                "auto_calibrated": bool(self.auto_calibrated),
                "calibration": self.calibration,
                "score_mode": self.score_mode,
                "score_pow": float(self.score_pow)}
        return meta, {"centroids": self.centroids, "list_rows": list_rows,
                      "list_sizes": sizes}

    @classmethod
    def from_state(cls, item_vectors: np.ndarray, meta: dict, arrays: dict,
                   score_mode: str = "max",
                   score_pow: float = 1.0) -> "IVFIndex":
        """Re-attach a serialized index in O(mmap) — no k-means re-run."""
        index = cls.__new__(cls)
        index.vectors = np.ascontiguousarray(item_vectors)
        index.num_items = int(index.vectors.shape[0])
        index.score_mode = score_mode
        index.score_pow = score_pow
        index.nlist = int(meta["nlist"])
        index.nprobe = int(meta["nprobe"])
        index.auto_calibrated = bool(meta.get("auto_calibrated", False))
        index.calibration = meta.get("calibration")
        index.centroids = np.asarray(arrays["centroids"])
        sizes = np.asarray(arrays["list_sizes"], dtype=np.int64)
        rows = np.asarray(arrays["list_rows"], dtype=np.int64)
        bounds = np.cumsum(sizes)[:-1]
        index.lists = np.split(rows, bounds)
        return index


class HNSWIndex:
    """Hierarchical navigable-small-world graph index (seeded, NumPy-only).

    Construction follows the classic HNSW recipe: every item draws a level
    from a seeded geometric distribution (expected layer population shrinks
    by ``1/M`` per layer); items insert one at a time by greedy descent from
    the entry point through the upper layers, then an ``ef_construction``-wide
    beam on each layer at or below their level picks the ``M`` most similar
    neighbors, with reciprocal links pruned back to the per-layer degree cap.
    Similarity is the inner product — the same quantity the readout scores —
    so graph neighborhoods agree with what retrieval actually ranks.

    Search runs one descent *per interest vector* (each interest lands in its
    own region of the item space) and an ``ef_search``-wide bottom-layer
    beam; the union of beam candidates across interests is re-scored exactly
    with the model readout in float64, exclusions applied after re-scoring —
    identical post-processing to :class:`IVFIndex`, so the only approximation
    is which candidates the graph surfaces.

    Args:
        item_vectors: ``(N, D)`` catalog block, row ``i`` = item ``i + 1``.
        M: neighbors kept per node per layer (bottom layer keeps ``2 * M``).
        ef_construction: beam width while inserting (build quality).
        ef_search: beam width while querying — *the* recall/latency knob;
            raise it to walk more of the graph per interest.
        score_mode / score_pow: multi-interest readout, as in the model.
        seed: level-draw seed (construction is deterministic given it).
    """

    backend = "hnsw"

    def __init__(self, item_vectors: np.ndarray, M: int = 8,
                 ef_construction: int = 64, ef_search: int = 48,
                 score_mode: str = "max", score_pow: float = 1.0,
                 seed: int = 0):
        self.vectors = np.ascontiguousarray(item_vectors)
        self.num_items = int(self.vectors.shape[0])
        if self.num_items < 1:
            raise ValueError("cannot index an empty catalog")
        self.score_mode = score_mode
        self.score_pow = score_pow
        self.M = max(2, int(M))
        self.ef_construction = max(int(ef_construction), self.M + 1)
        self.ef_search = max(1, int(ef_search))
        rng = np.random.default_rng(seed)
        level_mult = 1.0 / np.log(self.M)
        draws = np.maximum(rng.random(self.num_items), 1e-12)
        self._levels = np.floor(-np.log(draws) * level_mult).astype(np.int64)
        layers = int(self._levels.max()) + 1
        # Per layer: node -> neighbor list (python lists; degree-capped).
        self._graph: list[dict[int, list[int]]] = [{} for _ in range(layers)]
        self._entry = 0
        self.max_level = 0
        for node in range(self.num_items):
            self._insert(node)

    # -- construction -----------------------------------------------------
    def _search_layer(self, query: np.ndarray, entries: list[int], ef: int,
                      layer: int) -> list[tuple[float, int]]:
        """Beam search on one layer: best-first over inner-product similarity.

        Returns up to ``ef`` ``(similarity, node)`` pairs (a min-heap list,
        not sorted).  Ties break on node id, keeping traversal deterministic.
        """
        adjacency = self._graph[layer]
        visited = set(entries)
        results: list[tuple[float, int]] = []
        candidates: list[tuple[float, int]] = []
        for node in entries:
            sim = float(query @ self.vectors[node])
            heapq.heappush(results, (sim, node))
            heapq.heappush(candidates, (-sim, node))
        while len(results) > ef:
            heapq.heappop(results)
        while candidates:
            negative, node = heapq.heappop(candidates)
            if len(results) >= ef and -negative < results[0][0]:
                break
            fresh = [n for n in adjacency.get(node, ()) if n not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            sims = self.vectors[fresh] @ query
            for neighbor, sim in zip(fresh, sims):
                sim = float(sim)
                if len(results) < ef or sim > results[0][0]:
                    heapq.heappush(results, (sim, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)
                    heapq.heappush(candidates, (-sim, neighbor))
        return results

    def _greedy_descent(self, query: np.ndarray, stop_layer: int) -> list[int]:
        """Entry point refined layer by layer down to ``stop_layer + 1``."""
        entry = [self._entry]
        for layer in range(self.max_level, stop_layer, -1):
            found = self._search_layer(query, entry, 1, layer)
            entry = [max(found)[1]]
        return entry

    def _insert(self, node: int) -> None:
        level = int(self._levels[node])
        vector = self.vectors[node]
        if not self._graph[0]:                       # very first node
            for layer in range(level + 1):
                self._graph[layer][node] = []
            self.max_level = level
            self._entry = node
            return
        entry = self._greedy_descent(vector, level)
        for layer in range(min(level, self.max_level), -1, -1):
            found = self._search_layer(vector, entry, self.ef_construction,
                                       layer)
            cap = 2 * self.M if layer == 0 else self.M
            best = sorted(found, reverse=True)[:self.M]
            self._graph[layer][node] = [n for _, n in best]
            for _, neighbor in best:
                links = self._graph[layer][neighbor]
                links.append(node)
                if len(links) > cap:
                    sims = self.vectors[links] @ self.vectors[neighbor]
                    order = np.argsort(-sims, kind="stable")[:cap]
                    self._graph[layer][neighbor] = [links[i] for i in order]
            entry = [n for _, n in found]
        if level > self.max_level:
            for layer in range(self.max_level + 1, level + 1):
                self._graph[layer][node] = []
            self.max_level = level
            self._entry = node

    # -- querying ---------------------------------------------------------
    def _candidate_rows(self, queries: np.ndarray,
                        ef_search: int | None = None) -> np.ndarray:
        """Union of bottom-layer beam candidates over every interest."""
        ef = self.ef_search if ef_search is None else max(1, int(ef_search))
        rows: set[int] = set()
        for query in queries:
            entry = self._greedy_descent(query, 0)
            found = self._search_layer(query, entry, ef, 0)
            rows.update(node for _, node in found)
        return np.fromiter(sorted(rows), dtype=np.int64, count=len(rows))

    def search(self, interests: np.ndarray, k: int, exclude=None,
               ef_search: int | None = None) -> SearchResult:
        """Approximate top-``k``: per-interest graph beams, union, exact
        re-score, rank.  ``ef_search`` overrides the constructor knob."""
        if k < 1:
            raise ValueError("k must be positive")
        queries = _as_queries(interests)
        rows = self._candidate_rows(queries, ef_search)
        per_interest = queries @ self.vectors[rows].T            # (K, M)
        combined = interest_readout(per_interest, self.score_mode,
                                    self.score_pow)
        scores = scratch.filled((self.num_items,), np.float64, -np.inf)
        scores[rows] = combined
        scores = _apply_exclusions(scores, exclude)
        take = min(k, self.num_items)
        if take < self.num_items:
            shortlist = np.argpartition(-scores, take - 1)[:take]
            order = shortlist[np.argsort(-scores[shortlist])]
        else:
            order = np.argsort(-scores)
        items = np.arange(1, self.num_items + 1, dtype=np.int64)
        return _finite_topk(items, scores, order, len(rows))

    def resident_bytes(self) -> int:
        """Bytes hot at search time: item block + levels + adjacency (links
        counted at int64 width; the in-memory python lists cost more)."""
        links = sum(len(neighbors) for layer in self._graph
                    for neighbors in layer.values())
        return int(self.vectors.nbytes + self._levels.nbytes + 8 * links)

    # -- serialization ----------------------------------------------------
    def state(self) -> tuple[dict, dict]:
        """``(meta, arrays)``: levels plus one CSR (nodes/indptr/indices)
        per layer — everything ``from_state`` needs to skip re-insertion."""
        meta = {"backend": self.backend, "M": int(self.M),
                "ef_construction": int(self.ef_construction),
                "ef_search": int(self.ef_search),
                "max_level": int(self.max_level), "entry": int(self._entry),
                "layers": len(self._graph),
                "score_mode": self.score_mode,
                "score_pow": float(self.score_pow)}
        arrays = {"levels": self._levels}
        for layer, adjacency in enumerate(self._graph):
            nodes = np.fromiter(adjacency.keys(), dtype=np.int64,
                                count=len(adjacency))
            sizes = np.fromiter((len(adjacency[int(n)]) for n in nodes),
                                dtype=np.int64, count=len(nodes))
            indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
            np.cumsum(sizes, out=indptr[1:])
            indices = np.fromiter(
                (n for node in nodes for n in adjacency[int(node)]),
                dtype=np.int64, count=int(indptr[-1]))
            arrays[f"layer{layer}_nodes"] = nodes
            arrays[f"layer{layer}_indptr"] = indptr
            arrays[f"layer{layer}_indices"] = indices
        return meta, arrays

    @classmethod
    def from_state(cls, item_vectors: np.ndarray, meta: dict, arrays: dict,
                   score_mode: str = "max",
                   score_pow: float = 1.0) -> "HNSWIndex":
        """Re-attach a serialized graph in O(links) — no insertion pass."""
        index = cls.__new__(cls)
        index.vectors = np.ascontiguousarray(item_vectors)
        index.num_items = int(index.vectors.shape[0])
        index.score_mode = score_mode
        index.score_pow = score_pow
        index.M = int(meta["M"])
        index.ef_construction = int(meta["ef_construction"])
        index.ef_search = int(meta["ef_search"])
        index.max_level = int(meta["max_level"])
        index._entry = int(meta["entry"])
        index._levels = np.asarray(arrays["levels"], dtype=np.int64)
        index._graph = []
        for layer in range(int(meta["layers"])):
            nodes = np.asarray(arrays[f"layer{layer}_nodes"], dtype=np.int64)
            indptr = np.asarray(arrays[f"layer{layer}_indptr"],
                                dtype=np.int64)
            indices = np.asarray(arrays[f"layer{layer}_indices"],
                                 dtype=np.int64)
            adjacency = {
                int(node): indices[indptr[i]:indptr[i + 1]].tolist()
                for i, node in enumerate(nodes)}
            index._graph.append(adjacency)
        return index


def topk_overlap(approx_items: np.ndarray, exact_items: np.ndarray) -> float:
    """Recall@k of an approximate result against the exact reference:
    ``|approx ∩ exact| / |exact|`` (1.0 when the reference is empty)."""
    if len(exact_items) == 0:
        return 1.0
    return len(np.intersect1d(approx_items, exact_items)) / len(exact_items)


def build_index(item_vectors: np.ndarray, backend: str = "exact",
                score_mode: str = "max", score_pow: float = 1.0, **kwargs):
    """Construct a retrieval index: ``backend`` is ``"exact"``, ``"ivf"``,
    ``"hnsw"``, or one of the quantized backends ``"pq"``, ``"ivf_pq"``,
    ``"exact_sq"`` (see :mod:`repro.serve.quant`)."""
    if backend == "exact":
        return ExactIndex(item_vectors, score_mode=score_mode,
                          score_pow=score_pow)
    if backend == "ivf":
        return IVFIndex(item_vectors, score_mode=score_mode,
                        score_pow=score_pow, **kwargs)
    if backend == "hnsw":
        return HNSWIndex(item_vectors, score_mode=score_mode,
                         score_pow=score_pow, **kwargs)
    if backend in ("pq", "ivf_pq", "exact_sq"):
        from .quant import build_quant_index       # lazy: quant imports us
        return build_quant_index(item_vectors, backend, score_mode=score_mode,
                                 score_pow=score_pow, **kwargs)
    raise ValueError(f"unknown index backend {backend!r}; choose 'exact', "
                     f"'ivf', 'hnsw', 'pq', 'ivf_pq' or 'exact_sq'")


def load_index_state(item_vectors: np.ndarray, meta: dict, arrays: dict,
                     score_mode: str = "max", score_pow: float = 1.0,
                     options: dict | None = None):
    """Reconstruct a serialized index (``state()`` output) in O(attach).

    ``options`` may carry :data:`INDEX_RUNTIME_OPTIONS` knobs (``nprobe``,
    ``ef_search``, ``refine``) to re-tune the deserialized index without a
    rebuild; unknown keys raise so a structural option (``nlist``, ``M``,
    ``m``…) is never silently ignored against a prebuilt structure.
    """
    backend = meta.get("backend")
    if backend == "ivf":
        index = IVFIndex.from_state(item_vectors, meta, arrays,
                                    score_mode=score_mode,
                                    score_pow=score_pow)
    elif backend == "hnsw":
        index = HNSWIndex.from_state(item_vectors, meta, arrays,
                                     score_mode=score_mode,
                                     score_pow=score_pow)
    elif backend in ("pq", "ivf_pq", "exact_sq"):
        from .quant import load_quant_state        # lazy: quant imports us
        index = load_quant_state(item_vectors, meta, arrays,
                                 score_mode=score_mode, score_pow=score_pow)
    else:
        raise ValueError(f"cannot deserialize index backend {backend!r}; "
                         f"serializable backends: {SERIALIZABLE_BACKENDS}")
    for name, value in (options or {}).items():
        if name not in INDEX_RUNTIME_OPTIONS or not hasattr(index, name):
            raise ValueError(
                f"option {name!r} cannot be applied to a prebuilt "
                f"{backend!r} index; rebuild with build_index() instead")
        setattr(index, name, value)
    return index
