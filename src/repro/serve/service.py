"""The synchronous in-process serving facade.

:class:`RecommenderService` wires the serving subsystem together: a frozen
:class:`~repro.serve.artifact.InferenceArtifact`, its NumPy encoder, a
retrieval index (exact, IVF or HNSW), a versioned
:class:`~repro.serve.history.HistoryStore`, the TTL + LRU interest cache,
the micro-batching engine and always-on serving metrics.

Request path: ``recommend(user, k)`` enqueues into the micro-batcher; the
worker encodes all queued users as one batch (cache misses only), queries
the index with each user's K interest vectors (seen items excluded), and
returns ranked :class:`~repro.recommend.Recommendation` lists.  Per-stage
latencies, QPS, cache hit rate and (for approximate backends) sampled
recall-vs-exact land in :meth:`stats`.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from repro.data.batching import collate
from repro.obs import span
from repro.obs.metrics import MetricsRegistry
from repro.recommend import Recommendation

from .artifact import InferenceArtifact
from .batcher import MicroBatcher
from .cache import InterestCache
from .encoder import build_encoder
from .history import HistoryStore
from .index import (INDEX_RUNTIME_OPTIONS, ExactIndex, build_index,
                    load_index_state, topk_overlap)
from .metrics import ServingMetrics

__all__ = ["RecommenderService"]


class RecommenderService:
    """Online multi-interest recommender over a frozen artifact.

    Args:
        artifact: the exported model snapshot.
        history: user histories (seed with ``HistoryStore.from_dataset``).
        index_backend: ``"exact"`` (parity with offline scoring), ``"ivf"``
            or ``"hnsw"`` (approximate, faster on large catalogs), or a
            quantized backend ``"pq"`` / ``"ivf_pq"`` / ``"exact_sq"``
            (compact codes; see :mod:`repro.serve.quant`).
        index_options: extra kwargs for the index constructor (e.g. ``nlist``
            and ``nprobe`` for IVF; ``M``, ``ef_construction`` and
            ``ef_search`` for HNSW; ``m`` and ``refine`` for PQ).
        use_prebuilt: when the artifact ships a serialized structure for
            ``index_backend`` (a ``dir`` bundle exported with ``prebuilt``),
            attach it in O(mmap) instead of rebuilding — unless
            ``index_options`` carries structural knobs, which force a fresh
            build (runtime knobs ``nprobe`` / ``ef_search`` / ``refine``
            re-tune the prebuilt structure in place).
        max_batch / max_wait_ms: micro-batching triggers.
        cache_capacity / cache_ttl_seconds: interest-cache bounds.
        max_len: history truncation at encode time (matches the offline
            ``recommend`` default).
        exclude_seen: mask items the user already interacted with.
        recall_probe_every: with an approximate backend, every N-th request
            is shadow-scored on an exact index and the top-k overlap recorded
            as recall (0 disables probing).
        clock: monotonic time source (injectable for tests).
        registry: metrics registry handed to :class:`ServingMetrics`
            (default: a private registry; pass the process-wide one to
            publish into the shared telemetry namespace).
    """

    def __init__(self, artifact: InferenceArtifact, history: HistoryStore,
                 index_backend: str = "exact",
                 index_options: dict | None = None,
                 max_batch: int = 32, max_wait_ms: float = 5.0,
                 cache_capacity: int = 4096, cache_ttl_seconds: float = 300.0,
                 max_len: int = 50, exclude_seen: bool = True,
                 recall_probe_every: int = 0, use_prebuilt: bool = True,
                 clock: Callable[[], float] = time.monotonic,
                 registry: MetricsRegistry | None = None):
        self.artifact = artifact
        self.history = history
        if tuple(history.schema.behaviors) != tuple(artifact.behaviors):
            raise ValueError(
                f"history schema {history.schema.behaviors} does not match "
                f"artifact schema {artifact.behaviors}")
        self.encoder = build_encoder(artifact)
        self.max_len = max_len
        self.exclude_seen = exclude_seen
        self._clock = clock
        self.metrics = ServingMetrics(clock, registry=registry)
        self.cache = InterestCache(capacity=cache_capacity,
                                   ttl_seconds=cache_ttl_seconds, clock=clock)
        self.index, self._index_prebuilt = self._make_index(
            index_backend, dict(index_options or {}), use_prebuilt)
        if self._index_prebuilt:
            self.metrics.record_prebuilt_load()
        self.recall_probe_every = int(recall_probe_every)
        self._reference_index: ExactIndex | None = None
        if self.index.backend != "exact" and self.recall_probe_every > 0:
            self._reference_index = ExactIndex(
                artifact.item_vectors(), score_mode=self.encoder.score_mode,
                score_pow=self.encoder.score_pow)
        self.claim_wait_seconds = 5.0
        self._served = 0
        self._batcher = MicroBatcher(self._process_batch, max_batch=max_batch,
                                     max_wait_ms=max_wait_ms, clock=clock,
                                     on_flush=self.metrics.record_batch)

    def _make_index(self, backend: str, options: dict,
                    use_prebuilt: bool) -> tuple[object, bool]:
        """Attach the artifact's serialized index when possible, else build.

        A prebuilt structure is used only when every requested option is a
        runtime knob (:data:`~repro.serve.index.INDEX_RUNTIME_OPTIONS`) —
        structural options (``nlist``, ``M``, ``m``…) mean the caller wants
        a *different* structure than the one shipped, so we build it.
        """
        shipped = self.artifact.prebuilt.get(backend)
        runtime_only = all(name in INDEX_RUNTIME_OPTIONS for name in options)
        if use_prebuilt and shipped is not None and runtime_only:
            index = load_index_state(
                self.artifact.item_vectors(), shipped["meta"],
                shipped["arrays"], score_mode=self.encoder.score_mode,
                score_pow=self.encoder.score_pow, options=options)
            return index, True
        index = build_index(self.artifact.item_vectors(), backend,
                            score_mode=self.encoder.score_mode,
                            score_pow=self.encoder.score_pow, **options)
        return index, False

    # ------------------------------------------------------------------
    # request surface
    # ------------------------------------------------------------------
    def recommend(self, user: int, k: int = 10) -> list[Recommendation]:
        """Top-``k`` novel items for one user (micro-batched under load)."""
        if k < 1:
            self.metrics.record_error()
            raise ValueError("k must be positive")
        if not self.history.has_user(user):
            self.metrics.record_error()
            raise KeyError(f"user {user} not in the history store")
        started = self._clock()
        with span("serve.request", user=user, k=k):
            try:
                result = self._batcher.submit((user, k))
            except BaseException:
                self.metrics.record_error()
                raise
        self.metrics.record_request(self._clock() - started)
        return result

    def recommend_many(self, users: Sequence[int], k: int = 10
                       ) -> dict[int, list[Recommendation]]:
        """One explicit batch (bypasses the queue; shares all other stages)."""
        if k < 1:
            raise ValueError("k must be positive")
        for user in users:
            if not self.history.has_user(user):
                raise KeyError(f"user {user} not in the history store")
        started = self._clock()
        results = self._process_batch([(user, k) for user in users])
        elapsed = self._clock() - started
        self.metrics.record_batch(len(users), [0.0] * len(users))
        for _ in users:
            self.metrics.record_request(elapsed)
        return dict(zip(users, results))

    def recommend_pairs(self, pairs: Sequence[tuple[int, int]]
                        ) -> list[list[Recommendation]]:
        """One explicit batch of ``(user, k)`` pairs, results aligned with
        the input (duplicates allowed; bypasses the queue like
        :meth:`recommend_many`).  The replica workers use this so a whole
        micro-batch crosses the process boundary as one task."""
        for user, k in pairs:
            if k < 1:
                raise ValueError("k must be positive")
            if not self.history.has_user(user):
                raise KeyError(f"user {user} not in the history store")
        started = self._clock()
        results = self._process_batch(list(pairs))
        elapsed = self._clock() - started
        self.metrics.record_batch(len(pairs), [0.0] * len(pairs))
        for _ in pairs:
            self.metrics.record_request(elapsed)
        return results

    def append_event(self, user: int, item: int, behavior: str,
                     timestamp: int | None = None) -> int:
        """Record a new interaction and invalidate the user's cached
        interests; returns the new history version."""
        version = self.history.append(user, item, behavior, timestamp)
        self.cache.invalidate(user)
        return version

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------
    def _encode_users(self, users: Sequence[int]) -> np.ndarray:
        """One collated encode of ``users``; returns ``(len(users), K, D)``."""
        examples = [self.history.example(user, self.max_len)
                    for user in users]
        batch = collate(examples, self.history.schema)
        return self.encoder.interests(batch)

    def _interests_for(self, users: Sequence[int]) -> dict[int, np.ndarray]:
        """Per-user ``(K, D)`` interest vectors, cache-first with single-flight.

        Cache misses this call owns (first claimant for the ``(user,
        version)`` key) are encoded as one collated batch; misses another
        thread is already encoding are *waited on* instead of re-encoded —
        the suppressed duplicate work lands on the
        ``serve.cache.stampede_suppressed`` counter.  If an owner abandons
        (encode failure) or the fulfilled entry expires before we read it,
        we fall back to encoding those users ourselves.
        """
        unique = list(dict.fromkeys(users))
        versions = {user: self.history.version(user) for user in unique}
        interests: dict[int, np.ndarray] = {}
        owned: list[int] = []
        waits: list[tuple[int, object]] = []
        for user in unique:
            cached = self.cache.get(user, versions[user])
            self.metrics.record_cache(cached is not None)
            if cached is not None:
                interests[user] = cached
                continue
            event = self.cache.claim(user, versions[user])
            if event is None:
                owned.append(user)
            else:
                self.metrics.record_stampede_suppressed()
                waits.append((user, event))
        if owned:
            try:
                encoded = self._encode_users(owned)
            except BaseException:
                for user in owned:
                    self.cache.abandon(user, versions[user])
                raise
            for row, user in enumerate(owned):
                vectors = encoded[row]
                self.cache.fulfill(user, versions[user], vectors)
                interests[user] = vectors
        stragglers: list[int] = []
        for user, event in waits:
            event.wait(timeout=self.claim_wait_seconds)
            cached = self.cache.get(user, versions[user])
            if cached is None:
                stragglers.append(user)
            else:
                interests[user] = cached
        if stragglers:
            encoded = self._encode_users(stragglers)
            for row, user in enumerate(stragglers):
                vectors = encoded[row]
                self.cache.put(user, versions[user], vectors)
                interests[user] = vectors
        return interests

    def _process_batch(self, payloads: Sequence[tuple[int, int]]
                       ) -> list[list[Recommendation]]:
        with span("serve.batch", size=len(payloads)):
            started = self._clock()
            with span("serve.encode", users=len(set(u for u, _ in payloads))):
                interests = self._interests_for([user for user, _ in payloads])
            self.metrics.record_stage("encode", self._clock() - started)
            results: list[list[Recommendation]] = []
            with span("serve.retrieve_rank"):
                for user, k in payloads:
                    exclude = (self.history.seen(user)
                               if self.exclude_seen else None)
                    retrieve_start = self._clock()
                    found = self.index.search(interests[user], k,
                                              exclude=exclude)
                    rank_start = self._clock()
                    self.metrics.record_stage("retrieve",
                                              rank_start - retrieve_start)
                    self.metrics.record_search(found)
                    results.append([
                        Recommendation(item=int(item), score=float(score),
                                       rank=rank)
                        for rank, (item, score) in enumerate(zip(found.items,
                                                                 found.scores))
                    ])
                    self._served += 1
                    if (self._reference_index is not None
                            and self._served % self.recall_probe_every == 0):
                        reference = self._reference_index.search(
                            interests[user], k, exclude=exclude)
                        self.metrics.record_recall(
                            topk_overlap(found.items, reference.items))
                    self.metrics.record_stage("rank",
                                              self._clock() - rank_start)
            return results

    # ------------------------------------------------------------------
    # observability & lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-serializable snapshot of every serving counter."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"]["size"] = len(self.cache)
        snapshot["cache"]["evictions"] = self.cache.evictions
        snapshot["cache"]["expirations"] = self.cache.expirations
        index_info = {"backend": self.index.backend,
                      "num_items": self.index.num_items,
                      "prebuilt": self._index_prebuilt,
                      "resident_bytes": int(self.index.resident_bytes())}
        if self.index.backend == "ivf":
            index_info["nlist"] = self.index.nlist
            index_info["nprobe"] = self.index.nprobe
            index_info["auto_calibrated"] = self.index.auto_calibrated
            if self.index.calibration is not None:
                index_info["calibration"] = self.index.calibration
        elif self.index.backend == "hnsw":
            index_info["M"] = self.index.M
            index_info["ef_search"] = self.index.ef_search
            index_info["max_level"] = self.index.max_level
        elif self.index.backend in ("pq", "ivf_pq", "exact_sq"):
            index_info.update(self.index.describe())
        snapshot["index"] = index_info
        return snapshot

    def report(self) -> str:
        """Human-readable metrics table (profiler style)."""
        return self.metrics.report()

    def close(self) -> None:
        """Stop the micro-batching worker (idempotent)."""
        self._batcher.close()

    def __enter__(self) -> "RecommenderService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
