"""TTL + LRU cache of per-user interest vectors.

Encoding a user (sequence embedding → transformers → interest extraction) is
the expensive stage of a request; interest vectors are small ``(K, D)``
arrays.  The cache keys on ``(user, history_version)`` so a history append —
which bumps the version — makes the stale entry unreachable immediately;
:meth:`invalidate` additionally drops it eagerly.  Entries expire after
``ttl_seconds`` (bounding staleness of the *item table* view) and the least
recently used entry is evicted beyond ``capacity``.

The clock is injectable so tests drive expiry deterministically.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Hashable

__all__ = ["InterestCache"]


class InterestCache:
    """Bounded TTL + LRU map from ``(user, version)`` to interest vectors."""

    def __init__(self, capacity: int = 4096, ttl_seconds: float = 300.0,
                 clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: "OrderedDict[Hashable, tuple[float, object]]" = OrderedDict()
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(user: int, version: int) -> tuple[int, int]:
        return (user, version)

    def get(self, user: int, version: int):
        """The cached value, or None on miss/expiry (expired entries are
        dropped; hits refresh LRU recency)."""
        key = self._key(user, version)
        entry = self._entries.get(key)
        if entry is None:
            return None
        expires, value = entry
        if self._clock() >= expires:
            del self._entries[key]
            self.expirations += 1
            return None
        self._entries.move_to_end(key)
        return value

    def put(self, user: int, version: int, value) -> None:
        """Insert (or refresh) an entry, evicting LRU beyond capacity."""
        key = self._key(user, version)
        self._entries[key] = (self._clock() + self.ttl_seconds, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, user: int) -> int:
        """Eagerly drop every cached version for ``user``; returns the count."""
        stale = [key for key in self._entries if key[0] == user]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
