"""TTL + LRU cache of per-user interest vectors, with stampede suppression.

Encoding a user (sequence embedding → transformers → interest extraction) is
the expensive stage of a request; interest vectors are small ``(K, D)``
arrays.  The cache keys on ``(user, history_version)`` so a history append —
which bumps the version — makes the stale entry unreachable immediately;
:meth:`invalidate` additionally drops it eagerly.  Entries expire after
``ttl_seconds`` (bounding staleness of the *item table* view) and the least
recently used entry is evicted beyond ``capacity``.

Single-flight discipline: with the async network front-end, several in-flight
requests can miss on the same ``(user, version)`` key at once — a classic
cache stampede that would encode the same user once per request.  The
claim/fulfill protocol deduplicates that work: the first thread to
:meth:`claim` a key owns the encode; later claimants receive a
``threading.Event`` to wait on and read the fulfilled value from the cache,
and every such wait is counted in :attr:`stampedes_suppressed` (exported as
the ``serve.cache.stampede_suppressed`` counter by
:class:`~repro.serve.metrics.ServingMetrics`).  An owner that fails calls
:meth:`abandon`, releasing waiters to encode for themselves — degraded work,
never a deadlock.

All public methods are thread-safe; the clock is injectable so tests drive
expiry deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Hashable

from repro.obs.lockwatch import watched_rlock

__all__ = ["InterestCache"]


class InterestCache:
    """Bounded TTL + LRU map from ``(user, version)`` to interest vectors."""

    def __init__(self, capacity: int = 4096, ttl_seconds: float = 300.0,
                 clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: "OrderedDict[Hashable, tuple[float, object]]" = OrderedDict()
        self._lock = watched_rlock("serve.cache.interest")
        self._inflight: dict[Hashable, threading.Event] = {}
        self.evictions = 0
        self.expirations = 0
        self.stampedes_suppressed = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def _key(user: int, version: int) -> tuple[int, int]:
        return (user, version)

    def get(self, user: int, version: int):
        """The cached value, or None on miss/expiry (expired entries are
        dropped; hits refresh LRU recency)."""
        key = self._key(user, version)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            expires, value = entry
            if self._clock() >= expires:
                del self._entries[key]
                self.expirations += 1
                return None
            self._entries.move_to_end(key)
            return value

    def put(self, user: int, version: int, value) -> None:
        """Insert (or refresh) an entry, evicting LRU beyond capacity."""
        key = self._key(user, version)
        with self._lock:
            self._entries[key] = (self._clock() + self.ttl_seconds, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    # ------------------------------------------------------------------
    # single-flight claims (stampede suppression)
    # ------------------------------------------------------------------
    def claim(self, user: int, version: int) -> threading.Event | None:
        """Claim the right to encode ``(user, version)``.

        Returns ``None`` when the caller now owns the claim (it must finish
        with :meth:`fulfill` or :meth:`abandon`), or the owning thread's
        ``Event`` to wait on when another claim is already in flight — in
        which case the suppressed-stampede counter is bumped.
        """
        key = self._key(user, version)
        with self._lock:
            event = self._inflight.get(key)
            if event is not None:
                self.stampedes_suppressed += 1
                return event
            self._inflight[key] = threading.Event()
            return None

    def fulfill(self, user: int, version: int, value) -> None:
        """Publish an owned claim's value and release every waiter."""
        key = self._key(user, version)
        self.put(user, version, value)
        with self._lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    def abandon(self, user: int, version: int) -> None:
        """Drop an owned claim without a value (encode failed); waiters wake
        and fall back to encoding for themselves."""
        key = self._key(user, version)
        with self._lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    def invalidate(self, user: int) -> int:
        """Eagerly drop every cached version for ``user``; returns the count."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == user]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
