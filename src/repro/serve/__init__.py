"""Online serving subsystem: frozen artifacts, retrieval index, request engine.

Layers (each usable on its own):

- :mod:`repro.serve.artifact` — export a trained model into a pure-NumPy
  inference artifact loadable without the autodiff graph: a legacy ``.npz``
  file or a memory-mappable directory bundle that can also carry prebuilt
  index structures (replicas attach in O(mmap) and share page-cache pages).
- :mod:`repro.serve.encoder` — autodiff-free forward pass that maps user
  histories to multi-interest vectors, bitwise-equal to the eval-mode model.
- :mod:`repro.serve.index` — exact, IVF (coarse-quantized) and HNSW (layered
  graph) retrieval over the frozen item table, queried with multi-interest
  vectors.
- :mod:`repro.serve.quant` — quantized retrieval: int8 scalar-quantized and
  product-quantized (ADC) item tables with an optional exact refine step,
  behind the same ``search`` API (backends ``exact_sq``, ``pq``, ``ivf_pq``).
- :mod:`repro.serve.history` / :mod:`~repro.serve.cache` /
  :mod:`~repro.serve.batcher` — versioned user histories, a TTL + LRU cache
  of interest vectors (with single-flight stampede suppression), and the
  micro-batching request engine.
- :mod:`repro.serve.metrics` — per-stage latency histograms, QPS, cache
  hit rate and recall-vs-exact counters.
- :mod:`repro.serve.service` — the :class:`RecommenderService` facade that
  wires everything together (also behind ``python -m repro serve``).
- :mod:`repro.serve.net` — the network tier: NDJSON TCP front-end with
  bounded in-flight load shedding and graceful drain, replica sharding over
  forked worker processes with user-hash routing and respawn-on-death, a
  blocking client and a closed-loop load generator.
"""

from .artifact import (InferenceArtifact, export_artifact, load_artifact,
                       write_artifact)
from .batcher import MicroBatcher
from .cache import InterestCache
from .encoder import MisslServingEncoder, build_encoder, register_encoder
from .history import HistoryStore
from .index import (ExactIndex, HNSWIndex, IVFIndex, SearchResult,
                    build_index, load_index_state, topk_overlap)
from .metrics import LatencyHistogram, ServingMetrics
from .quant import (IVFPQIndex, PQIndex, ProductQuantizer, ScalarQuantizer,
                    SQIndex)
from .net import (LoadReport, LocalBackend, NetClient, NetServer, ReplicaSet,
                  ReplicaUnavailable, build_backend, normalize_request,
                  run_load)
from .service import RecommenderService

__all__ = [
    "InferenceArtifact",
    "export_artifact",
    "write_artifact",
    "load_artifact",
    "MisslServingEncoder",
    "build_encoder",
    "register_encoder",
    "ExactIndex",
    "IVFIndex",
    "HNSWIndex",
    "SQIndex",
    "PQIndex",
    "IVFPQIndex",
    "ScalarQuantizer",
    "ProductQuantizer",
    "SearchResult",
    "build_index",
    "load_index_state",
    "topk_overlap",
    "HistoryStore",
    "InterestCache",
    "MicroBatcher",
    "LatencyHistogram",
    "ServingMetrics",
    "RecommenderService",
    "LoadReport",
    "LocalBackend",
    "NetClient",
    "NetServer",
    "ReplicaSet",
    "ReplicaUnavailable",
    "build_backend",
    "normalize_request",
    "run_load",
]
