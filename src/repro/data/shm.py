"""Shared-memory array transport for the multiprocess pipeline.

Queue-based worker transport pickles every ndarray payload twice (serialize
on the worker, deserialize on the parent) and copies it through a pipe in
4 KiB chunks — for batch-sized arrays that serialization dominates the cost
of shipping work between processes (BENCH_P5 measured sharded evaluation at
0.81× serial for exactly this reason).  This module provides the zero-copy
alternative used by :class:`~repro.data.pipeline.WorkerPool`,
:class:`~repro.data.pipeline.PrefetchLoader` and the sharded evaluation /
data-parallel training paths:

* :class:`ShmArena` — a pre-sized pool of fixed-width slots inside one
  ``multiprocessing.shared_memory`` segment with a cross-process free list.
  Writers borrow a slot, copy their arrays in once, and send only a tiny
  :class:`ShmBlock` descriptor ``(slot, offsets, shapes, dtypes)`` through
  the queue; readers map zero-copy views directly onto the segment.
* :func:`encode_payload` / :func:`decode_payload` — structure-preserving
  codecs that swap the ndarray leaves of a payload (dicts, lists, tuples,
  dataclasses such as :class:`~repro.data.batching.Batch`) for arena
  references, leaving everything else to the ordinary pickle path.
* :class:`ShmParamMirror` — a version-stamped broadcast buffer for flat
  parameter vectors, used to keep long-lived worker model replicas in sync
  with the parent between optimizer steps (data-parallel training) and
  between evaluation passes (persistent eval sharding).

Robustness contract: every segment is owned by the process that created it
and is unlinked by a ``weakref.finalize`` finalizer — it fires on garbage
collection, explicit :meth:`close`, *and* interpreter exit, so segments are
reclaimed even when a worker crashes or the parent aborts mid-epoch.  A
writer that cannot borrow a slot in time (reader holding leases too long,
oversized payload) falls back to the pickle path instead of deadlocking —
degraded throughput, never a hang.  Attached (non-owning) processes
unregister from the ``resource_tracker`` so a worker exit never unlinks a
segment the parent still uses.

``SHM-DISCIPLINE`` (see :mod:`repro.lint`) keeps every ``SharedMemory``
construction and attach inside this module, so lifetime management and the
fallback policy cannot be bypassed piecemeal elsewhere in the tree.
"""

from __future__ import annotations

import queue as queue_mod
import multiprocessing as mp
import secrets
import weakref
from dataclasses import dataclass, fields as dataclass_fields, is_dataclass
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.obs import get_logger

__all__ = [
    "ShmArena",
    "ShmBlock",
    "ShmParamMirror",
    "encode_payload",
    "decode_payload",
    "wrap_context",
    "unwrap_context",
    "DEFAULT_MIN_SHM_BYTES",
]

_log = get_logger(__name__)

_ALIGN = 64
DEFAULT_MIN_SHM_BYTES = 1024
"""Arrays smaller than this ride the ordinary pickle path — descriptor
bookkeeping costs more than pickling a few hundred bytes."""


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _unregister_attachment(segment: shared_memory.SharedMemory) -> None:
    """Detach a non-owning process from the resource tracker's ledger.

    Attaching registers the segment with this process's ``resource_tracker``,
    which would unlink it when *this* process exits — yanking the memory out
    from under the owner.  Only the owning process may unlink.
    """
    try:  # pragma: no cover - tracker internals vary across Python patch levels
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
    except Exception:
        pass


class _SegmentState:
    """Segment lifetime bookkeeping shared by finalizers and view leases.

    ``SharedMemory.close()`` unmaps the segment even while numpy views built
    over its buffer are alive (numpy snapshots the pointer rather than
    pinning the mmap), so an eager unmap turns every outstanding zero-copy
    view into a segfault.  This state object counts live view leases and
    defers the actual unmap until the last one is collected: ``cleanup``
    (called from ``close()`` and from the garbage-collection finalizer)
    unlinks the name immediately — reclaiming ``/dev/shm`` space — but only
    unmaps once ``live`` drops to zero.
    """

    __slots__ = ("segment", "owner", "live", "unmap_pending", "unmapped")

    def __init__(self, segment: shared_memory.SharedMemory, owner: bool):
        self.segment = segment
        self.owner = owner
        self.live = 0
        self.unmap_pending = False
        self.unmapped = False

    def _unmap(self) -> None:
        self.unmapped = True
        self.unmap_pending = False
        try:
            self.segment.close()
        except BufferError:  # pragma: no cover - belt and braces
            pass

    def cleanup(self) -> None:
        """Unlink (owner) now; unmap now or when the last view lease drops."""
        if self.owner:
            self.owner = False
            try:
                self.segment.unlink()
            except FileNotFoundError:
                pass
            except OSError:  # pragma: no cover - platform-specific races
                pass
        if self.unmapped:
            return
        if self.live > 0:
            self.unmap_pending = True
        else:
            self._unmap()

    def lease(self) -> None:
        """Register one outstanding view lease against the mapping."""
        self.live += 1

    def unlease(self) -> None:
        """Drop one lease; performs the deferred unmap on the last one."""
        self.live -= 1
        if self.live <= 0 and self.unmap_pending:
            self._unmap()


@dataclass(frozen=True)
class ShmBlock:
    """Descriptor of arrays written into one arena slot (crosses the queue).

    ``entries`` holds one ``(offset, shape, dtype-str)`` triple per array,
    with offsets relative to the slot base.  The descriptor pickles to a few
    hundred bytes regardless of payload size.
    """

    slot: int
    entries: tuple[tuple[int, tuple[int, ...], str], ...]

    @property
    def nbytes(self) -> int:
        """Total payload bytes described by this block."""
        return sum(int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
                   for _, shape, dtype in self.entries)


class _SlotLease:
    """Releases an arena slot once every view mapped from it is collected."""

    __slots__ = ("_arena", "_state", "_slot", "_outstanding")

    def __init__(self, arena: "ShmArena", slot: int, count: int):
        self._arena = arena
        self._state = arena._state
        self._slot = slot
        self._outstanding = count
        self._state.lease()

    def drop(self) -> None:
        """One view died; free the slot when the last one goes."""
        self._outstanding -= 1
        if self._outstanding <= 0:
            self._arena.release_slot(self._slot)
            self._state.unlease()


class ShmArena:
    """A pool of fixed-size slots in one shared-memory segment.

    Args:
        slot_bytes: capacity of one slot; payloads that do not fit fall back
            to pickle.  Size it from an upper bound over the payloads you
            expect (batch collate bounds, flat gradient size, ...).
        num_slots: slots in flight at once — writers block (then fall back)
            when all slots are leased, so size it to the pipeline's bounded
            prefetch depth plus margin.

    The creating process owns the segment (and unlinks it); worker processes
    attach by inheritance (``fork``) or by name (pickle → ``spawn``) and
    never unlink.  The free list is a ``multiprocessing`` queue of slot
    indices, safe for any number of concurrent writers and readers.
    """

    def __init__(self, slot_bytes: int, num_slots: int):
        if slot_bytes < _ALIGN:
            raise ValueError(f"slot_bytes must be >= {_ALIGN}, got {slot_bytes}")
        if num_slots < 1:
            raise ValueError(f"need at least one slot, got {num_slots}")
        self.slot_bytes = _aligned(int(slot_bytes))
        self.num_slots = int(num_slots)
        name = f"repro-arena-{secrets.token_hex(6)}"
        self._segment = shared_memory.SharedMemory(
            name=name, create=True, size=self.slot_bytes * self.num_slots)
        self._free: mp.Queue = mp.Queue()
        for slot in range(self.num_slots):
            self._free.put(slot)
        self._state = _SegmentState(self._segment, owner=True)
        self._finalizer = weakref.finalize(self, self._state.cleanup)

    # -- pickling (spawn-based workers attach by name) -------------------
    def __getstate__(self):
        return {"name": self._segment.name, "slot_bytes": self.slot_bytes,
                "num_slots": self.num_slots, "free": self._free}

    def __setstate__(self, state):
        self.slot_bytes = state["slot_bytes"]
        self.num_slots = state["num_slots"]
        self._segment = shared_memory.SharedMemory(name=state["name"])
        _unregister_attachment(self._segment)
        self._free = state["free"]
        self._state = _SegmentState(self._segment, owner=False)
        self._finalizer = weakref.finalize(self, self._state.cleanup)

    @property
    def name(self) -> str:
        """OS-level segment name (``/dev/shm/<name>`` on Linux)."""
        return self._segment.name

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (or the finalizer fired)."""
        return not self._finalizer.alive

    # -- writing ---------------------------------------------------------
    def write(self, arrays: Sequence[np.ndarray],
              timeout: float = 1.0) -> ShmBlock | None:
        """Copy ``arrays`` into a free slot; None → caller must fall back.

        Returns ``None`` (without blocking indefinitely) when the payload
        exceeds ``slot_bytes`` or no slot frees up within ``timeout``.
        """
        offsets = []
        cursor = 0
        for array in arrays:
            cursor = _aligned(cursor)
            offsets.append(cursor)
            cursor += array.nbytes
        if cursor > self.slot_bytes:
            return None
        try:
            slot = self._free.get(timeout=timeout)
        except queue_mod.Empty:
            return None
        base = slot * self.slot_bytes
        entries = []
        for array, offset in zip(arrays, offsets):
            flat = np.ascontiguousarray(array)
            view = np.ndarray(flat.shape, dtype=flat.dtype,
                              buffer=self._segment.buf, offset=base + offset)
            view[...] = flat
            entries.append((offset, tuple(flat.shape), flat.dtype.str))
        return ShmBlock(slot=slot, entries=tuple(entries))

    # -- reading ---------------------------------------------------------
    def open(self, block: ShmBlock, copy: bool = False) -> list[np.ndarray]:
        """Arrays described by ``block``: zero-copy views or private copies.

        With ``copy=False`` the returned arrays are read-only views onto the
        segment; the slot is released automatically once every view (and
        anything derived from it) has been garbage collected.  With
        ``copy=True`` the arrays are private and the slot is released
        immediately — use this for long-lived results.
        """
        base = block.slot * self.slot_bytes
        views = []
        for offset, shape, dtype in block.entries:
            view = np.ndarray(shape, dtype=np.dtype(dtype),
                              buffer=self._segment.buf, offset=base + offset)
            views.append(view)
        if copy:
            arrays = [view.copy() for view in views]
            del views
            self.release_slot(block.slot)
            return arrays
        lease = _SlotLease(self, block.slot, len(views))
        if not views:
            self.release_slot(block.slot)
        for view in views:
            view.flags.writeable = False
            weakref.finalize(view, lease.drop)
        return views

    def release_slot(self, slot: int) -> None:
        """Return one slot to the free list (idempotence is the caller's job)."""
        try:
            self._free.put(slot)
        except (ValueError, OSError):  # pragma: no cover - interpreter teardown
            pass

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Unlink (owner) and unmap the segment; safe to call repeatedly."""
        try:
            self._free.close()
            self._free.cancel_join_thread()
        except (ValueError, OSError):  # pragma: no cover
            pass
        self._finalizer()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Structure-preserving payload codec
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _ArrayRef:
    """Placeholder for the ``index``-th pooled array of a payload."""

    index: int


@dataclass(frozen=True)
class _DataclassShell:
    """A dataclass instance with its array fields swapped for references."""

    cls: type
    fields: dict


def _strip_arrays(obj, arrays: list, min_bytes: int):
    if isinstance(obj, np.ndarray) and obj.dtype != object and obj.nbytes >= min_bytes:
        arrays.append(obj)
        return _ArrayRef(len(arrays) - 1)
    if isinstance(obj, dict):
        return {key: _strip_arrays(value, arrays, min_bytes)
                for key, value in obj.items()}
    if isinstance(obj, tuple):
        return tuple(_strip_arrays(value, arrays, min_bytes) for value in obj)
    if isinstance(obj, list):
        return [_strip_arrays(value, arrays, min_bytes) for value in obj]
    if is_dataclass(obj) and not isinstance(obj, type):
        return _DataclassShell(type(obj), {
            field.name: _strip_arrays(getattr(obj, field.name), arrays, min_bytes)
            for field in dataclass_fields(obj) if field.init
        })
    return obj


def _fill_arrays(obj, arrays: list):
    if isinstance(obj, _ArrayRef):
        return arrays[obj.index]
    if isinstance(obj, dict):
        return {key: _fill_arrays(value, arrays) for key, value in obj.items()}
    if isinstance(obj, tuple):
        return tuple(_fill_arrays(value, arrays) for value in obj)
    if isinstance(obj, list):
        return [_fill_arrays(value, arrays) for value in obj]
    if isinstance(obj, _DataclassShell):
        return obj.cls(**{name: _fill_arrays(value, arrays)
                          for name, value in obj.fields.items()})
    return obj


def encode_payload(obj, arena: ShmArena | None,
                   min_bytes: int = DEFAULT_MIN_SHM_BYTES,
                   timeout: float = 1.0) -> tuple:
    """Swap the ndarray leaves of ``obj`` for arena references.

    Returns a tagged tuple for the queue: ``("shm", block, shell)`` when the
    arrays were written into a slot, or ``("raw", obj)`` when there was
    nothing worth pooling or the arena could not take the payload (oversize
    or no free slot within ``timeout``) — the graceful-degradation path.
    """
    if arena is None or arena.closed:
        return ("raw", obj)
    arrays: list[np.ndarray] = []
    shell = _strip_arrays(obj, arrays, min_bytes)
    if not arrays:
        return ("raw", obj)
    block = arena.write(arrays, timeout=timeout)
    if block is None:
        return ("raw", obj)
    return ("shm", block, shell)


def decode_payload(tagged: tuple, arena: ShmArena | None,
                   copy: bool = False) -> tuple:
    """Inverse of :func:`encode_payload`.

    Returns ``(value, shm_bytes)`` where ``shm_bytes`` is how much of the
    payload crossed through shared memory (0 for the pickle path) — the
    parent-side signal feeding the ``pipeline.shm.*`` metrics.
    """
    kind = tagged[0]
    if kind == "raw":
        return tagged[1], 0
    if kind != "shm":
        raise ValueError(f"unknown payload tag {kind!r}")
    _, block, shell = tagged
    if arena is None:
        raise RuntimeError("shm-encoded payload arrived without an arena")
    arrays = arena.open(block, copy=copy)
    return _fill_arrays(shell, arrays), block.nbytes


def wrap_context(tagged: tuple, context) -> tuple:
    """Attach a packed trace context to an already-encoded payload.

    The context rides the task queue as an outer ``("ctx", packed, inner)``
    envelope around the ``("raw", ...)`` / ``("shm", ...)`` codec output, so
    shared-memory transport and trace propagation compose without either
    knowing about the other.  ``context=None`` is the telemetry-disabled
    fast path: the payload is returned untouched, costing nothing.
    """
    if context is None:
        return tagged
    return ("ctx", context, tagged)


def unwrap_context(tagged) -> tuple:
    """Split a queue payload into ``(packed_context | None, inner_payload)``.

    Payloads that never went through :func:`wrap_context` — including bare
    non-tuple objects — come back unchanged with a None context.
    """
    if (isinstance(tagged, tuple) and len(tagged) == 3
            and tagged[0] == "ctx"):
        return tagged[1], tagged[2]
    return None, tagged


# ----------------------------------------------------------------------
# Versioned parameter broadcast
# ----------------------------------------------------------------------

class ShmParamMirror:
    """A version-stamped flat array broadcast from the parent to workers.

    The parent owns a single segment holding ``count`` scalars plus a
    version header; :meth:`publish` overwrites the payload and bumps the
    version, and each worker's :meth:`refresh` compares the version against
    the last one it consumed, copying the payload out only when it changed.
    Synchronization piggybacks on the task queue: the parent publishes
    strictly before submitting the tasks that depend on the new values, so a
    worker processing such a task always observes ``version >= published``.
    """

    _HEADER = _ALIGN  # one cacheline for the uint64 version counter

    def __init__(self, count: int, dtype=np.float32):
        if count < 1:
            raise ValueError(f"need at least one element, got {count}")
        self.count = int(count)
        self.dtype = np.dtype(dtype)
        name = f"repro-mirror-{secrets.token_hex(6)}"
        self._segment = shared_memory.SharedMemory(
            name=name, create=True,
            size=self._HEADER + self.count * self.dtype.itemsize)
        self._seen = 0
        self._init_views()
        self._version_view[0] = 0
        self._state = _SegmentState(self._segment, owner=True)
        self._finalizer = weakref.finalize(self, self._state.cleanup)

    def _init_views(self) -> None:
        self._version_view = np.ndarray((1,), dtype=np.uint64,
                                        buffer=self._segment.buf, offset=0)
        self.data = np.ndarray((self.count,), dtype=self.dtype,
                               buffer=self._segment.buf, offset=self._HEADER)

    def __getstate__(self):
        return {"name": self._segment.name, "count": self.count,
                "dtype": self.dtype.str}

    def __setstate__(self, state):
        self.count = state["count"]
        self.dtype = np.dtype(state["dtype"])
        self._segment = shared_memory.SharedMemory(name=state["name"])
        _unregister_attachment(self._segment)
        self._seen = 0
        self._init_views()
        self._state = _SegmentState(self._segment, owner=False)
        self._finalizer = weakref.finalize(self, self._state.cleanup)

    @property
    def name(self) -> str:
        """OS-level segment name."""
        return self._segment.name

    @property
    def version(self) -> int:
        """The currently published version (0 = nothing published yet)."""
        return int(self._version_view[0])

    def publish(self, values: np.ndarray | None = None) -> int:
        """Overwrite the payload (or just bump after writing ``.data``).

        Returns the new version number.  Only the owning process publishes.
        """
        if values is not None:
            self.data[...] = values
        self._version_view[0] += 1
        return self.version

    def refresh(self, out: np.ndarray) -> bool:
        """Copy the payload into ``out`` iff a newer version was published.

        Returns True when ``out`` was updated.  Tracks the last consumed
        version per process, so repeated calls between publishes are free.
        """
        version = self.version
        if version == self._seen:
            return False
        out[...] = self.data
        self._seen = version
        return True

    def close(self) -> None:
        """Unlink (owner) and unmap the segment; safe to call repeatedly."""
        # Views hold buffer exports; drop them so close() can unmap.
        self._version_view = None
        self.data = None
        self._finalizer()

    def __enter__(self) -> "ShmParamMirror":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
