"""Synthetic multi-behavior dataset generators.

The MISSL paper evaluates on public e-commerce logs (Taobao / Tmall / Yelp).
Those dumps are not available offline, so this module generates interaction
logs from an explicit user-behavior model that plants the three structural
properties the multi-behavior multi-interest literature exploits:

1. **Latent multi-interest structure** — items belong to interest clusters;
   each user is a sparse mixture over a few clusters.  Multi-interest models
   (K > 1 interest vectors) should therefore beat single-vector models.
2. **Behavior funnel** — dense, noisy auxiliary behaviors (``view``) foreshadow
   the sparse target behavior (``buy``): a purchased item was usually viewed
   (sometimes carted/faved) earlier, either in the same session or a previous
   one.  Multi-behavior models that read the auxiliary stream should beat
   target-only models.
3. **Heavy-tailed popularity and behavior noise** — item popularity within a
   cluster is Zipf-distributed, and a fraction of views are uniform-random
   "accidental clicks", so robust interest extraction matters.

Three presets mirror the relative scale/behavior-mix of the public datasets
(scaled down so CPU training finishes in seconds):

========  ===========================  =========================
preset    behaviors (target last)      character
========  ===========================  =========================
taobao    view, cart, fav, buy         very dense views, sparse buys
tmall     view, fav, cart, buy         moderate views, funnel heavier
yelp      view, like, tip              short sequences, 3 behaviors
========  ===========================  =========================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .dataset import MultiBehaviorDataset
from .schema import BehaviorSchema, Interaction, TAOBAO_SCHEMA, TMALL_SCHEMA, YELP_SCHEMA

__all__ = ["SyntheticConfig", "generate", "taobao_like", "tmall_like", "yelp_like",
           "DATASET_PRESETS"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the generative model.

    Attributes:
        num_users / num_items: vocabulary sizes (items are 1-based).
        num_interests: number of latent item clusters planted in the corpus.
        interests_per_user: how many clusters a user's mixture touches.
        sessions_per_user: mean number of browsing sessions (Poisson).
        session_length: mean views per session (Poisson, min 1).
        funnel: per-auxiliary-behavior conditional probability that a view is
            escalated one funnel stage (e.g. ``{"cart": 0.25, "fav": 0.35}``
            means view→cart w.p. 0.25 and cart→fav w.p. 0.35).  Stages are
            the schema's auxiliary behaviors after ``view``, in order.
        target_per_session: probability a session ends with a target event.
        delayed_target_fraction: of target events, the fraction that purchase
            an item viewed in an *earlier* session instead of the current one
            (prevents "copy the last view" from being a perfect strategy).
        fresh_target_fraction: of target events, the fraction that purchase a
            **novel** item drawn from the user's current interest cluster
            rather than something already viewed.  This caps what pure
            memorization (ItemKNN-style "recommend what they touched") can
            achieve and rewards genuine interest modeling, mirroring the
            discovery component of real purchase logs.
        noise_rate: probability a view is a uniform-random accidental click.
        popularity_alpha: Zipf exponent of within-cluster item popularity.
        min_target_events: users are topped up to at least this many target
            events so leave-one-out splitting always has train/valid/test.
        interest_drift: probability per session that the user's mixture is
            re-drawn (models evolving interests).
        schema: the behavior vocabulary; first behavior must be the dense
            root of the funnel (``view``).
    """

    num_users: int = 200
    num_items: int = 400
    num_interests: int = 4
    interests_per_user: int = 2
    sessions_per_user: float = 6.0
    session_length: float = 6.0
    funnel: dict[str, float] = field(default_factory=lambda: {"cart": 0.3, "fav": 0.4})
    target_per_session: float = 0.55
    delayed_target_fraction: float = 0.5
    fresh_target_fraction: float = 0.35
    noise_rate: float = 0.1
    popularity_alpha: float = 1.2
    min_target_events: int = 3
    interest_drift: float = 0.05
    schema: BehaviorSchema = TAOBAO_SCHEMA
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.num_interests < 1:
            raise ValueError("need at least one interest cluster")
        if not 1 <= self.interests_per_user <= self.num_interests:
            raise ValueError("interests_per_user must be in [1, num_interests]")
        if not 0.0 <= self.noise_rate < 1.0:
            raise ValueError(f"noise_rate out of range: {self.noise_rate}")
        for stage in self.funnel:
            if stage not in self.schema.behaviors:
                raise ValueError(f"funnel stage {stage!r} not in schema {self.schema.behaviors}")


def _cluster_assignments(config: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """Assign each item (1-based) to an interest cluster, roughly evenly."""
    clusters = np.arange(1, config.num_items + 1) % config.num_interests
    rng.shuffle(clusters)
    return clusters


def _cluster_sampling_tables(config: SyntheticConfig, clusters: np.ndarray
                             ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-cluster (item_ids, probabilities) with Zipf popularity."""
    tables = []
    for c in range(config.num_interests):
        item_ids = np.flatnonzero(clusters == c) + 1  # back to 1-based ids
        ranks = np.arange(1, item_ids.size + 1, dtype=np.float64)
        weights = ranks ** (-config.popularity_alpha)
        tables.append((item_ids, weights / weights.sum()))
    return tables


def _draw_user_mixture(config: SyntheticConfig, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """A user's sparse interest mixture: (active clusters, probabilities)."""
    active = rng.choice(config.num_interests, size=config.interests_per_user, replace=False)
    weights = rng.dirichlet(np.ones(config.interests_per_user) * 2.0)
    return active, weights


def generate(config: SyntheticConfig, seed: int = 0) -> MultiBehaviorDataset:
    """Generate a :class:`MultiBehaviorDataset` from the planted-structure model."""
    rng = np.random.default_rng(seed)
    clusters = _cluster_assignments(config, rng)
    tables = _cluster_sampling_tables(config, clusters)
    schema = config.schema
    # Funnel stages: auxiliary behaviors beyond the dense root, in schema order.
    root = schema.behaviors[0]
    stages = [b for b in schema.behaviors[1:] if b != schema.target]
    target = schema.target

    events: list[Interaction] = []
    for user in range(config.num_users):
        active, mixture = _draw_user_mixture(config, rng)
        clock = 0
        past_views: list[int] = []
        user_targets = 0
        num_sessions = max(1, rng.poisson(config.sessions_per_user))
        for _ in range(num_sessions):
            if rng.random() < config.interest_drift:
                active, mixture = _draw_user_mixture(config, rng)
            cluster = int(active[rng.choice(mixture.size, p=mixture)])
            item_ids, probs = tables[cluster]
            length = max(1, rng.poisson(config.session_length))
            session_views: list[int] = []
            for _ in range(length):
                if rng.random() < config.noise_rate:
                    item = int(rng.integers(1, config.num_items + 1))
                else:
                    item = int(rng.choice(item_ids, p=probs))
                clock += 1
                events.append(Interaction(user, item, root, clock))
                session_views.append(item)
                # Escalate through the funnel stages with conditional probs.
                for stage in stages:
                    if rng.random() < config.funnel.get(stage, 0.0):
                        clock += 1
                        events.append(Interaction(user, item, stage, clock))
                    else:
                        break
            past_views.extend(session_views)
            if rng.random() < config.target_per_session:
                roll = rng.random()
                if roll < config.fresh_target_fraction:
                    # Discovery purchase: an item from the active cluster,
                    # drawn uniformly — unlike views, purchases of new items
                    # are not popularity-driven, which plants the tail-item
                    # signal that graph-propagation methods exploit.
                    bought = int(rng.choice(item_ids))
                elif past_views and roll < config.fresh_target_fraction \
                        + config.delayed_target_fraction:
                    bought = int(past_views[rng.integers(0, len(past_views))])
                else:
                    bought = int(session_views[rng.integers(0, len(session_views))])
                clock += 1
                events.append(Interaction(user, bought, target, clock))
                user_targets += 1
        # Top up users whose random draw produced too few target events.
        while user_targets < config.min_target_events:
            if past_views:
                bought = int(past_views[rng.integers(0, len(past_views))])
            else:
                bought = int(rng.integers(1, config.num_items + 1))
            clock += 1
            events.append(Interaction(user, bought, target, clock))
            user_targets += 1

    dataset = MultiBehaviorDataset(events, schema, config.num_items, name=config.name)
    # Attach ground truth for analysis experiments (F6 uses cluster labels).
    dataset.item_clusters = clusters  # type: ignore[attr-defined]
    return dataset


# ----------------------------------------------------------------------
# presets
# ----------------------------------------------------------------------

def taobao_like(scale: float = 1.0) -> SyntheticConfig:
    """Taobao-flavoured preset: four behaviors, very dense views, sparse buys.

    Calibrated so that (i) the item space is large and popularity flat enough
    that pure co-occurrence methods cannot saturate, and (ii) users mix
    several of many interest clusters, so multi-interest models have an edge.
    """
    return SyntheticConfig(
        num_users=int(350 * scale),
        num_items=int(900 * scale),
        num_interests=12,
        interests_per_user=3,
        sessions_per_user=8.0,
        session_length=6.0,
        funnel={"cart": 0.25, "fav": 0.35},
        target_per_session=0.7,
        delayed_target_fraction=0.45,
        fresh_target_fraction=0.35,
        noise_rate=0.12,
        popularity_alpha=0.8,
        min_target_events=4,
        schema=TAOBAO_SCHEMA,
        name="taobao-like",
    )


def tmall_like(scale: float = 1.0) -> SyntheticConfig:
    """Tmall-flavoured preset: funnel-heavy, fav before cart."""
    return SyntheticConfig(
        num_users=int(300 * scale),
        num_items=int(800 * scale),
        num_interests=10,
        interests_per_user=2,
        sessions_per_user=7.0,
        session_length=5.0,
        funnel={"fav": 0.3, "cart": 0.45},
        target_per_session=0.7,
        delayed_target_fraction=0.4,
        fresh_target_fraction=0.35,
        noise_rate=0.1,
        popularity_alpha=0.8,
        min_target_events=4,
        schema=TMALL_SCHEMA,
        name="tmall-like",
    )


def yelp_like(scale: float = 1.0) -> SyntheticConfig:
    """Yelp-flavoured preset: three behaviors, shorter sequences, more noise."""
    return SyntheticConfig(
        num_users=int(280 * scale),
        num_items=int(600 * scale),
        num_interests=8,
        interests_per_user=3,
        sessions_per_user=6.0,
        session_length=4.0,
        funnel={"like": 0.35},
        target_per_session=0.65,
        delayed_target_fraction=0.4,
        fresh_target_fraction=0.4,
        noise_rate=0.15,
        popularity_alpha=0.8,
        min_target_events=4,
        schema=YELP_SCHEMA,
        name="yelp-like",
    )


DATASET_PRESETS = {
    "taobao": taobao_like,
    "tmall": tmall_like,
    "yelp": yelp_like,
}
