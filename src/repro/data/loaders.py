"""Loaders for real multi-behavior interaction logs.

The repository's experiments run on synthetic corpora (no network access to
the public dumps), but downstream users have the real files.  This module
parses the two common on-disk layouts into a :class:`MultiBehaviorDataset`:

* **UserBehavior/Taobao CSV** — ``user_id,item_id,category_id,behavior_type,
  timestamp`` rows (the format of the Taobao/Tmall dumps), behavior codes
  like ``pv``/``cart``/``fav``/``buy``.
* **Generic TSV/CSV** — any delimited file, with a column map.

Both loaders re-map raw ids to the dense 1-based vocabulary expected by the
rest of the pipeline.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Mapping

from .dataset import MultiBehaviorDataset
from .preprocessing import remap_ids
from .schema import BehaviorSchema, Interaction

__all__ = ["load_interaction_csv", "load_user_behavior_csv", "UB_BEHAVIOR_MAP"]

UB_BEHAVIOR_MAP = {"pv": "view", "cart": "cart", "fav": "fav", "buy": "buy"}
"""Behavior-code translation of the Taobao UserBehavior dump."""


def _parse_rows(rows: Iterable[Mapping[str, str]], schema: BehaviorSchema,
                behavior_map: Mapping[str, str] | None, name: str,
                strict: bool) -> MultiBehaviorDataset:
    events: list[Interaction] = []
    user_ids: dict[str, int] = {}
    item_ids: dict[str, int] = {}
    skipped = 0
    for row in rows:
        behavior = row["behavior"]
        if behavior_map is not None:
            behavior = behavior_map.get(behavior, behavior)
        if behavior not in schema.behaviors:
            if strict:
                raise ValueError(f"unknown behavior {behavior!r} in input row {row}")
            skipped += 1
            continue
        user = user_ids.setdefault(row["user"], len(user_ids))
        item = item_ids.setdefault(row["item"], len(item_ids) + 1)
        events.append(Interaction(user, item, behavior, int(row["timestamp"])))
    dataset = MultiBehaviorDataset(events, schema, num_items=len(item_ids), name=name)
    dataset.skipped_rows = skipped  # type: ignore[attr-defined]
    return remap_ids(dataset) if events else dataset


def load_interaction_csv(path: str | Path, schema: BehaviorSchema,
                         columns: Mapping[str, str] | None = None,
                         delimiter: str = ",",
                         behavior_map: Mapping[str, str] | None = None,
                         strict: bool = True) -> MultiBehaviorDataset:
    """Load a delimited interaction log with a header row.

    Args:
        path: the file to read.
        schema: target behavior schema.
        columns: maps the logical fields ``user``/``item``/``behavior``/
            ``timestamp`` to the file's column names (defaults to identity).
        delimiter: field separator.
        behavior_map: optional translation of raw behavior codes.
        strict: raise on unknown behaviors (False: silently skip, count in
            ``dataset.skipped_rows``).
    """
    path = Path(path)
    columns = dict(columns or {})
    for field in ("user", "item", "behavior", "timestamp"):
        columns.setdefault(field, field)

    def rows():
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle, delimiter=delimiter)
            missing = [c for c in columns.values() if c not in (reader.fieldnames or [])]
            if missing:
                raise ValueError(f"{path} is missing columns {missing}; "
                                 f"found {reader.fieldnames}")
            for record in reader:
                yield {field: record[column] for field, column in columns.items()}

    return _parse_rows(rows(), schema, behavior_map, name=path.stem, strict=strict)


def load_user_behavior_csv(path: str | Path, schema: BehaviorSchema,
                           strict: bool = False) -> MultiBehaviorDataset:
    """Load a header-less Taobao *UserBehavior* dump.

    Format: ``user_id,item_id,category_id,behavior_type,timestamp`` per line
    with behavior codes ``pv``/``cart``/``fav``/``buy``.  Unknown codes are
    skipped by default (the dumps contain a few rare extras).
    """
    path = Path(path)

    def rows():
        with path.open(newline="") as handle:
            for record in csv.reader(handle):
                if len(record) != 5:
                    raise ValueError(f"expected 5 columns, got {len(record)}: {record}")
                user, item, _category, behavior, timestamp = record
                yield {"user": user, "item": item, "behavior": behavior,
                       "timestamp": timestamp}

    return _parse_rows(rows(), schema, UB_BEHAVIOR_MAP, name=path.stem, strict=strict)
