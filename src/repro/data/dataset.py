"""In-memory multi-behavior interaction store.

:class:`MultiBehaviorDataset` is the central data structure consumed by
preprocessing, splitting, hypergraph construction and training.  It indexes
interactions by user and behavior, keeps each user's per-behavior sequence in
chronological order, and reports the corpus statistics used by the T1
experiment.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .schema import BehaviorSchema, Interaction, PAD_ITEM

__all__ = ["MultiBehaviorDataset", "DatasetStats"]


@dataclass(frozen=True)
class DatasetStats:
    """Corpus-level statistics (one row of the T1 table)."""

    name: str
    num_users: int
    num_items: int
    num_interactions: int
    interactions_per_behavior: dict[str, int]
    avg_length_per_behavior: dict[str, float]
    density: float
    """Unique (user, item) pairs divided by the user-item matrix size."""

    def as_row(self) -> list:
        per_behavior = ", ".join(
            f"{b}:{n}" for b, n in self.interactions_per_behavior.items()
        )
        return [self.name, self.num_users, self.num_items, self.num_interactions,
                per_behavior, f"{self.density:.6f}"]


class MultiBehaviorDataset:
    """Chronologically ordered multi-behavior interaction sequences.

    Args:
        interactions: events in any order; they are sorted by
            ``(user, timestamp)`` internally.  Ties in timestamp keep input
            order (stable sort), which matters for funnel events generated at
            the same instant (view then buy).
        schema: the behavior vocabulary.
        num_items: size of the item vocabulary (ids are ``1..num_items``).
        name: label used in reports.
    """

    def __init__(self, interactions: Iterable[Interaction], schema: BehaviorSchema,
                 num_items: int, name: str = "dataset"):
        self.schema = schema
        self.num_items = int(num_items)
        self.name = name
        events = sorted(interactions, key=lambda e: (e.user, e.timestamp))
        for event in events:
            if event.behavior not in schema.behaviors:
                raise ValueError(f"interaction has unknown behavior {event.behavior!r}")
            if not 1 <= event.item <= self.num_items:
                raise ValueError(f"item id {event.item} outside [1, {self.num_items}]")
        self._events = events
        # user -> behavior -> list[(item, timestamp)]
        self._sequences: dict[int, dict[str, list[tuple[int, int]]]] = defaultdict(
            lambda: {b: [] for b in schema.behaviors}
        )
        for event in events:
            self._sequences[event.user][event.behavior].append((event.item, event.timestamp))
        self._users = sorted(self._sequences)
        # O(1) membership checks for inference entry points; the user list
        # itself stays the ordered public view.
        self._user_set = frozenset(self._users)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def users(self) -> list[int]:
        return list(self._users)

    @property
    def num_users(self) -> int:
        return len(self._users)

    def has_user(self, user: int) -> bool:
        """O(1) membership test (avoids materializing the user list)."""
        return user in self._user_set

    @property
    def num_interactions(self) -> int:
        return len(self._events)

    def interactions(self) -> list[Interaction]:
        """All events sorted by (user, timestamp)."""
        return list(self._events)

    def sequence(self, user: int, behavior: str) -> list[int]:
        """Item ids of ``user``'s ``behavior`` sequence, oldest first."""
        return [item for item, _ in self._sequences[user][behavior]]

    def sequence_with_times(self, user: int, behavior: str) -> list[tuple[int, int]]:
        """(item, timestamp) pairs of the user's behavior sequence."""
        return list(self._sequences[user][behavior])

    def merged_sequence(self, user: int) -> list[tuple[int, str, int]]:
        """All of the user's events merged across behaviors, time-ordered.

        Returns ``(item, behavior, timestamp)`` triples.  Ties are broken by
        schema behavior order so funnel events at one instant appear
        view → … → buy.
        """
        triples = [
            (item, behavior, ts)
            for behavior in self.schema.behaviors
            for item, ts in self._sequences[user][behavior]
        ]
        order = {b: i for i, b in enumerate(self.schema.behaviors)}
        triples.sort(key=lambda t: (t[2], order[t[1]]))
        return triples

    def items_of_user(self, user: int) -> set[int]:
        """Every item the user touched under any behavior (negative-sampling exclusion)."""
        return {item for behavior in self.schema.behaviors
                for item, _ in self._sequences[user][behavior]}

    # ------------------------------------------------------------------
    # statistics / derived views
    # ------------------------------------------------------------------
    def stats(self) -> DatasetStats:
        per_behavior = {b: 0 for b in self.schema.behaviors}
        for event in self._events:
            per_behavior[event.behavior] += 1
        avg_length = {
            b: (per_behavior[b] / self.num_users if self.num_users else 0.0)
            for b in self.schema.behaviors
        }
        cells = self.num_users * self.num_items
        unique_pairs = len({(e.user, e.item) for e in self._events})
        return DatasetStats(
            name=self.name,
            num_users=self.num_users,
            num_items=self.num_items,
            num_interactions=self.num_interactions,
            interactions_per_behavior=per_behavior,
            avg_length_per_behavior=avg_length,
            density=unique_pairs / cells if cells else 0.0,
        )

    def restrict_behaviors(self, keep: Sequence[str]) -> "MultiBehaviorDataset":
        """A copy containing only the ``keep`` behaviors (F5 experiment)."""
        sub_schema = self.schema.subset(tuple(keep))
        events = [e for e in self._events if e.behavior in sub_schema.behaviors]
        return MultiBehaviorDataset(events, sub_schema, self.num_items,
                                    name=f"{self.name}-{'+'.join(sub_schema.behaviors)}")

    def target_lengths(self) -> Mapping[int, int]:
        """Per-user length of the target-behavior sequence (cold-start grouping)."""
        return {u: len(self._sequences[u][self.schema.target]) for u in self._users}

    def item_popularity(self) -> np.ndarray:
        """Interaction counts per item id; index 0 (padding) stays zero."""
        counts = np.zeros(self.num_items + 1, dtype=np.int64)
        for event in self._events:
            counts[event.item] += 1
        assert counts[PAD_ITEM] == 0
        return counts
