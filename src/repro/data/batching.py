"""Padded mini-batch assembly for multi-behavior sequence models.

A :class:`Batch` carries, for every behavior, a left-padded ``(B, L)`` item
matrix and validity mask, plus the fused cross-behavior timeline and the
prediction targets.  Left padding keeps the most recent event at the last
position, which is where causal sequence models read the user state.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Iterator, Sequence

import numpy as np

from .schema import BehaviorSchema, PAD_ITEM
from .splits import SequenceExample

__all__ = ["Batch", "pad_sequences", "collate", "BatchLoader"]


def pad_sequences(sequences: Sequence[Sequence[int]], max_len: int | None = None,
                  pad_value: int = PAD_ITEM) -> tuple[np.ndarray, np.ndarray]:
    """Left-pad variable-length int sequences into ``(B, L)`` plus a mask.

    Returns ``(matrix, mask)`` where ``mask`` is True at real positions.
    ``max_len`` defaults to the longest sequence (minimum 1 so empty behavior
    streams still produce a well-formed column).

    The fill is vectorized: rows are flattened into one contiguous array and
    written through a boolean suffix mask in a single scatter, instead of one
    slice assignment per row.  Boolean assignment fills in row-major order,
    which is exactly the order of the flattened (truncated) rows.
    """
    batch = len(sequences)
    lengths = np.fromiter((len(s) for s in sequences), dtype=np.int64, count=batch)
    if max_len is None:
        max_len = int(lengths.max()) if batch else 1
    max_len = max(max_len, 1)
    matrix = np.full((batch, max_len), pad_value, dtype=np.int64)
    mask = np.zeros((batch, max_len), dtype=bool)
    clipped = np.minimum(lengths, max_len)
    total = int(clipped.sum())
    if total:
        np.greater_equal(np.arange(max_len, dtype=np.int64),
                         (max_len - clipped)[:, None], out=mask)
        if int(lengths.max()) <= max_len:
            flat_rows: Iterator = chain.from_iterable(sequences)
        else:
            flat_rows = chain.from_iterable(
                s[-max_len:] if len(s) > max_len else s for s in sequences)
        matrix[mask] = np.fromiter(flat_rows, dtype=np.int64, count=total)
    return matrix, mask


@dataclass
class Batch:
    """One mini-batch of next-item prediction examples."""

    users: np.ndarray                       # (B,)
    items: dict[str, np.ndarray]            # behavior -> (B, L_b) left-padded
    masks: dict[str, np.ndarray]            # behavior -> (B, L_b) bool
    merged_items: np.ndarray                # (B, L) fused timeline
    merged_behaviors: np.ndarray            # (B, L) behavior-type ids
    merged_mask: np.ndarray                 # (B, L) bool
    targets: np.ndarray                     # (B,)
    candidates: np.ndarray | None = None    # (B, 1+num_negatives) presampled
    """Optional presampled training candidates (positive in column 0), filled
    in by the prefetching pipeline so negative sampling runs off the main
    process; ``sample_training_candidates`` consumes them when the width
    matches the requested negative count."""

    @property
    def size(self) -> int:
        return len(self.users)

    def behavior_names(self) -> list[str]:
        return list(self.items)


def collate(examples: Sequence[SequenceExample], schema: BehaviorSchema,
            max_len: int | None = None) -> Batch:
    """Assemble examples into a :class:`Batch`."""
    if not examples:
        raise ValueError("cannot collate an empty example list")
    items: dict[str, np.ndarray] = {}
    masks: dict[str, np.ndarray] = {}
    for behavior in schema.behaviors:
        matrix, mask = pad_sequences([e.inputs[behavior] for e in examples], max_len)
        items[behavior] = matrix
        masks[behavior] = mask
    merged_items, merged_mask = pad_sequences([e.merged_items for e in examples], max_len)
    merged_behaviors, _ = pad_sequences(
        [e.merged_behavior_ids for e in examples], merged_items.shape[1], pad_value=0
    )
    return Batch(
        users=np.array([e.user for e in examples], dtype=np.int64),
        items=items,
        masks=masks,
        merged_items=merged_items,
        merged_behaviors=merged_behaviors,
        merged_mask=merged_mask,
        targets=np.array([e.target for e in examples], dtype=np.int64),
    )


class BatchLoader:
    """Iterates a list of examples in shuffled mini-batches.

    The shuffle order is drawn from the provided generator, so epochs are
    reproducible given a seed; set ``shuffle=False`` for evaluation.
    """

    def __init__(self, examples: Sequence[SequenceExample], schema: BehaviorSchema,
                 batch_size: int, rng: np.random.Generator | None = None,
                 shuffle: bool = True, max_len: int | None = None,
                 drop_last: bool = False):
        if batch_size < 1:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        if shuffle and rng is None:
            raise ValueError("shuffling requires an rng")
        self.examples = list(examples)
        self.schema = schema
        self.batch_size = batch_size
        self.rng = rng
        self.shuffle = shuffle
        self.max_len = max_len
        self.drop_last = drop_last

    def __len__(self) -> int:
        full, remainder = divmod(len(self.examples), self.batch_size)
        return full if (self.drop_last or remainder == 0) else full + 1

    def __iter__(self) -> Iterator[Batch]:
        order = np.arange(len(self.examples))
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            chunk = order[start:start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                break
            yield collate([self.examples[i] for i in chunk], self.schema, self.max_len)
