"""Corpus preprocessing: k-core filtering, truncation, and id remapping.

Mirrors the standard pipeline of the multi-behavior literature: drop users
with too few target-behavior events and items with too few interactions
(iterated to a fixed point), keep only each user's most recent history, and
re-map ids to a dense 1-based vocabulary.
"""

from __future__ import annotations

from collections import Counter

from .dataset import MultiBehaviorDataset
from .schema import Interaction

__all__ = ["k_core_filter", "truncate_history", "remap_ids", "drop_holdout_targets"]


def _carry_clusters(source: MultiBehaviorDataset, result: MultiBehaviorDataset
                    ) -> MultiBehaviorDataset:
    """Propagate the synthetic ``item_clusters`` ground truth, when present."""
    clusters = getattr(source, "item_clusters", None)
    if clusters is not None:
        result.item_clusters = clusters  # type: ignore[attr-defined]
    return result


def drop_holdout_targets(dataset: MultiBehaviorDataset, holdout: int = 2
                         ) -> MultiBehaviorDataset:
    """Remove every event at or after each user's ``holdout``-th-from-last
    target event.

    Produces the **training view** of a corpus under the leave-one-out
    protocol: the validation and test target events — and any auxiliary
    events that happen after them — are excluded.  Non-parametric models
    (popularity, ItemKNN) must be fit on this view to avoid leakage; the
    hypergraph builder applies the same cutoff internally.
    """
    if holdout < 0:
        raise ValueError("holdout must be non-negative")
    if holdout == 0:
        return dataset
    kept: list[Interaction] = []
    target = dataset.schema.target
    for user in dataset.users:
        timeline = dataset.sequence_with_times(user, target)
        cutoff = timeline[-holdout][1] if len(timeline) > holdout else None
        for item, behavior, ts in dataset.merged_sequence(user):
            if cutoff is None or ts < cutoff:
                kept.append(Interaction(user, item, behavior, ts))
    result = MultiBehaviorDataset(kept, dataset.schema, dataset.num_items,
                                  name=dataset.name)
    clusters = getattr(dataset, "item_clusters", None)
    if clusters is not None:
        result.item_clusters = clusters  # type: ignore[attr-defined]
    return result


def k_core_filter(dataset: MultiBehaviorDataset, min_user_targets: int = 3,
                  min_item_interactions: int = 3, max_rounds: int = 20
                  ) -> MultiBehaviorDataset:
    """Iteratively drop sparse users/items until both constraints hold.

    A user survives if it has at least ``min_user_targets`` target-behavior
    events; an item survives if it appears in at least
    ``min_item_interactions`` events of any behavior.
    """
    events = dataset.interactions()
    target = dataset.schema.target
    for _ in range(max_rounds):
        user_targets: Counter = Counter(e.user for e in events if e.behavior == target)
        item_counts: Counter = Counter(e.item for e in events)
        keep_users = {u for u, n in user_targets.items() if n >= min_user_targets}
        keep_items = {i for i, n in item_counts.items() if n >= min_item_interactions}
        filtered = [e for e in events if e.user in keep_users and e.item in keep_items]
        if len(filtered) == len(events):
            break
        events = filtered
    result = _carry_clusters(dataset, MultiBehaviorDataset(
        events, dataset.schema, dataset.num_items, name=dataset.name))
    return remap_ids(result)


def truncate_history(dataset: MultiBehaviorDataset, max_events_per_user: int = 50
                     ) -> MultiBehaviorDataset:
    """Keep only each user's most recent ``max_events_per_user`` events.

    Truncation operates on the merged (all-behavior) timeline, matching the
    "retain the 50 most recent historical records" convention.
    """
    kept: list[Interaction] = []
    for user in dataset.users:
        merged = dataset.merged_sequence(user)
        recent = merged[-max_events_per_user:]
        kept.extend(Interaction(user, item, behavior, ts) for item, behavior, ts in recent)
    return _carry_clusters(dataset, MultiBehaviorDataset(
        kept, dataset.schema, dataset.num_items, name=dataset.name))


def remap_ids(dataset: MultiBehaviorDataset) -> MultiBehaviorDataset:
    """Re-map user ids to ``0..U-1`` and item ids to ``1..I`` densely.

    Preserves the ``item_clusters`` ground-truth attribute when present
    (synthetic corpora carry it for the interest-space analysis).
    """
    events = dataset.interactions()
    users = sorted({e.user for e in events})
    items = sorted({e.item for e in events})
    user_map = {u: i for i, u in enumerate(users)}
    item_map = {old: new for new, old in enumerate(items, start=1)}
    remapped = [
        Interaction(user_map[e.user], item_map[e.item], e.behavior, e.timestamp)
        for e in events
    ]
    result = MultiBehaviorDataset(remapped, dataset.schema, len(items), name=dataset.name)
    clusters = getattr(dataset, "item_clusters", None)
    if clusters is not None:
        # item_clusters is 0-indexed by (item_id - 1) in the original space.
        result.item_clusters = clusters[[old - 1 for old in items]]  # type: ignore[attr-defined]
    return result
