"""Leave-one-out splitting into next-item prediction examples.

Following the standard protocol: for every user, the **last** target-behavior
event is the test example and the **second-to-last** is validation; every
earlier target event (with at least one preceding event) becomes a training
example.  An example's inputs are all events that happened strictly before
the predicted event, per behavior, truncated to the most recent ``max_len``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dataset import MultiBehaviorDataset

__all__ = ["SequenceExample", "DataSplit", "leave_one_out_split", "temporal_split"]


@dataclass(frozen=True)
class SequenceExample:
    """One next-item prediction instance.

    Attributes:
        user: user id.
        inputs: behavior name → chronological item ids before the target.
        merged_items / merged_behavior_ids: the cross-behavior timeline before
            the target (items and their behavior-type ids), for models that
            consume one fused sequence.
        target: the item to predict.
    """

    user: int
    inputs: dict[str, tuple[int, ...]]
    merged_items: tuple[int, ...]
    merged_behavior_ids: tuple[int, ...]
    target: int


@dataclass
class DataSplit:
    """Train/validation/test example sets plus the source dataset."""

    dataset: MultiBehaviorDataset
    train: list[SequenceExample] = field(default_factory=list)
    valid: list[SequenceExample] = field(default_factory=list)
    test: list[SequenceExample] = field(default_factory=list)

    def summary(self) -> dict[str, int]:
        return {"train": len(self.train), "valid": len(self.valid), "test": len(self.test)}


def _example_at(dataset: MultiBehaviorDataset, user: int, cutoff_ts: int, target: int,
                max_len: int) -> SequenceExample | None:
    """Build the example predicting ``target`` from events before ``cutoff_ts``."""
    schema = dataset.schema
    inputs: dict[str, tuple[int, ...]] = {}
    for behavior in schema.behaviors:
        history = [item for item, ts in dataset.sequence_with_times(user, behavior)
                   if ts < cutoff_ts]
        inputs[behavior] = tuple(history[-max_len:])
    if all(len(seq) == 0 for seq in inputs.values()):
        return None
    merged = [(item, schema.behavior_id(behavior))
              for item, behavior, ts in dataset.merged_sequence(user) if ts < cutoff_ts]
    merged = merged[-max_len:]
    return SequenceExample(
        user=user,
        inputs=inputs,
        merged_items=tuple(item for item, _ in merged),
        merged_behavior_ids=tuple(bid for _, bid in merged),
        target=target,
    )


def leave_one_out_split(dataset: MultiBehaviorDataset, max_len: int = 50,
                        max_train_per_user: int | None = None) -> DataSplit:
    """Split a corpus into train/valid/test next-item examples.

    Args:
        dataset: the interaction corpus.
        max_len: per-behavior history truncation (most recent events kept).
        max_train_per_user: optional cap on training examples per user (keeps
            the most recent ones); None keeps all.
    """
    split = DataSplit(dataset=dataset)
    target_behavior = dataset.schema.target
    for user in dataset.users:
        timeline = dataset.sequence_with_times(user, target_behavior)
        if len(timeline) < 3:
            # Not enough target events for train+valid+test; skip the user
            # (k-core preprocessing normally guarantees this never triggers).
            continue
        test_item, test_ts = timeline[-1]
        valid_item, valid_ts = timeline[-2]
        test_example = _example_at(dataset, user, test_ts, test_item, max_len)
        valid_example = _example_at(dataset, user, valid_ts, valid_item, max_len)
        if test_example is None or valid_example is None:
            continue
        split.test.append(test_example)
        split.valid.append(valid_example)
        train_events = timeline[:-2]
        user_train = []
        for item, ts in train_events:
            example = _example_at(dataset, user, ts, item, max_len)
            if example is not None:
                user_train.append(example)
        if max_train_per_user is not None:
            user_train = user_train[-max_train_per_user:]
        split.train.extend(user_train)
    return split


def temporal_split(dataset: MultiBehaviorDataset, valid_fraction: float = 0.1,
                   test_fraction: float = 0.1, max_len: int = 50) -> DataSplit:
    """Global-time split: the last fractions of each user's *timeline* become
    validation/test target events.

    The stricter alternative to leave-one-out: instead of exactly one test
    event per user, every target event in a user's final ``test_fraction`` of
    (per-user) time becomes a test example, the preceding ``valid_fraction``
    becomes validation, and the rest train.  Users whose history is too short
    to populate all three regions contribute only to the regions they reach.
    """
    if not 0.0 < valid_fraction < 1.0 or not 0.0 < test_fraction < 1.0:
        raise ValueError("fractions must lie in (0, 1)")
    if valid_fraction + test_fraction >= 1.0:
        raise ValueError("fractions must leave room for training data")
    split = DataSplit(dataset=dataset)
    target_behavior = dataset.schema.target
    for user in dataset.users:
        merged = dataset.merged_sequence(user)
        if not merged:
            continue
        start_ts = merged[0][2]
        end_ts = merged[-1][2]
        span = max(end_ts - start_ts, 1)
        test_cut = end_ts - span * test_fraction
        valid_cut = test_cut - span * valid_fraction
        for item, ts in dataset.sequence_with_times(user, target_behavior):
            example = _example_at(dataset, user, ts, item, max_len)
            if example is None:
                continue
            if ts > test_cut:
                split.test.append(example)
            elif ts > valid_cut:
                split.valid.append(example)
            else:
                split.train.append(example)
    return split
