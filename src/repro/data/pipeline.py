"""Prefetching, parallel batch pipeline: overlap batch assembly with compute.

The training loop used to assemble every mini-batch on the main process —
per-row Python padding, inline negative sampling — serializing input work
with model compute.  This module provides the parallel input path:

* :class:`PackedExamples` — the example list flattened into CSR arrays so a
  mini-batch is assembled with pure NumPy gathers (no per-row Python), the
  vectorized collate shared by training, evaluation and serving-style reuse.
* :class:`WorkerPool` — a small multiprocessing pool with heartbeat/timeout
  detection, clean shutdown, and worker tracebacks re-raised on the main
  process as :class:`WorkerError`.
* :class:`PrefetchLoader` — a bounded, double-buffered loader that shuffles,
  collates and (optionally) presamples negative candidates either in-process
  (``num_workers=0``, the deterministic reference) or on a worker pool.
* :func:`parallel_map` — order-stable fan-out used by the sharded ranking
  evaluation (:func:`repro.eval.evaluator.rank_all`).

Determinism: every batch's randomness is derived from ``(seed, epoch,
batch_index)`` alone (:func:`batch_rng` / :func:`epoch_order`), never from
worker identity or scheduling, so any ``num_workers`` setting yields a
bitwise-identical batch stream for a fixed seed — satisfying the
``SEEDED-RANDOMNESS`` discipline with explicit generators throughout.

Transport: result payloads can ride a :class:`~repro.data.shm.ShmArena`
instead of the queue's pickle path — workers write their ndarrays into a
pre-sized shared-memory slot and only a tiny descriptor crosses the queue,
with the parent mapping zero-copy views (or private copies for long-lived
results).  A payload that does not fit, or arrives while every slot is
leased, silently falls back to pickling: degraded throughput, never a
hang.  :class:`PrefetchLoader` sizes and owns its arena automatically when
``num_workers > 0``.

Telemetry (zero-cost when disabled, one ``is None`` check per epoch): a
``pipeline.queue_depth`` gauge, a ``pipeline.wait_seconds`` histogram of
main-process blocking time, ``pipeline.batches`` /
``pipeline.worker.<id>.batches`` utilization counters, and shared-memory
transport counters (``pipeline.shm.bytes``, ``pipeline.shm.results``,
``pipeline.shm.fallbacks``) in the session's
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.obs import (TraceContext, child_telemetry_config, current_context,
                       get_telemetry, pipeline_worker_batches)

from .batching import Batch
from .sampling import NegativeSampler
from .schema import BehaviorSchema, PAD_ITEM
from .shm import (DEFAULT_MIN_SHM_BYTES, ShmArena, decode_payload,
                  encode_payload, unwrap_context, wrap_context)
from .splits import SequenceExample

__all__ = [
    "PackedExamples",
    "PrefetchLoader",
    "WorkerError",
    "WorkerPool",
    "parallel_map",
    "batch_rng",
    "epoch_order",
    "fork_available",
]

_MASK32 = 0xFFFFFFFF


def batch_rng(seed: int, epoch: int, index: int) -> np.random.Generator:
    """Generator for batch ``index`` of ``epoch`` — independent of workers.

    The entropy is the ``(seed, epoch, index)`` triple, so the stream a batch
    draws (negative candidates today; augmentations tomorrow) is a pure
    function of its position in the schedule, not of which process builds it
    or in what order.  ``index`` 0 is reserved for the epoch shuffle
    (:func:`epoch_order`); batch streams start at 1.
    """
    entropy = (seed & _MASK32, epoch & _MASK32, index & _MASK32)
    return np.random.default_rng(np.random.SeedSequence(entropy))


def epoch_order(seed: int, epoch: int, count: int, shuffle: bool) -> np.ndarray:
    """The example visiting order for one epoch (identity when not shuffling)."""
    if not shuffle:
        return np.arange(count, dtype=np.int64)
    return batch_rng(seed, epoch, 0).permutation(count).astype(np.int64, copy=False)


def fork_available() -> bool:
    """Whether the ``fork`` start method exists (shared-memory workers)."""
    return "fork" in mp.get_all_start_methods()


# ----------------------------------------------------------------------
# Vectorized collate over CSR-packed examples
# ----------------------------------------------------------------------

def _pack(sequences: Sequence[Sequence[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Flatten variable-length rows into CSR ``(data, indptr)`` arrays."""
    count = len(sequences)
    lengths = np.zeros(count + 1, dtype=np.int64)
    for row, seq in enumerate(sequences):
        lengths[row + 1] = len(seq)
    indptr = np.cumsum(lengths)
    data = np.zeros(int(indptr[-1]), dtype=np.int64)
    for row, seq in enumerate(sequences):
        data[indptr[row]:indptr[row + 1]] = seq
    return data, indptr


def _gather_padded(data: np.ndarray, indptr: np.ndarray, rows: np.ndarray,
                   max_len: int | None, pad_value: int = PAD_ITEM,
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Left-padded ``(len(rows), L)`` matrix + mask from CSR storage.

    Pure array ops: the trailing ``min(length, L)`` entries of every row are
    gathered with one fancy-index expression built from repeat/cumsum
    arithmetic — the CSR twin of :func:`repro.data.batching.pad_sequences`
    with identical left-padding and truncation semantics.
    """
    lengths = indptr[rows + 1] - indptr[rows]
    if max_len is None:
        max_len = int(lengths.max()) if rows.size else 1
    max_len = max(max_len, 1)
    clipped = np.minimum(lengths, max_len)
    matrix = np.full((len(rows), max_len), pad_value, dtype=np.int64)
    mask = np.zeros((len(rows), max_len), dtype=bool)
    total = int(clipped.sum())
    if total:
        starts = indptr[rows + 1] - clipped          # trailing-window start
        row_of = np.repeat(np.arange(len(rows), dtype=np.int64), clipped)
        offsets = np.concatenate([np.zeros(1, dtype=np.int64),
                                  np.cumsum(clipped)[:-1]])
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, clipped)
        cols = (max_len - clipped)[row_of] + within
        matrix[row_of, cols] = data[np.repeat(starts, clipped) + within]
        mask[row_of, cols] = True
    return matrix, mask


@dataclass
class PackedExamples:
    """A list of :class:`SequenceExample` flattened into contiguous arrays.

    Built once per split, shared (copy-on-write under ``fork``) by every
    worker, and collated into batches with :meth:`collate_rows` — which
    produces batches identical to :func:`repro.data.batching.collate` on the
    same rows but touches no per-row Python.
    """

    schema: BehaviorSchema
    users: np.ndarray                                  # (N,)
    targets: np.ndarray                                # (N,)
    behaviors: dict[str, tuple[np.ndarray, np.ndarray]]  # name -> (data, indptr)
    merged_items: tuple[np.ndarray, np.ndarray]        # (data, indptr)
    merged_behaviors: np.ndarray                       # data aligned with merged indptr

    @classmethod
    def from_examples(cls, examples: Sequence[SequenceExample],
                      schema: BehaviorSchema) -> "PackedExamples":
        """Flatten ``examples`` (one pass per field) into CSR storage."""
        behaviors = {
            behavior: _pack([e.inputs[behavior] for e in examples])
            for behavior in schema.behaviors
        }
        merged_items = _pack([e.merged_items for e in examples])
        merged_behaviors, _ = _pack([e.merged_behavior_ids for e in examples])
        return cls(
            schema=schema,
            users=np.fromiter((e.user for e in examples), dtype=np.int64,
                              count=len(examples)),
            targets=np.fromiter((e.target for e in examples), dtype=np.int64,
                                count=len(examples)),
            behaviors=behaviors,
            merged_items=merged_items,
            merged_behaviors=merged_behaviors,
        )

    def __len__(self) -> int:
        return len(self.users)

    def collate_rows(self, rows: np.ndarray, max_len: int | None = None) -> Batch:
        """Assemble the batch for example indices ``rows`` (order preserved)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            raise ValueError("cannot collate an empty example list")
        items: dict[str, np.ndarray] = {}
        masks: dict[str, np.ndarray] = {}
        for behavior, (data, indptr) in self.behaviors.items():
            items[behavior], masks[behavior] = _gather_padded(
                data, indptr, rows, max_len)
        merged_data, merged_indptr = self.merged_items
        merged_items, merged_mask = _gather_padded(merged_data, merged_indptr,
                                                   rows, max_len)
        merged_behaviors, _ = _gather_padded(self.merged_behaviors, merged_indptr,
                                             rows, merged_items.shape[1],
                                             pad_value=0)
        return Batch(
            users=self.users[rows],
            items=items,
            masks=masks,
            merged_items=merged_items,
            merged_behaviors=merged_behaviors,
            merged_mask=merged_mask,
            targets=self.targets[rows],
        )


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------

class WorkerError(RuntimeError):
    """A pipeline worker crashed, timed out, or died.

    ``remote_traceback`` carries the worker's formatted traceback (when the
    exception was caught worker-side); it is embedded in ``str(error)`` so
    the original failure reads exactly like a local one.
    """

    def __init__(self, worker_id: int, message: str,
                 remote_traceback: str | None = None):
        detail = message if remote_traceback is None \
            else f"{message}\n--- worker {worker_id} traceback ---\n{remote_traceback}"
        super().__init__(detail)
        self.worker_id = worker_id
        self.remote_traceback = remote_traceback


def _worker_main(worker_id: int, factory: Callable, initargs: tuple,
                 tasks, results, transport: ShmArena | None = None,
                 transport_requests: bool = False,
                 transport_min_bytes: int | None = None,
                 telemetry_config: dict | None = None,
                 process_role: str = "worker", generation: int = 0) -> None:
    """Worker process entry point: build the task fn, then serve tasks.

    Any exception — in the factory or per task — is caught, formatted, and
    shipped to the main process, which re-raises it as :class:`WorkerError`.
    With a ``transport`` arena, result ndarrays are written into a shared
    slot and only the descriptor is queued (pickle fallback when the arena
    cannot take the payload).  With ``transport_requests`` the *inbound*
    payloads are shm-encoded too (the serving replicas use this); they are
    decoded as private copies so the slot frees immediately.

    Telemetry: the parent's hub (open event file, span stack) must never be
    written from a forked child.  ``enable_worker_telemetry`` replaces it —
    with a per-process relay spool tagged ``process_role``/``worker_id``
    when the parent session writes to a file (``telemetry_config`` from
    :func:`~repro.obs.events.child_telemetry_config`), or with nothing at
    all otherwise.  Tasks that arrive wrapped in a trace context run under
    a ``worker.task`` span parented on the remote submitter.
    """
    try:
        from repro.obs import enable_worker_telemetry
        enable_worker_telemetry(telemetry_config, process_role, worker_id,
                                generation=generation)
    except Exception:                                 # pragma: no cover
        pass
    from repro.obs import disable_telemetry, remote_context, span
    try:
        try:
            fn = factory(*initargs)
        except BaseException:
            results.put(("error", worker_id, None, traceback.format_exc()))
            return
        while True:
            task = tasks.get()
            if task is None:
                break
            task_id, payload = task
            try:
                context, payload = unwrap_context(payload)
                if transport_requests and transport is not None:
                    payload, _ = decode_payload(payload, transport, copy=True)
                if context is not None:
                    with remote_context(context):
                        with span("worker.task", task=task_id):
                            value = fn(payload)
                else:
                    value = fn(payload)
                if transport is not None:
                    min_bytes = (DEFAULT_MIN_SHM_BYTES if transport_min_bytes is None
                                 else transport_min_bytes)
                    value = encode_payload(value, transport, min_bytes=min_bytes)
                results.put(("ok", worker_id, task_id, value))
            except BaseException:
                results.put(("error", worker_id, task_id, traceback.format_exc()))
                break
    finally:
        try:
            # Flush the relay spool with a final metrics snapshot so the
            # fleet merge sees this process's counters (no-op when the
            # child runs with telemetry off).
            disable_telemetry(final_snapshot=True)
        except Exception:                             # pragma: no cover
            pass


class WorkerPool:
    """A supervised pool of daemon worker processes.

    Args:
        factory: module-level callable; ``factory(*initargs)`` runs once per
            worker and returns the per-task function (closures stay
            worker-side, so only the factory and its args ever cross the
            process boundary).
        initargs: arguments for ``factory`` — inherited by reference under
            the ``fork`` start method, pickled once per worker under spawn.
        num_workers: pool size (at least 1).
        timeout: seconds :meth:`next_result` waits before declaring the pool
            wedged and raising :class:`WorkerError`; ``None`` reads the
            ``REPRO_POOL_TIMEOUT`` environment variable (default 120).
        start_method: multiprocessing start method; defaults to ``fork``
            when available (shared memory, no pickling).
        transport: optional :class:`~repro.data.shm.ShmArena` carrying result
            ndarrays out-of-band (descriptors on the queue, zero-copy reads);
            the caller owns the arena's lifetime.
        transport_copy: decode shm results as private copies instead of
            leased views — use for results that outlive the arena.
        transport_requests: also shm-encode *task payloads* on submit (the
            serving replica path); workers decode them as private copies so
            the slot frees immediately.
        transport_min_bytes: per-array floor below which payloads take the
            pickle path; ``None`` keeps the module default (1024 B).  The
            serving tier lowers it — request batches are small but frequent.
        death_grace: seconds a worker may be observed dead before the pool
            declares silent death (lets the queue feeder flush a final
            result); ``None`` reads ``REPRO_POOL_DEATH_GRACE`` (default 2).
        process_role: fleet-telemetry role tag for the forked workers
            (``"loader"``, ``"ddp"``, ``"eval"``, ``"replica<N>"``...);
            recorded on every event a worker relays to its spool.
        generation: respawn generation tag (the serving tier bumps it each
            time a replica is respawned so spool files never collide).

    Robustness contract: a worker exception re-raises on the main process
    with the worker's traceback embedded; a worker that dies silently (OOM
    kill, segfault) is detected by heartbeat on a monotonic clock — the
    grace window is configurable so loaded CI machines don't false-positive;
    shutdown always reaps children — no orphaned processes survive
    :meth:`close` / :meth:`terminate`.
    """

    def __init__(self, factory: Callable, initargs: tuple = (),
                 num_workers: int = 1, timeout: float | None = None,
                 poll_interval: float = 0.1, start_method: str | None = None,
                 transport: ShmArena | None = None, transport_copy: bool = False,
                 transport_requests: bool = False,
                 transport_min_bytes: int | None = None,
                 death_grace: float | None = None,
                 process_role: str = "worker", generation: int = 0):
        if num_workers < 1:
            raise ValueError(f"need at least one worker, got {num_workers}")
        if start_method is None:
            start_method = "fork" if fork_available() else None
        self._ctx = mp.get_context(start_method)
        if timeout is None:
            timeout = float(os.environ.get("REPRO_POOL_TIMEOUT", "120"))
        if death_grace is None:
            death_grace = float(os.environ.get("REPRO_POOL_DEATH_GRACE", "2"))
        self.timeout = timeout
        self.death_grace = death_grace
        self.poll_interval = poll_interval
        self._transport = transport
        self._transport_copy = transport_copy
        self._transport_requests = transport_requests
        self._transport_min_bytes = transport_min_bytes
        self.shm_bytes = 0
        self.shm_results = 0
        self.raw_results = 0
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._closed = False
        telemetry_config = child_telemetry_config()
        self._workers = [
            self._ctx.Process(target=_worker_main, name=f"repro-pipeline-{i}",
                              args=(i, factory, initargs, self._tasks,
                                    self._results, transport,
                                    transport_requests, transport_min_bytes,
                                    telemetry_config, process_role,
                                    generation),
                              daemon=True)
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    @property
    def closed(self) -> bool:
        """True once the pool has been shut down (gracefully or not)."""
        return self._closed

    def submit(self, task_id, payload, context=None) -> None:
        """Enqueue one task; results arrive via :meth:`next_result`.

        ``context`` overrides the trace context attached to the task (a
        :class:`~repro.obs.TraceContext` or its packed tuple — the serving
        tier forwards request contexts captured on other threads).  By
        default the submitting thread's current context rides along, so a
        worker's ``worker.task`` span parents on the span open here.
        """
        if self._closed:
            raise RuntimeError("cannot submit to a closed WorkerPool")
        if self._transport_requests and self._transport is not None:
            min_bytes = (DEFAULT_MIN_SHM_BYTES
                         if self._transport_min_bytes is None
                         else self._transport_min_bytes)
            payload = encode_payload(payload, self._transport,
                                     min_bytes=min_bytes)
        if context is None:
            current = current_context()
            context = current.pack() if current is not None else None
        elif isinstance(context, TraceContext):
            context = context.pack()
        self._tasks.put((task_id, wrap_context(payload, context)))

    def workers_alive(self) -> list[bool]:
        """Per-worker liveness (a supervisor polls this between results —
        the heartbeat in :meth:`next_result` only fires while a result is
        being awaited, so an idle pool needs this to notice silent death)."""
        return [worker.is_alive() for worker in self._workers]

    def next_result(self):
        """Block for the next ``(worker_id, task_id, value)`` result.

        Completion order is arbitrary — callers reorder by ``task_id``.
        Raises :class:`WorkerError` on a worker exception (original traceback
        embedded), on a silently-dead worker, or after ``timeout`` seconds
        without any result (heartbeat).
        """
        deadline = time.monotonic() + self.timeout
        dead_since: float | None = None
        while True:
            try:
                kind, worker_id, task_id, value = self._results.get(
                    timeout=self.poll_interval)
            except queue_mod.Empty:
                now = time.monotonic()
                dead = [w for w in self._workers if not w.is_alive()]
                if dead:
                    # Give the queue feeder a grace window (monotonic, so a
                    # loaded machine's wall-clock hiccups don't count) to
                    # flush a final result/error the worker produced right
                    # before exiting.
                    if dead_since is None:
                        dead_since = now
                    if now - dead_since >= self.death_grace:
                        exit_codes = {w.name: w.exitcode for w in dead}
                        self.terminate()
                        raise WorkerError(
                            -1, f"worker died without reporting a result "
                                f"(exit codes: {exit_codes})")
                else:
                    dead_since = None
                if now > deadline:
                    self.terminate()
                    raise WorkerError(
                        -1, f"no result within {self.timeout:.0f}s "
                            "(pipeline wedged or task too slow; raise the "
                            "loader timeout for long batches)")
                continue
            if kind == "error":
                self.terminate()
                raise WorkerError(worker_id, "worker task failed",
                                  remote_traceback=value)
            if self._transport is not None:
                value, shm_nbytes = decode_payload(
                    value, self._transport, copy=self._transport_copy)
                if shm_nbytes:
                    self.shm_bytes += shm_nbytes
                    self.shm_results += 1
                else:
                    self.raw_results += 1
                telemetry = get_telemetry()
                if telemetry is not None:
                    registry = telemetry.registry
                    if shm_nbytes:
                        registry.counter("pipeline.shm.bytes").inc(shm_nbytes)
                        registry.counter("pipeline.shm.results").inc()
                    else:
                        registry.counter("pipeline.shm.fallbacks").inc()
            return worker_id, task_id, value

    def close(self) -> None:
        """Graceful shutdown: sentinel every worker, join, reap stragglers."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            try:
                self._tasks.put(None)
            except (ValueError, OSError):             # pragma: no cover
                break
        self._reap(graceful_wait=5.0)

    def terminate(self) -> None:
        """Hard shutdown: terminate every worker immediately."""
        self._closed = True
        self._reap(graceful_wait=0.0)

    def _reap(self, graceful_wait: float) -> None:
        if graceful_wait > 0:
            for worker in self._workers:
                worker.join(timeout=graceful_wait)
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self._workers:
            worker.join(timeout=5.0)
        for queue in (self._tasks, self._results):
            queue.close()
            queue.cancel_join_thread()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):                                # pragma: no cover
        try:
            self.terminate()
        except Exception:
            pass


def parallel_map(factory: Callable, initargs: tuple, payloads: Sequence,
                 num_workers: int, timeout: float | None = None,
                 start_method: str | None = None,
                 transport: ShmArena | None = None,
                 transport_copy: bool = True,
                 process_role: str = "worker") -> list:
    """Run ``factory(*initargs)(payload)`` for every payload on a pool.

    Results come back **order-stable** (index-aligned with ``payloads``)
    regardless of worker completion order.  The pool is always torn down
    before returning — including on worker failure, where the worker's
    traceback re-raises here as :class:`WorkerError`.  An optional
    ``transport`` arena carries result arrays out-of-band; results are
    decoded as private copies by default since they outlive the call.
    """
    if not payloads:
        return []
    pool = WorkerPool(factory, initargs,
                      num_workers=min(num_workers, len(payloads)),
                      timeout=timeout, start_method=start_method,
                      transport=transport, transport_copy=transport_copy,
                      process_role=process_role)
    results: list = [None] * len(payloads)
    try:
        for index, payload in enumerate(payloads):
            pool.submit(index, payload)
        for _ in range(len(payloads)):
            _, task_id, value = pool.next_result()
            results[task_id] = value
    finally:
        pool.close()
    return results


# ----------------------------------------------------------------------
# Prefetching loader
# ----------------------------------------------------------------------

def _assemble(packed: PackedExamples, sampler: NegativeSampler | None,
              negatives: int, seed: int, max_len: int | None,
              epoch: int, index: int, rows: np.ndarray) -> Batch:
    """Build batch ``index`` of ``epoch`` — the single shared batch recipe.

    Both the in-process reference mode and every worker run exactly this
    function with randomness derived only from ``(seed, epoch, index)``,
    which is what makes the stream independent of ``num_workers``.
    """
    batch = packed.collate_rows(rows, max_len)
    if negatives and sampler is not None:
        rng = batch_rng(seed, epoch, index + 1)
        negs = sampler.sample_matrix(batch.users, batch.targets, negatives, rng=rng)
        batch.candidates = np.concatenate([batch.targets[:, None], negs], axis=1)
    return batch


def _prefetch_worker(packed: PackedExamples, sampler: NegativeSampler | None,
                     negatives: int, seed: int, max_len: int | None) -> Callable:
    """Worker factory: bind the shared state, return the per-task assembler."""
    def build(task) -> Batch:
        epoch, index, rows = task
        return _assemble(packed, sampler, negatives, seed, max_len,
                         epoch, index, rows)
    return build


class PrefetchLoader:
    """Shuffled mini-batches with parallel assembly and bounded prefetch.

    The drop-in evolution of :class:`~repro.data.batching.BatchLoader` for
    the training loop: collate (and optional negative presampling) runs on a
    pool of worker processes while the main process spends its time in model
    compute, with at most ``num_workers * prefetch`` batches in flight
    (double-buffered by default).  ``num_workers=0`` assembles in-process
    and is the deterministic reference — for a fixed ``seed`` every
    ``num_workers`` setting yields a bitwise-identical batch stream.

    Each completed iteration advances the epoch (resettable via
    :meth:`set_epoch`), so consecutive passes see different shuffles exactly
    like the ``rng``-driven ``BatchLoader``.

    Args:
        examples: the split to iterate.
        schema: behavior vocabulary (collate layout).
        batch_size: rows per batch.
        seed: base seed; all shuffle/sampling randomness derives from it.
        shuffle: visit examples in a per-epoch permutation (evaluation
            passes set False).
        max_len: optional padding cap (defaults to per-batch max length).
        drop_last: drop the trailing partial batch.
        num_workers: worker processes (0 = in-process reference mode).
        prefetch: in-flight batches per worker (bounded queue depth).
        negatives: per-row negatives to presample into ``Batch.candidates``
            (0 disables; requires ``dataset``).
        dataset: interaction corpus backing the negative sampler.
        sampling_mode: ``NegativeSampler`` mode for presampling.
        timeout: worker heartbeat timeout in seconds (``None`` = env /
            ``REPRO_POOL_TIMEOUT`` / 120).
        start_method: multiprocessing start method override.
        use_shm: carry worker-built batches through a shared-memory arena
            (zero-copy into the training loop) instead of pickling them;
            sized automatically from the packed sequence lengths.
    """

    def __init__(self, examples: Sequence[SequenceExample], schema: BehaviorSchema,
                 batch_size: int, seed: int = 0, shuffle: bool = True,
                 max_len: int | None = None, drop_last: bool = False,
                 num_workers: int = 0, prefetch: int = 2, negatives: int = 0,
                 dataset=None, sampling_mode: str = "uniform",
                 timeout: float | None = None, start_method: str | None = None,
                 use_shm: bool = True):
        if batch_size < 1:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        if num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {num_workers}")
        if prefetch < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {prefetch}")
        if negatives < 0:
            raise ValueError(f"negatives must be >= 0, got {negatives}")
        if negatives and dataset is None:
            raise ValueError("presampling negatives requires the dataset")
        self.packed = PackedExamples.from_examples(examples, schema)
        self.schema = schema
        self.batch_size = batch_size
        self.seed = seed
        self.shuffle = shuffle
        self.max_len = max_len
        self.drop_last = drop_last
        self.num_workers = num_workers
        self.prefetch = prefetch
        self.negatives = negatives
        self.timeout = timeout
        self.start_method = start_method
        self.use_shm = use_shm
        self.sampler = (NegativeSampler(dataset, np.random.default_rng(0),
                                        mode=sampling_mode)
                        if negatives else None)
        self._epoch = 0
        self._pool: WorkerPool | None = None
        self._arena: ShmArena | None = None

    def _batch_bytes_bound(self) -> int:
        """Upper bound on one collated batch's array bytes (arena slot size).

        Computed analytically from the packed CSR index pointers — the widest
        possible padded matrix is ``batch_size`` rows at the longest sequence
        in the split (or ``max_len`` when capped) — so the arena never needs
        a measure-first pass and oversize fallbacks only happen if the data
        itself changes under the loader.
        """
        rows = self.batch_size

        def width(indptr: np.ndarray) -> int:
            longest = int(np.diff(indptr).max()) if len(indptr) > 1 else 1
            if self.max_len is not None:
                longest = min(longest, self.max_len)
            return max(longest, 1)

        total = 2 * rows * 8                                # users, targets
        for data, indptr in self.packed.behaviors.values():
            total += rows * width(indptr) * (8 + 1)         # items + mask
        merged_width = width(self.packed.merged_items[1])
        total += rows * merged_width * (8 + 8 + 1)          # items/behaviors/mask
        if self.negatives:
            total += rows * (self.negatives + 1) * 8        # candidates
        arrays = 5 + 2 * len(self.packed.behaviors) + (1 if self.negatives else 0)
        return total + 64 * (arrays + 1)                    # alignment slack

    # -- epoch bookkeeping ---------------------------------------------
    @property
    def epoch(self) -> int:
        """The epoch the next iteration will use."""
        return self._epoch

    def set_epoch(self, epoch: int) -> None:
        """Pin the next iteration's epoch (resume / replay support)."""
        self._epoch = epoch

    def __len__(self) -> int:
        full, remainder = divmod(len(self.packed), self.batch_size)
        return full if (self.drop_last or remainder == 0) else full + 1

    def _epoch_chunks(self, epoch: int) -> list[np.ndarray]:
        order = epoch_order(self.seed, epoch, len(self.packed), self.shuffle)
        chunks = []
        for start in range(0, len(order), self.batch_size):
            chunk = order[start:start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                break
            chunks.append(chunk)
        return chunks

    # -- iteration ------------------------------------------------------
    def __iter__(self) -> Iterator[Batch]:
        epoch = self._epoch
        self._epoch += 1
        chunks = self._epoch_chunks(epoch)
        if self.num_workers == 0:
            return self._iter_inprocess(epoch, chunks)
        return self._iter_parallel(epoch, chunks)

    def _iter_inprocess(self, epoch: int, chunks: list[np.ndarray]) -> Iterator[Batch]:
        for index, rows in enumerate(chunks):
            yield _assemble(self.packed, self.sampler, self.negatives, self.seed,
                            self.max_len, epoch, index, rows)

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None or self._pool.closed:
            # The arena is recreated together with the pool: a crashed pool
            # may have lost in-flight slot leases, and a fresh free list is
            # cheaper than auditing the old one.
            if self._arena is not None:
                self._arena.close()
                self._arena = None
            if self.use_shm:
                # Slots for every in-flight task, the batch currently held
                # by the consumer, and margin for batches the consumer keeps
                # alive briefly after yielding the next one.
                slots = max(self.num_workers * self.prefetch, 2) + 4
                self._arena = ShmArena(self._batch_bytes_bound(), slots)
            self._pool = WorkerPool(
                _prefetch_worker,
                (self.packed, self.sampler, self.negatives, self.seed, self.max_len),
                num_workers=self.num_workers, timeout=self.timeout,
                start_method=self.start_method, transport=self._arena,
                process_role="loader")
        return self._pool

    def _iter_parallel(self, epoch: int, chunks: list[np.ndarray]) -> Iterator[Batch]:
        pool = self._ensure_pool()
        capacity = max(self.num_workers * self.prefetch, 2)
        telemetry = get_telemetry()
        registry = telemetry.registry if telemetry is not None else None
        ready: dict[int, Batch] = {}
        submitted = emitted = 0
        try:
            while emitted < len(chunks):
                while (submitted < len(chunks)
                       and submitted - emitted < capacity):
                    pool.submit(submitted, (epoch, submitted, chunks[submitted]))
                    submitted += 1
                if emitted in ready:
                    batch = ready.pop(emitted)
                    emitted += 1
                    if registry is not None:
                        registry.gauge("pipeline.queue_depth").set(len(ready))
                    yield batch
                    continue
                started = time.perf_counter()
                worker_id, task_id, batch = pool.next_result()
                if registry is not None:
                    registry.histogram("pipeline.wait_seconds").record(
                        time.perf_counter() - started)
                    registry.counter("pipeline.batches").inc()
                    registry.counter(pipeline_worker_batches(worker_id)).inc()
                    registry.gauge("pipeline.queue_depth").set(len(ready) + 1)
                ready[task_id] = batch
        finally:
            # Abandoned mid-epoch (consumer broke out): drain what is still
            # in flight so the pool stays clean for the next epoch.
            if not pool.closed:
                for _ in range(submitted - emitted - len(ready)):
                    try:
                        pool.next_result()
                    except WorkerError:
                        break

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (no-op for the in-process mode)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "PrefetchLoader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):                                # pragma: no cover
        try:
            self.close()
        except Exception:
            pass
