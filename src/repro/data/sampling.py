"""Negative sampling for training and ranking evaluation."""

from __future__ import annotations

import numpy as np

from .dataset import MultiBehaviorDataset
from .splits import SequenceExample

__all__ = ["NegativeSampler"]


class NegativeSampler:
    """Samples items a user has NOT interacted with.

    Two modes:

    * ``uniform`` — every non-interacted item is equally likely (the protocol
      used for the 99-negative ranking evaluation).
    * ``popularity`` — items are drawn proportional to corpus popularity
      (harder negatives; used as a training option).

    Exclusion sets are **lazy and array-backed**: nothing is materialized at
    construction time, and the first request for a user's profile caches it
    as one sorted ``int64`` array.  Loader startup is therefore O(1) instead
    of O(total interactions), and memory stays one compact array per user
    actually sampled for — which matters when a worker pool instantiates a
    sampler per process over a corpus with millions of users.
    """

    def __init__(self, dataset: MultiBehaviorDataset, rng: np.random.Generator,
                 mode: str = "uniform"):
        if mode not in ("uniform", "popularity"):
            raise ValueError(f"unknown sampling mode {mode!r}")
        self.num_items = dataset.num_items
        self.rng = rng
        self.mode = mode
        self._dataset = dataset
        self._exclusions: dict[int, np.ndarray] = {}
        if mode == "popularity":
            counts = dataset.item_popularity().astype(np.float64)
            counts[0] = 0.0
            total = counts.sum()
            self._probs = counts / total if total > 0 else None
        else:
            self._probs = None

    def exclusion_array(self, user: int) -> np.ndarray:
        """Sorted unique item ids of ``user``'s profile (empty for unseen)."""
        cached = self._exclusions.get(user)
        if cached is None:
            if self._dataset.has_user(user):
                items = self._dataset.items_of_user(user)
                cached = np.fromiter(items, dtype=np.int64, count=len(items))
                cached.sort()
            else:
                cached = np.zeros(0, dtype=np.int64)
            self._exclusions[user] = cached
        return cached

    def user_items(self, user: int) -> set[int]:
        """The exclusion set for ``user`` (empty for unseen users)."""
        return set(self.exclusion_array(user).tolist())

    def sample(self, user: int, count: int, exclude: set[int] | None = None) -> np.ndarray:
        """Draw ``count`` distinct negatives for ``user``.

        ``exclude`` adds extra forbidden ids (e.g. the current positive).
        Falls back to allowing repeats only if the item space is too small,
        which cannot happen at realistic scales.
        """
        profile = self.exclusion_array(user)
        if exclude:
            forbidden = np.union1d(profile, np.fromiter(exclude, dtype=np.int64,
                                                        count=len(exclude)))
        else:
            forbidden = profile
        available = self.num_items - len(forbidden)
        if available < count:
            raise ValueError(
                f"cannot sample {count} negatives: only {available} items available"
            )
        chosen: list[int] = []
        seen: set[int] = set()
        # Rejection sampling: fast because forbidden sets are small relative
        # to the item vocabulary.  Membership tests against the sorted
        # exclusion array are one vectorized searchsorted per draw batch;
        # only the surviving candidates touch Python.
        batch = max(4 * count, 16)
        while len(chosen) < count:
            if self.mode == "popularity" and self._probs is not None:
                candidates = self.rng.choice(self.num_items + 1, size=batch, p=self._probs)
            else:
                candidates = self.rng.integers(1, self.num_items + 1, size=batch)
            for item in candidates[~self._member(forbidden, candidates)]:
                item = int(item)
                if item in seen:
                    continue
                chosen.append(item)
                seen.add(item)
                if len(chosen) == count:
                    break
        return np.array(chosen, dtype=np.int64)

    @staticmethod
    def _member(sorted_values: np.ndarray, queries: np.ndarray) -> np.ndarray:
        """Boolean membership of ``queries`` in a sorted unique array."""
        if sorted_values.size == 0:
            return np.zeros(queries.shape, dtype=bool)
        pos = np.searchsorted(sorted_values, queries)
        pos = np.minimum(pos, sorted_values.size - 1)
        return sorted_values[pos] == queries

    def sample_matrix(self, users: np.ndarray, targets: np.ndarray, count: int,
                      rng: np.random.Generator | None = None) -> np.ndarray:
        """Vectorized batch sampling: ``count`` distinct negatives per row.

        ``targets[i]`` is additionally excluded for row ``i``.  The whole
        batch is drawn with matrix-shaped generator calls and filtered with
        one searchsorted pass over row-keyed ids (``row * (num_items + 1) +
        item`` turns per-row membership into a single sorted lookup), so no
        per-item Python runs — this is the path the prefetching pipeline's
        workers use.  Rows are statistically equivalent to :meth:`sample`
        but not bitwise-identical to it (different rejection order).

        ``rng`` overrides the sampler's generator (the pipeline passes a
        per-(epoch, batch) generator to keep worker scheduling out of the
        randomness).
        """
        rng = self.rng if rng is None else rng
        users = np.asarray(users, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        rows = users.shape[0]
        out = np.zeros((rows, count), dtype=np.int64)
        if rows == 0 or count == 0:
            return out
        stride = self.num_items + 1
        row_base = np.arange(rows, dtype=np.int64) * stride
        profiles = [self.exclusion_array(int(u)) for u in users]
        profile_sizes = np.fromiter((p.size for p in profiles), dtype=np.int64,
                                    count=rows)
        forbidden = np.concatenate(
            [p + base for p, base in zip(profiles, row_base)] + [row_base + targets]
        ) if rows else np.zeros(0, dtype=np.int64)
        forbidden.sort()
        target_in_profile = np.fromiter(
            (bool(self._member(p, t[None])[0]) for p, t in zip(profiles, targets)),
            dtype=bool, count=rows)
        available = self.num_items - profile_sizes - (~target_in_profile)
        if (available < count).any():
            worst = int(available.min())
            raise ValueError(
                f"cannot sample {count} negatives: only {worst} items available"
            )
        filled = np.zeros(rows, dtype=np.int64)
        chunk = max(2 * count, 16)
        for _ in range(64):
            if self.mode == "popularity" and self._probs is not None:
                draws = rng.choice(stride, size=(rows, chunk), p=self._probs)
                draws = draws.astype(np.int64, copy=False)
            else:
                draws = rng.integers(1, stride, size=(rows, chunk), dtype=np.int64)
            keys = row_base[:, None] + draws
            bad = self._member(forbidden, keys)
            # First occurrence wins among intra-chunk duplicates: sort each
            # row's keys, flag repeats, scatter the flags back.
            order = np.argsort(keys, axis=1, kind="stable")
            ranked = np.take_along_axis(keys, order, axis=1)
            dup_sorted = np.zeros_like(bad)
            dup_sorted[:, 1:] = ranked[:, 1:] == ranked[:, :-1]
            dup = np.zeros_like(bad)
            np.put_along_axis(dup, order, dup_sorted, axis=1)
            ok = ~(bad | dup)
            rank = np.cumsum(ok, axis=1)
            take = ok & (rank + filled[:, None] <= count)
            taken_rows, taken_cols = np.nonzero(take)
            out[taken_rows,
                filled[taken_rows] + rank[taken_rows, taken_cols] - 1] = \
                draws[taken_rows, taken_cols]
            filled += take.sum(axis=1)
            if (filled >= count).all():
                return out
            # Already-chosen keys join the forbidden set for the next round.
            forbidden = np.concatenate([forbidden, keys[take]])
            forbidden.sort()
        raise RuntimeError(          # pragma: no cover - 64 rounds ≫ worst case
            "negative sampling failed to converge; item space too constrained")

    def candidates_for(self, example: SequenceExample, num_negatives: int = 99) -> np.ndarray:
        """Ranking candidates ``[positive, neg_1, ..., neg_n]`` for one example."""
        negatives = self.sample(example.user, num_negatives, exclude={example.target})
        return np.concatenate([[example.target], negatives]).astype(np.int64)
