"""Negative sampling for training and ranking evaluation."""

from __future__ import annotations

import numpy as np

from .dataset import MultiBehaviorDataset
from .splits import SequenceExample

__all__ = ["NegativeSampler"]


class NegativeSampler:
    """Samples items a user has NOT interacted with.

    Two modes:

    * ``uniform`` — every non-interacted item is equally likely (the protocol
      used for the 99-negative ranking evaluation).
    * ``popularity`` — items are drawn proportional to corpus popularity
      (harder negatives; used as a training option).
    """

    def __init__(self, dataset: MultiBehaviorDataset, rng: np.random.Generator,
                 mode: str = "uniform"):
        if mode not in ("uniform", "popularity"):
            raise ValueError(f"unknown sampling mode {mode!r}")
        self.num_items = dataset.num_items
        self.rng = rng
        self.mode = mode
        self._user_items = {user: dataset.items_of_user(user) for user in dataset.users}
        if mode == "popularity":
            counts = dataset.item_popularity().astype(np.float64)
            counts[0] = 0.0
            total = counts.sum()
            self._probs = counts / total if total > 0 else None
        else:
            self._probs = None

    def user_items(self, user: int) -> set[int]:
        """The exclusion set for ``user`` (empty for unseen users)."""
        return self._user_items.get(user, set())

    def sample(self, user: int, count: int, exclude: set[int] | None = None) -> np.ndarray:
        """Draw ``count`` distinct negatives for ``user``.

        ``exclude`` adds extra forbidden ids (e.g. the current positive).
        Falls back to allowing repeats only if the item space is too small,
        which cannot happen at realistic scales.
        """
        forbidden = set(self.user_items(user))
        if exclude:
            forbidden |= exclude
        available = self.num_items - len(forbidden)
        if available < count:
            raise ValueError(
                f"cannot sample {count} negatives: only {available} items available"
            )
        chosen: list[int] = []
        seen: set[int] = set()
        # Rejection sampling: fast because forbidden sets are small relative
        # to the item vocabulary.
        batch = max(4 * count, 16)
        while len(chosen) < count:
            if self.mode == "popularity" and self._probs is not None:
                candidates = self.rng.choice(self.num_items + 1, size=batch, p=self._probs)
            else:
                candidates = self.rng.integers(1, self.num_items + 1, size=batch)
            for item in candidates:
                item = int(item)
                if item in forbidden or item in seen:
                    continue
                chosen.append(item)
                seen.add(item)
                if len(chosen) == count:
                    break
        return np.array(chosen, dtype=np.int64)

    def candidates_for(self, example: SequenceExample, num_negatives: int = 99) -> np.ndarray:
        """Ranking candidates ``[positive, neg_1, ..., neg_n]`` for one example."""
        negatives = self.sample(example.user, num_negatives, exclude={example.target})
        return np.concatenate([[example.target], negatives]).astype(np.int64)
