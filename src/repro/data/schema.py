"""Core data-model types for multi-behavior recommendation.

An *interaction* is one (user, item, behavior, timestamp) event.  A
*behavior schema* names the behavior types a dataset contains and singles
out the **target behavior** — the one the recommender must predict (e.g.
``buy``) — from the **auxiliary behaviors** that provide side evidence
(e.g. ``view``, ``cart``, ``fav``).

Item ids are 1-based everywhere; id 0 is reserved for sequence padding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Interaction", "BehaviorSchema", "PAD_ITEM", "TAOBAO_SCHEMA", "TMALL_SCHEMA",
           "YELP_SCHEMA"]

PAD_ITEM = 0
"""Reserved item id used to pad sequences (never a real item)."""


@dataclass(frozen=True, slots=True)
class Interaction:
    """A single user-item event under one behavior type."""

    user: int
    item: int
    behavior: str
    timestamp: int

    def __post_init__(self) -> None:
        if self.item == PAD_ITEM:
            raise ValueError("item id 0 is reserved for padding")
        if self.user < 0:
            raise ValueError(f"negative user id: {self.user}")


@dataclass(frozen=True)
class BehaviorSchema:
    """The behavior vocabulary of a dataset.

    Attributes:
        behaviors: all behavior names, auxiliary first, target last by
            convention (order defines the behavior-id encoding used by
            models: ``behavior_id = behaviors.index(name)``).
        target: the behavior whose next item the model predicts.
    """

    behaviors: tuple[str, ...]
    target: str

    def __post_init__(self) -> None:
        if len(set(self.behaviors)) != len(self.behaviors):
            raise ValueError(f"duplicate behavior names: {self.behaviors}")
        if self.target not in self.behaviors:
            raise ValueError(f"target {self.target!r} not among behaviors {self.behaviors}")

    @property
    def auxiliary(self) -> tuple[str, ...]:
        """Behaviors other than the target, in schema order."""
        return tuple(b for b in self.behaviors if b != self.target)

    @property
    def num_behaviors(self) -> int:
        return len(self.behaviors)

    def behavior_id(self, name: str) -> int:
        """Stable integer encoding of a behavior name."""
        try:
            return self.behaviors.index(name)
        except ValueError:
            raise KeyError(f"unknown behavior {name!r}; schema has {self.behaviors}") from None

    def subset(self, keep: tuple[str, ...]) -> "BehaviorSchema":
        """Schema restricted to ``keep`` (must include the target).

        Used by the behavior-contribution experiment (F5).
        """
        if self.target not in keep:
            raise ValueError("subset must keep the target behavior")
        ordered = tuple(b for b in self.behaviors if b in keep)
        return BehaviorSchema(behaviors=ordered, target=self.target)


# The three standard dataset schemas for this subfield.
TAOBAO_SCHEMA = BehaviorSchema(behaviors=("view", "cart", "fav", "buy"), target="buy")
TMALL_SCHEMA = BehaviorSchema(behaviors=("view", "fav", "cart", "buy"), target="buy")
YELP_SCHEMA = BehaviorSchema(behaviors=("view", "like", "tip"), target="tip")
