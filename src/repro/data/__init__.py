"""``repro.data`` — multi-behavior interaction data model and pipelines.

Flow: :func:`~repro.data.synthetic.generate` (or any loader producing
:class:`~repro.data.schema.Interaction` events) → :class:`MultiBehaviorDataset`
→ :func:`k_core_filter` / :func:`truncate_history` → :func:`leave_one_out_split`
→ :class:`BatchLoader` / :class:`PrefetchLoader` batches consumed by models.

:mod:`~repro.data.pipeline` holds the parallel input path: CSR-packed
examples with a fully vectorized collate, a prefetching multiprocess loader
with deterministic per-``(epoch, batch)`` seeding, and the worker pool that
also powers sharded ranking evaluation.  :mod:`~repro.data.shm` carries the
arrays between those processes through shared memory (descriptors on the
queue, zero-copy views on the consumer side).
"""

from .batching import Batch, BatchLoader, collate, pad_sequences
from .pipeline import (PackedExamples, PrefetchLoader, WorkerError, WorkerPool,
                       parallel_map)
from .shm import ShmArena, ShmBlock, ShmParamMirror, decode_payload, encode_payload
from .dataset import DatasetStats, MultiBehaviorDataset
from .loaders import UB_BEHAVIOR_MAP, load_interaction_csv, load_user_behavior_csv
from .preprocessing import drop_holdout_targets, k_core_filter, remap_ids, truncate_history
from .sampling import NegativeSampler
from .schema import (PAD_ITEM, TAOBAO_SCHEMA, TMALL_SCHEMA, YELP_SCHEMA, BehaviorSchema,
                     Interaction)
from .splits import DataSplit, SequenceExample, leave_one_out_split, temporal_split
from .synthetic import (DATASET_PRESETS, SyntheticConfig, generate, taobao_like, tmall_like,
                        yelp_like)

__all__ = [
    "Interaction", "BehaviorSchema", "PAD_ITEM",
    "TAOBAO_SCHEMA", "TMALL_SCHEMA", "YELP_SCHEMA",
    "MultiBehaviorDataset", "DatasetStats",
    "load_interaction_csv", "load_user_behavior_csv", "UB_BEHAVIOR_MAP",
    "SyntheticConfig", "generate", "taobao_like", "tmall_like", "yelp_like",
    "DATASET_PRESETS",
    "k_core_filter", "truncate_history", "remap_ids", "drop_holdout_targets",
    "DataSplit", "SequenceExample", "leave_one_out_split", "temporal_split",
    "NegativeSampler",
    "Batch", "BatchLoader", "collate", "pad_sequences",
    "PackedExamples", "PrefetchLoader", "WorkerError", "WorkerPool",
    "parallel_map",
    "ShmArena", "ShmBlock", "ShmParamMirror", "encode_payload", "decode_payload",
]
