"""Registry mapping experiment ids to their runners (DESIGN.md §4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from . import ablations, runners
from .results import ExperimentResult

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One entry of the per-experiment index."""

    experiment_id: str
    title: str
    kind: str                      # "table" or "figure"
    runner: Callable[..., ExperimentResult]
    bench_target: str              # the benchmark file regenerating it


EXPERIMENTS: dict[str, Experiment] = {
    exp.experiment_id: exp for exp in (
        Experiment("T1", "Dataset statistics", "table",
                   runners.run_t1_dataset_stats, "benchmarks/bench_t1_dataset_stats.py"),
        Experiment("T2", "Overall performance comparison", "table",
                   runners.run_t2_overall, "benchmarks/bench_t2_overall.py"),
        Experiment("T3", "Ablation study", "table",
                   runners.run_t3_ablation, "benchmarks/bench_t3_ablation.py"),
        Experiment("F1", "Number of interests K", "figure",
                   runners.run_f1_num_interests, "benchmarks/bench_f1_num_interests.py"),
        Experiment("F2", "SSL weight x temperature grid", "figure",
                   runners.run_f2_ssl_grid, "benchmarks/bench_f2_ssl_grid.py"),
        Experiment("F3", "Hypergraph depth and dim", "figure",
                   runners.run_f3_depth_dim, "benchmarks/bench_f3_depth_dim.py"),
        Experiment("F4", "Cold-start analysis", "figure",
                   runners.run_f4_cold_start, "benchmarks/bench_f4_cold_start.py"),
        Experiment("F5", "Auxiliary-behavior contribution", "figure",
                   runners.run_f5_behavior_subsets, "benchmarks/bench_f5_behavior_subsets.py"),
        Experiment("T4", "Time efficiency", "table",
                   runners.run_t4_efficiency, "benchmarks/bench_t4_efficiency.py"),
        Experiment("F6", "Interest-space analysis", "figure",
                   runners.run_f6_interest_space, "benchmarks/bench_f6_interest_space.py"),
        Experiment("F7", "Convergence analysis", "figure",
                   runners.run_f7_convergence, "benchmarks/bench_f7_convergence.py"),
        Experiment("A1", "Interest-extractor ablation", "table",
                   ablations.run_a1_interest_mode, "benchmarks/bench_a1_interest_mode.py"),
        Experiment("A2", "Hypergraph-construction ablation", "table",
                   ablations.run_a2_hypergraph_construction,
                   "benchmarks/bench_a2_hypergraph_construction.py"),
        Experiment("A3", "Non-sequential reference comparison", "table",
                   ablations.run_a3_nonsequential_references,
                   "benchmarks/bench_a3_nonsequential.py"),
    )
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id with runner-specific overrides."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; have {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[experiment_id].runner(**kwargs)
