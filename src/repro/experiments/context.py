"""Experiment context: one place that assembles data, splits and hypergraphs.

Every benchmark builds an :class:`ExperimentContext` from a dataset preset
name, a scale factor and a seed; the context memoizes the derived artifacts
(splits, training view, hypergraph, candidate sets) so multi-model
experiments reuse them, exactly as a shared pipeline would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import (DATASET_PRESETS, DataSplit, MultiBehaviorDataset, SyntheticConfig,
                        drop_holdout_targets, generate, k_core_filter, leave_one_out_split)
from repro.eval.protocol import CandidateSets
from repro.hypergraph import BuilderConfig, Hypergraph, build_hypergraph

__all__ = ["ExperimentContext"]


@dataclass
class ExperimentContext:
    """Data artifacts shared by all models of one experiment.

    Attributes:
        dataset: the preprocessed corpus (k-core filtered, ids remapped).
        split: leave-one-out train/valid/test examples.
        train_view: the corpus with holdout target events removed — what
            non-parametric models fit on and the hypergraph is built from.
        graph: the training hypergraph.
        test_candidates / valid_candidates: fixed 99-negative candidate sets.
    """

    dataset: MultiBehaviorDataset
    split: DataSplit
    train_view: MultiBehaviorDataset
    graph: Hypergraph
    test_candidates: CandidateSets
    valid_candidates: CandidateSets
    seed: int

    @classmethod
    def build(cls, preset: str = "taobao", scale: float = 0.5, seed: int = 1,
              max_len: int = 30, num_negatives: int = 99,
              config: SyntheticConfig | None = None,
              builder: BuilderConfig | None = None) -> "ExperimentContext":
        """Generate, preprocess and split one dataset.

        ``config`` overrides the preset entirely when given (used by
        generator-sensitivity experiments).
        """
        if config is None:
            if preset not in DATASET_PRESETS:
                raise KeyError(f"unknown preset {preset!r}; have {sorted(DATASET_PRESETS)}")
            config = DATASET_PRESETS[preset](scale)
        dataset = k_core_filter(generate(config, seed=seed))
        split = leave_one_out_split(dataset, max_len=max_len)
        train_view = drop_holdout_targets(dataset, 2)
        graph = build_hypergraph(dataset, builder)
        # At tiny scales the item vocabulary may not support the requested
        # negative count; clamp so every user can still be sampled.
        if dataset.users:
            max_profile = max(len(dataset.items_of_user(u)) for u in dataset.users)
            num_negatives = min(num_negatives, max(1, dataset.num_items - max_profile - 1))
        return cls(
            dataset=dataset,
            split=split,
            train_view=train_view,
            graph=graph,
            test_candidates=CandidateSets(dataset, split.test, num_negatives, seed=seed + 70),
            valid_candidates=CandidateSets(dataset, split.valid, num_negatives, seed=seed + 71),
            seed=seed,
        )

    def restrict_behaviors(self, keep: tuple[str, ...]) -> "ExperimentContext":
        """Context over the same corpus but with only ``keep`` behaviors (F5)."""
        dataset = self.dataset.restrict_behaviors(keep)
        split = leave_one_out_split(dataset, max_len=30)
        return ExperimentContext(
            dataset=dataset,
            split=split,
            train_view=drop_holdout_targets(dataset, 2),
            graph=build_hypergraph(dataset),
            test_candidates=CandidateSets(dataset, split.test, self.test_candidates.num_negatives,
                                          seed=self.seed + 70),
            valid_candidates=CandidateSets(dataset, split.valid,
                                           self.valid_candidates.num_negatives,
                                           seed=self.seed + 71),
            seed=self.seed,
        )
