"""Experiment runners — one function per table/figure of the reconstruction.

See DESIGN.md §4 for the experiment index.  Every runner takes explicit
budget knobs (``scale``, ``epochs``, ``dim``) so the same code serves both
the full benchmark run and fast smoke tests.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import MISSL, MISSLConfig
from repro.data import DATASET_PRESETS, generate, k_core_filter
from repro.eval.evaluator import evaluate_ranking, rank_all
from repro.eval.metrics import MetricReport
from repro.train import TrainConfig, Trainer

from .context import ExperimentContext
from .results import ExperimentResult
from .zoo import MODEL_FAMILIES, build_model

__all__ = [
    "train_and_evaluate", "run_t1_dataset_stats", "run_t2_overall", "run_t3_ablation",
    "run_f1_num_interests", "run_f2_ssl_grid", "run_f3_depth_dim", "run_f4_cold_start",
    "run_f5_behavior_subsets", "run_t4_efficiency", "run_f6_interest_space",
    "run_f7_convergence",
]


def train_and_evaluate(model, context: ExperimentContext, epochs: int = 15,
                       batch_size: int = 128, patience: int = 3, seed: int = 0,
                       callbacks: tuple = (), num_workers: int = 0,
                       prefetch: int = 2, data_parallel: bool = False,
                       grad_shards: int = 4,
                       ) -> tuple[MetricReport, float]:
    """Fit (if trainable) and test-evaluate one model; returns (report, seconds)."""
    start = time.perf_counter()
    if model.parameters():
        config = TrainConfig(epochs=epochs, batch_size=batch_size, patience=patience,
                             seed=seed, num_workers=num_workers, prefetch=prefetch,
                             data_parallel=data_parallel, grad_shards=grad_shards)
        Trainer(model, context.split, config, callbacks=callbacks).fit()
    report = evaluate_ranking(model, context.split.test, context.test_candidates,
                              context.dataset.schema, ks=(5, 10, 20))
    return report, time.perf_counter() - start


# ----------------------------------------------------------------------
# T1 — dataset statistics
# ----------------------------------------------------------------------

def run_t1_dataset_stats(scale: float = 0.5, seed: int = 1) -> ExperimentResult:
    """Statistics of the three generated corpora after preprocessing."""
    headers = ["dataset", "users", "items", "interactions", "per-behavior", "density"]
    rows = []
    raw = {}
    for preset in DATASET_PRESETS:
        dataset = k_core_filter(generate(DATASET_PRESETS[preset](scale), seed=seed))
        stats = dataset.stats()
        rows.append(stats.as_row())
        raw[preset] = stats
    return ExperimentResult(
        experiment_id="T1", title="Dataset statistics", headers=headers, rows=rows,
        notes="Synthetic substitutes for Taobao/Tmall/Yelp (see DESIGN.md §2).",
        raw=raw,
    )


# ----------------------------------------------------------------------
# T2 — overall comparison
# ----------------------------------------------------------------------

T2_MODELS = ("POP", "ItemKNN", "GRU4Rec", "SASRec", "BERT4Rec", "ComiRec", "CL4SRec",
             "MBGRU", "MBSASRec", "MBHTLite", "MISSL")
"""The paper-aligned comparison set: sequential and multi-behavior families.

Non-sequential graph-CF models (BPRMF, LightGCN) are deliberately outside
this table — the paper's baselines are all sequential — and are reported
separately by experiment A3."""


def run_t2_overall(presets: tuple[str, ...] = ("taobao", "tmall", "yelp"),
                   scale: float = 0.5, dim: int = 32, epochs: int = 15,
                   seed: int = 1, models: tuple[str, ...] | None = None
                   ) -> ExperimentResult:
    """MISSL vs the paper-aligned baseline families on every dataset."""
    models = tuple(models or T2_MODELS)
    headers = ["dataset", "family", "model", "HR@5", "NDCG@5", "HR@10", "NDCG@10", "secs"]
    rows = []
    raw: dict = {}
    for preset in presets:
        context = ExperimentContext.build(preset, scale=scale, seed=seed)
        for name in models:
            model = build_model(name, context, dim=dim, seed=seed)
            report, seconds = train_and_evaluate(model, context, epochs=epochs, seed=seed)
            rows.append([preset, MODEL_FAMILIES[name], name,
                         report["HR@5"], report["NDCG@5"],
                         report["HR@10"], report["NDCG@10"], round(seconds, 1)])
            raw[(preset, name)] = report
    return ExperimentResult(
        experiment_id="T2", title="Overall performance comparison",
        headers=headers, rows=rows,
        notes="Expected shape: MISSL best; multi-behavior > single-behavior.",
        raw=raw,
    )


# ----------------------------------------------------------------------
# T3 — ablation study
# ----------------------------------------------------------------------

ABLATIONS: dict[str, dict] = {
    "full": {},
    "w/o hypergraph": {"use_hypergraph": False},
    "w/o multi-interest": {"num_interests": 1},
    "w/o ssl-contrast": {"lambda_ssl": 0.0},
    "w/o ssl-augment": {"lambda_aug": 0.0},
    "w/o disentangle": {"lambda_disent": 0.0},
    "w/o auxiliary": {"use_auxiliary": False, "lambda_ssl": 0.0},
}


def run_t3_ablation(preset: str = "taobao", scale: float = 0.5, dim: int = 32,
                    epochs: int = 15, seed: int = 1,
                    variants: tuple[str, ...] | None = None) -> ExperimentResult:
    """MISSL with each component removed in turn."""
    variants = tuple(variants or ABLATIONS)
    context = ExperimentContext.build(preset, scale=scale, seed=seed)
    headers = ["variant", "HR@10", "NDCG@10", "secs"]
    rows = []
    raw: dict = {}
    base = MISSLConfig(dim=dim)
    for variant in variants:
        config = base.ablate(**ABLATIONS[variant])
        model = build_model("MISSL", context, dim=dim, seed=seed, missl_config=config)
        report, seconds = train_and_evaluate(model, context, epochs=epochs, seed=seed)
        rows.append([variant, report["HR@10"], report["NDCG@10"], round(seconds, 1)])
        raw[variant] = report
    return ExperimentResult(
        experiment_id="T3", title=f"Ablation study ({preset})",
        headers=headers, rows=rows,
        notes="Every ablation should underperform the full model.",
        raw=raw,
    )


# ----------------------------------------------------------------------
# F1 — number of interests K
# ----------------------------------------------------------------------

def run_f1_num_interests(preset: str = "taobao", scale: float = 0.5, dim: int = 32,
                         epochs: int = 15, seed: int = 1,
                         ks: tuple[int, ...] = (1, 2, 4, 6, 8)) -> ExperimentResult:
    """HR/NDCG as a function of the number of interest prototypes."""
    context = ExperimentContext.build(preset, scale=scale, seed=seed)
    headers = ["K", "HR@10", "NDCG@10"]
    rows = []
    raw: dict = {}
    for k in ks:
        config = MISSLConfig(dim=dim, num_interests=k)
        model = build_model("MISSL", context, dim=dim, seed=seed, missl_config=config)
        report, _ = train_and_evaluate(model, context, epochs=epochs, seed=seed)
        rows.append([k, report["HR@10"], report["NDCG@10"]])
        raw[k] = report
    return ExperimentResult(
        experiment_id="F1", title="Sensitivity to the number of interests K",
        headers=headers, rows=rows,
        notes="Expected: K>1 beats K=1; curve flattens/peaks near the planted "
              "interests-per-user.",
        raw=raw,
    )


# ----------------------------------------------------------------------
# F2 — SSL weight × temperature grid
# ----------------------------------------------------------------------

def run_f2_ssl_grid(preset: str = "taobao", scale: float = 0.5, dim: int = 32,
                    epochs: int = 12, seed: int = 1,
                    lambdas: tuple[float, ...] = (0.0, 0.05, 0.1, 0.3),
                    temperatures: tuple[float, ...] = (0.1, 0.3, 0.7)) -> ExperimentResult:
    """Heat-map grid over λ_ssl and τ."""
    context = ExperimentContext.build(preset, scale=scale, seed=seed)
    headers = ["lambda_ssl", "temperature", "HR@10", "NDCG@10"]
    rows = []
    raw: dict = {}
    for lam in lambdas:
        for tau in temperatures:
            config = MISSLConfig(dim=dim, lambda_ssl=lam, temperature=tau)
            model = build_model("MISSL", context, dim=dim, seed=seed, missl_config=config)
            report, _ = train_and_evaluate(model, context, epochs=epochs, seed=seed)
            rows.append([lam, tau, report["HR@10"], report["NDCG@10"]])
            raw[(lam, tau)] = report
    return ExperimentResult(
        experiment_id="F2", title="SSL weight and temperature grid",
        headers=headers, rows=rows,
        notes="Expected: moderate λ/τ best; λ=0 (no SSL) below the peak.",
        raw=raw,
    )


# ----------------------------------------------------------------------
# F3 — hypergraph depth × embedding dim
# ----------------------------------------------------------------------

def run_f3_depth_dim(preset: str = "taobao", scale: float = 0.5, epochs: int = 12,
                     seed: int = 1, depths: tuple[int, ...] = (0, 1, 2, 3),
                     dims: tuple[int, ...] = (16, 32, 64)) -> ExperimentResult:
    """Hypergraph transformer depth and embedding size sweeps."""
    context = ExperimentContext.build(preset, scale=scale, seed=seed)
    headers = ["axis", "value", "HR@10", "NDCG@10"]
    rows = []
    raw: dict = {}
    for depth in depths:
        config = MISSLConfig(dim=32, hg_layers=depth, use_hypergraph=depth > 0)
        model = build_model("MISSL", context, dim=32, seed=seed, missl_config=config)
        report, _ = train_and_evaluate(model, context, epochs=epochs, seed=seed)
        rows.append(["hg_layers", depth, report["HR@10"], report["NDCG@10"]])
        raw[("depth", depth)] = report
    for dim in dims:
        config = MISSLConfig(dim=dim)
        model = build_model("MISSL", context, dim=dim, seed=seed, missl_config=config)
        report, _ = train_and_evaluate(model, context, epochs=epochs, seed=seed)
        rows.append(["dim", dim, report["HR@10"], report["NDCG@10"]])
        raw[("dim", dim)] = report
    return ExperimentResult(
        experiment_id="F3", title="Hypergraph depth and embedding dim sensitivity",
        headers=headers, rows=rows,
        notes="Expected: depth 1-2 beats 0; very deep stacks oversmooth.",
        raw=raw,
    )


# ----------------------------------------------------------------------
# F4 — cold start by target-history length
# ----------------------------------------------------------------------

def run_f4_cold_start(preset: str = "taobao", scale: float = 0.5, dim: int = 32,
                      epochs: int = 15, seed: int = 1,
                      models: tuple[str, ...] = ("SASRec", "MBSASRec", "MISSL"),
                      boundaries: tuple[int, ...] = (4, 6)) -> ExperimentResult:
    """Per-user-group metrics, grouped by target-behavior history length.

    Groups: ``<= boundaries[0]``, middle, ``> boundaries[-1]``.
    """
    context = ExperimentContext.build(preset, scale=scale, seed=seed)
    lengths = context.dataset.target_lengths()
    test_lengths = np.array([lengths[e.user] for e in context.split.test])
    groups = {
        f"<={boundaries[0]}": test_lengths <= boundaries[0],
        f"{boundaries[0] + 1}-{boundaries[-1]}": (test_lengths > boundaries[0])
                                                 & (test_lengths <= boundaries[-1]),
        f">{boundaries[-1]}": test_lengths > boundaries[-1],
    }
    headers = ["model", "group", "users", "HR@10", "NDCG@10"]
    rows = []
    raw: dict = {}
    for name in models:
        model = build_model(name, context, dim=dim, seed=seed)
        if model.parameters():
            Trainer(model, context.split,
                    TrainConfig(epochs=epochs, patience=3, seed=seed)).fit()
        ranks = rank_all(model, context.split.test, context.test_candidates,
                         context.dataset.schema)
        for group, member in groups.items():
            if member.sum() == 0:
                continue
            report = MetricReport.from_ranks(ranks[member], ks=(10,))
            rows.append([name, group, int(member.sum()),
                         report["HR@10"], report["NDCG@10"]])
            raw[(name, group)] = report
    return ExperimentResult(
        experiment_id="F4", title="Cold-start analysis by target-history length",
        headers=headers, rows=rows,
        notes="Expected: MISSL's relative gain over SASRec largest on the "
              "sparsest group.",
        raw=raw,
    )


# ----------------------------------------------------------------------
# F5 — auxiliary-behavior contribution
# ----------------------------------------------------------------------

def run_f5_behavior_subsets(preset: str = "taobao", scale: float = 0.5, dim: int = 32,
                            epochs: int = 15, seed: int = 1) -> ExperimentResult:
    """Train MISSL with incrementally larger behavior subsets."""
    context = ExperimentContext.build(preset, scale=scale, seed=seed)
    schema = context.dataset.schema
    subsets: list[tuple[str, ...]] = [(schema.target,)]
    for behavior in schema.auxiliary:
        subsets.append(tuple(subsets[-1]) + (behavior,))
    headers = ["behaviors", "HR@10", "NDCG@10"]
    rows = []
    raw: dict = {}
    for subset in subsets:
        sub_context = context.restrict_behaviors(subset)
        config = MISSLConfig(dim=dim, use_auxiliary=len(subset) > 1)
        model = build_model("MISSL", sub_context, dim=dim, seed=seed, missl_config=config)
        report, _ = train_and_evaluate(model, sub_context, epochs=epochs, seed=seed)
        label = "+".join(subset)
        rows.append([label, report["HR@10"], report["NDCG@10"]])
        raw[subset] = report
    return ExperimentResult(
        experiment_id="F5", title="Contribution of each auxiliary behavior",
        headers=headers, rows=rows,
        notes="Expected: metrics improve as auxiliary behaviors are added.",
        raw=raw,
    )


# ----------------------------------------------------------------------
# T4 — efficiency
# ----------------------------------------------------------------------

def run_t4_efficiency(preset: str = "taobao", scale: float = 0.5, dim: int = 32,
                      seed: int = 1,
                      models: tuple[str, ...] = ("SASRec", "ComiRec", "MBSASRec",
                                                 "MBHTLite", "MISSL")) -> ExperimentResult:
    """Parameters, training time per epoch, inference latency per user."""
    context = ExperimentContext.build(preset, scale=scale, seed=seed)
    headers = ["model", "params", "train s/epoch", "infer ms/user"]
    rows = []
    raw: dict = {}
    for name in models:
        model = build_model(name, context, dim=dim, seed=seed)
        trainer = Trainer(model, context.split, TrainConfig(epochs=1, patience=1, seed=seed))
        history = trainer.fit()
        # Optimization time only: the per-epoch validation ranking pass is
        # an evaluation cost and must not skew the train-s/epoch column.
        epoch_seconds = history.total_train_seconds()
        start = time.perf_counter()
        evaluate_ranking(model, context.split.test, context.test_candidates,
                         context.dataset.schema)
        infer_ms = 1000.0 * (time.perf_counter() - start) / max(1, len(context.split.test))
        rows.append([name, model.num_parameters(), round(epoch_seconds, 2),
                     round(infer_ms, 3)])
        raw[name] = {"params": model.num_parameters(), "epoch_seconds": epoch_seconds,
                     "infer_ms": infer_ms}
    return ExperimentResult(
        experiment_id="T4", title="Time efficiency comparison",
        headers=headers, rows=rows,
        notes="Expected: MISSL costlier than SASRec but the same order of magnitude.",
        raw=raw,
    )


# ----------------------------------------------------------------------
# F6 — interest-space analysis
# ----------------------------------------------------------------------

def _mean_offdiag_cosine(interests: np.ndarray) -> float:
    """Mean |cos| between different interest slots, averaged over users."""
    normed = interests / np.maximum(np.linalg.norm(interests, axis=-1, keepdims=True), 1e-12)
    gram = np.einsum("bkd,bjd->bkj", normed, normed)
    k = gram.shape[1]
    mask = ~np.eye(k, dtype=bool)
    return float(np.abs(gram[:, mask]).mean())


def _cluster_separation(table: np.ndarray, clusters: np.ndarray) -> float:
    """Ratio of between-cluster to within-cluster mean distance of item embeddings.

    Higher = planted clusters are better separated in the embedding space.
    """
    items = table[1:]  # drop padding row
    centroids = np.stack([items[clusters == c].mean(axis=0)
                          for c in np.unique(clusters)])
    within = np.mean([
        np.linalg.norm(items[clusters == c] - centroids[i], axis=1).mean()
        for i, c in enumerate(np.unique(clusters))
    ])
    diffs = centroids[:, None, :] - centroids[None, :, :]
    pair = np.linalg.norm(diffs, axis=-1)
    between = pair[~np.eye(len(centroids), dtype=bool)].mean()
    return float(between / max(within, 1e-12))


def run_f6_interest_space(preset: str = "taobao", scale: float = 0.5, dim: int = 32,
                          epochs: int = 12, seed: int = 1) -> ExperimentResult:
    """Interest-space geometry with vs without the disentanglement penalty.

    Three quantities stand in for the paper's t-SNE panels:

    * **prototype off-diag |cos|** — separation of the K learned interest
      prototypes; the disentanglement penalty acts on these directly and
      must lower the value.
    * **user-interest off-diag |cos|** — separation of per-user fused
      interests (reported as an observation: on short synthetic histories
      the fused slots largely share one direction regardless of the penalty).
    * **cluster separation** — between/within-cluster distance ratio of the
      item table against the generator's planted clusters, hypergraph-
      enhanced vs raw.
    """
    from repro.data.batching import collate
    from repro.nn.tensor import no_grad

    context = ExperimentContext.build(preset, scale=scale, seed=seed)
    clusters = getattr(context.dataset, "item_clusters", None)
    headers = ["quantity", "variant", "value"]
    rows = []
    raw: dict = {}
    for variant, overrides in (("with disent", {"lambda_disent": 0.5}),
                               ("w/o disent", {"lambda_disent": 0.0})):
        config = MISSLConfig(dim=dim).ablate(**overrides)
        model = build_model("MISSL", context, dim=dim, seed=seed, missl_config=config)
        train_and_evaluate(model, context, epochs=epochs, seed=seed)
        model.eval()
        with no_grad():
            batch = collate(context.split.test[:128], context.dataset.schema)
            users = model.user_representation(batch)
            prototypes = model.interest_extractor.prototypes.numpy()
        proto_cos = _mean_offdiag_cosine(prototypes[None])
        user_cos = _mean_offdiag_cosine(users.numpy())
        rows.append(["prototype off-diag |cos|", variant, proto_cos])
        rows.append(["user-interest off-diag |cos|", variant, user_cos])
        raw[("proto_cosine", variant)] = proto_cos
        raw[("user_cosine", variant)] = user_cos
        if variant == "with disent" and clusters is not None:
            with no_grad():
                enhanced = model.item_representations().numpy()
            raw["separation_enhanced"] = _cluster_separation(enhanced, clusters)
            raw["separation_raw"] = _cluster_separation(
                model.item_embedding.weight.numpy(), clusters)
            rows.append(["cluster separation", "enhanced table", raw["separation_enhanced"]])
            rows.append(["cluster separation", "raw table", raw["separation_raw"]])
    return ExperimentResult(
        experiment_id="F6", title="Interest-space analysis (t-SNE proxy)",
        headers=headers, rows=rows,
        notes="Expected: disentanglement lowers the prototype cosine; the "
              "hypergraph-enhanced table separates planted clusters better "
              "than the raw table.",
        raw=raw,
    )


# ----------------------------------------------------------------------
# F7 — convergence analysis
# ----------------------------------------------------------------------

def run_f7_convergence(preset: str = "taobao", scale: float = 0.5, dim: int = 32,
                       epochs: int = 12, seed: int = 1,
                       models: tuple[str, ...] = ("SASRec", "MBSASRec", "MISSL")
                       ) -> ExperimentResult:
    """Validation NDCG@10 per training epoch for several models.

    The figure's series data: each row is one (model, epoch) point.  Early
    stopping is disabled (patience = epochs) so every curve has the same
    length.
    """
    from repro.train import TrainConfig, Trainer

    context = ExperimentContext.build(preset, scale=scale, seed=seed)
    headers = ["model", "epoch", "train_loss", "valid NDCG@10"]
    rows = []
    raw: dict = {}
    for name in models:
        model = build_model(name, context, dim=dim, seed=seed)
        trainer = Trainer(model, context.split,
                          TrainConfig(epochs=epochs, patience=epochs, seed=seed))
        history = trainer.fit()
        curve = history.metric_curve("NDCG@10")
        for record in history.records:
            rows.append([name, record.epoch, record.train_loss,
                         record.valid_metrics.get("NDCG@10", float("nan"))])
        raw[name] = {"curve": curve, "losses": history.train_losses(),
                     "best": history.best_metric}
    return ExperimentResult(
        experiment_id="F7", title="Convergence analysis (valid NDCG@10 per epoch)",
        headers=headers, rows=rows,
        notes="Expected: losses decrease; MISSL's curve ends above the "
              "baselines' curves.",
        raw=raw,
    )
