"""Grid-search driver for MISSL hyper-parameters.

A small, explicit alternative to heavyweight tuning frameworks: enumerate a
config grid, train each candidate on the training split, select by
validation NDCG@10 (never by test metrics), and report the winner evaluated
once on test.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.core import MISSLConfig
from repro.eval.evaluator import evaluate_ranking
from repro.train import TrainConfig, Trainer

from .context import ExperimentContext
from .zoo import build_model

__all__ = ["GridSearchResult", "grid_search"]


@dataclass
class GridSearchResult:
    """Everything a tuning run produced."""

    best_config: MISSLConfig
    best_valid_metric: float
    test_report: dict
    trials: list[dict] = field(default_factory=list)

    def summary(self) -> str:
        lines = [f"{len(self.trials)} trials; "
                 f"best valid NDCG@10 = {self.best_valid_metric:.4f}"]
        for trial in sorted(self.trials, key=lambda t: -t["valid_metric"])[:5]:
            lines.append(f"  {trial['overrides']} -> {trial['valid_metric']:.4f} "
                         f"({trial['seconds']:.0f}s)")
        return "\n".join(lines)


def grid_search(context: ExperimentContext, grid: dict[str, list],
                base: MISSLConfig | None = None, epochs: int = 12,
                seed: int = 0, monitor: str = "NDCG@10") -> GridSearchResult:
    """Exhaustively search ``grid`` (field name → candidate values).

    Example::

        grid_search(context, {"num_interests": [2, 4], "lambda_ssl": [0.0, 0.1]})
    """
    if not grid:
        raise ValueError("empty search grid")
    base = base or MISSLConfig()
    names = list(grid)
    trials: list[dict] = []
    best = None
    for values in itertools.product(*(grid[name] for name in names)):
        overrides = dict(zip(names, values))
        config = base.ablate(**overrides)
        model = build_model("MISSL", context, dim=config.dim, seed=seed,
                            missl_config=config)
        start = time.perf_counter()
        trainer = Trainer(model, context.split,
                          TrainConfig(epochs=epochs, patience=3, seed=seed,
                                      monitor=monitor))
        history = trainer.fit()
        seconds = time.perf_counter() - start
        trial = {"overrides": overrides, "config": config,
                 "valid_metric": history.best_metric, "seconds": seconds,
                 "model": model}
        trials.append(trial)
        if best is None or trial["valid_metric"] > best["valid_metric"]:
            best = trial

    test_report = evaluate_ranking(best["model"], context.split.test,
                                   context.test_candidates, context.dataset.schema)
    for trial in trials:
        trial.pop("model")  # don't hold every model alive in the result
    return GridSearchResult(
        best_config=best["config"],
        best_valid_metric=best["valid_metric"],
        test_report=dict(test_report),
        trials=trials,
    )
