"""``repro.experiments`` — the framework regenerating every table and figure."""

from .context import ExperimentContext
from .registry import EXPERIMENTS, Experiment, run_experiment
from .results import ExperimentResult
from .ablations import (run_a1_interest_mode, run_a2_hypergraph_construction,
                        run_a3_nonsequential_references)
from .multiseed import aggregate_results, run_multi_seed
from .report import generate_experiments_md
from .search import GridSearchResult, grid_search
from .runners import (run_f1_num_interests, run_f2_ssl_grid, run_f3_depth_dim,
                      run_f4_cold_start, run_f5_behavior_subsets, run_f6_interest_space,
                      run_t1_dataset_stats, run_t2_overall, run_t3_ablation,
                      run_t4_efficiency, train_and_evaluate)
from .zoo import MODEL_FAMILIES, NONPARAMETRIC, build_model, model_names

__all__ = [
    "ExperimentContext", "ExperimentResult", "Experiment", "EXPERIMENTS", "run_experiment",
    "build_model", "model_names", "MODEL_FAMILIES", "NONPARAMETRIC",
    "train_and_evaluate",
    "run_t1_dataset_stats", "run_t2_overall", "run_t3_ablation", "run_t4_efficiency",
    "run_f1_num_interests", "run_f2_ssl_grid", "run_f3_depth_dim", "run_f4_cold_start",
    "run_f5_behavior_subsets", "run_f6_interest_space",
    "grid_search", "GridSearchResult",
    "run_multi_seed", "aggregate_results", "generate_experiments_md",
    "run_a1_interest_mode", "run_a2_hypergraph_construction",
    "run_a3_nonsequential_references",
]
