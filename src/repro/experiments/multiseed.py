"""Multi-seed aggregation for experiment stability.

The tables in this reconstruction come from single seeded runs (CPU budget);
this helper reruns any registered experiment across seeds and aggregates
every numeric column into mean ± std — the form papers report.
"""

from __future__ import annotations

import numpy as np

from .registry import run_experiment
from .results import ExperimentResult

__all__ = ["run_multi_seed", "aggregate_results"]


def _row_key(row: list, numeric_columns: list[int]) -> tuple:
    """Identity of a row across seeds: its non-numeric cells."""
    return tuple(cell for i, cell in enumerate(row) if i not in numeric_columns)


def _numeric_columns(headers: list[str], rows: list[list]) -> list[int]:
    """Columns whose every value parses as a float (and isn't the key)."""
    columns = []
    for index in range(len(headers)):
        try:
            for row in rows:
                float(row[index])
        except (TypeError, ValueError):
            continue
        columns.append(index)
    return columns


def aggregate_results(results: list[ExperimentResult]) -> ExperimentResult:
    """Merge same-shaped results into one with ``mean±std`` numeric cells."""
    if not results:
        raise ValueError("nothing to aggregate")
    first = results[0]
    for other in results[1:]:
        if other.headers != first.headers or len(other.rows) != len(first.rows):
            raise ValueError("results have different shapes; cannot aggregate")
    numeric = _numeric_columns(first.headers, first.rows)
    rows = []
    for row_index, base_row in enumerate(first.rows):
        merged = list(base_row)
        for column in numeric:
            values = np.array([float(r.rows[row_index][column]) for r in results])
            merged[column] = f"{values.mean():.4f}±{values.std():.4f}"
        rows.append(merged)
    return ExperimentResult(
        experiment_id=first.experiment_id,
        title=f"{first.title} (mean±std over {len(results)} seeds)",
        headers=first.headers,
        rows=rows,
        notes=first.notes,
        raw={"seeds": [r.raw for r in results]},
    )


def run_multi_seed(experiment_id: str, seeds: tuple[int, ...] = (1, 2, 3),
                   **kwargs) -> ExperimentResult:
    """Run one experiment per seed and aggregate.

    ``kwargs`` are forwarded to the runner (scale, epochs, ...); the runner
    must accept a ``seed`` argument (all registered runners do except T1's
    statistics, which is still seedable).
    """
    results = [run_experiment(experiment_id, seed=seed, **kwargs) for seed in seeds]
    return aggregate_results(results)
