"""EXPERIMENTS.md generation from committed benchmark results.

Reads the ``benchmarks/results/*.csv`` files written by the benchmark suite
and renders the paper-vs-measured record: for every experiment, the
qualitative claim the paper's narrative makes, the regenerated table, and
whether the claim held in the committed run.
"""

from __future__ import annotations

import csv
from pathlib import Path

__all__ = ["generate_experiments_md", "load_result_csv"]

# Per-experiment qualitative claims (the "shape" being reproduced).
CLAIMS: dict[str, list[str]] = {
    "T1": ["Behavior funnel: the dense root behavior (view) dominates every corpus",
           "Sparse regime: unique user-item density below 15%"],
    "T2": ["MISSL is the best method on every dataset (headline claim)",
           "Multi-behavior methods beat single-behavior methods",
           "Multi-interest (ComiRec) ≥ single-interest (SASRec) among "
           "single-behavior models"],
    "T3": ["Every ablated variant underperforms the full model (within noise)",
           "Removing auxiliary behaviors hurts the most"],
    "F1": ["K > 1 interests beat a single pooled vector",
           "The optimum K is intermediate, near the planted interests-per-user"],
    "F2": ["A non-zero SSL weight matches or beats λ = 0",
           "Performance varies across the (λ, τ) grid — the knobs matter"],
    "F3": ["Hypergraph propagation depth ≥ 1 beats depth 0",
           "Gains saturate with depth (no monotone improvement)"],
    "F4": ["MISSL beats SASRec on the coldest user group",
           "Averaged over groups, MISSL beats SASRec"],
    "F5": ["Adding auxiliary behaviors improves over target-only training"],
    "T4": ["MISSL costs more than SASRec but stays within one order of magnitude"],
    "F6": ["The disentanglement penalty separates the interest prototypes",
           "The hypergraph-enhanced item table separates planted clusters "
           "better than the raw table"],
    "F7": ["Training losses decrease for every model",
           "MISSL's validation curve ends above the baselines'"],
    "A1": ["Both interest extractors (attention, routing) are competitive"],
    "A2": ["Windowed sequence edges + cross-behavior user edges is a sound "
           "default hypergraph construction"],
    "A3": ["MISSL beats the classic non-sequential references (POP, ItemKNN, "
           "BPR-MF); LightGCN is reported un-asserted — stationary synthetic "
           "interests favor pure CF (simulator limitation, documented)"],
}

PREAMBLE = """\
# EXPERIMENTS — paper-vs-measured record

This file records the committed benchmark run of every reconstructed table
and figure (see DESIGN.md §4 for the experiment index and the ⚠ note on the
paper-text mismatch).  Because the substrate is a calibrated synthetic
simulator rather than the authors' datasets, the reproduction target is the
**shape** of each result — who wins, roughly by how much, where curves peak —
not absolute numbers.  Every claim below is also *asserted* by the
corresponding benchmark, so `pytest benchmarks/ --benchmark-only` re-checks
this whole file.

Regenerate any experiment with `python -m repro experiment <ID>` or
`pytest benchmarks/bench_<id>_*.py --benchmark-only`.
"""

DISCUSSION = """\
## Reading notes (committed run)

Honest observations a reader should have alongside the tables:

* **T2.** The headline ordering holds on all three corpora by NDCG@10:
  MISSL > MB-HT-lite / MB-SASRec > every single-behavior model.  The
  multi-behavior jump (e.g. SASRec 0.104 → MB-SASRec 0.236 NDCG@10 on
  taobao-like) dwarfs every other effect — exactly the paper family's
  central argument.
* **T3.** "w/o auxiliary" collapses (−54% NDCG) and "w/o hypergraph" drops
  clearly (−15%).  The three regularizers (SSL contrast, augmentation,
  disentanglement) sit within noise of the full model at this corpus scale;
  F2 shows the SSL contrast *does* help at its best temperature (λ=0.1,
  τ=0.1 is the best grid cell).  Single-seed small-corpus runs simply cannot
  resolve ±0.02 effects — the paper's larger datasets can.
* **F5.** The view stream carries most of the auxiliary signal
  (buy-only 0.092 → +view 0.289 NDCG@10); cart/fav add little at this scale.
* **F6.** The disentanglement penalty separates prototypes (|cos| 0.15 →
  0.04) *and* fused user interests (0.98 → 0.66); the hypergraph-enhanced
  table separates the generator's planted clusters far better than the raw
  table (0.81 vs 0.56) — the quantitative counterpart of the paper's t-SNE
  panels.
* **A2.** Dropping the cross-behavior user edges is slightly *better* than
  the default here (0.302 vs 0.281).  Plausible cause: the fused-timeline
  encoder already carries cross-behavior signal within a user, making the
  cross edges partially redundant while inflating hyperedge sizes.  Kept as
  default for faithfulness to the reconstruction; flagged as a knob worth
  re-examining on real data.
* **A3.** LightGCN (non-sequential graph CF) beats every sequential model on
  this substrate (0.40 NDCG@10).  This is a *simulator* property: planted
  user interests are largely stationary, which is precisely the regime pure
  CF excels in.  Real logs drift; published results on Taobao/Tmall show
  sequential multi-behavior models ahead.  Reported un-asserted, per the
  faithful-reporting policy.
"""


def load_result_csv(path: Path) -> tuple[list[str], list[list[str]]]:
    """(headers, rows) of one result CSV."""
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise ValueError(f"{path} is empty")
    return rows[0], rows[1:]


def _markdown_table(headers: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return "\n".join(lines)


def generate_experiments_md(results_dir: str | Path, output: str | Path,
                            titles: dict[str, str] | None = None) -> Path:
    """Render EXPERIMENTS.md from the CSVs in ``results_dir``."""
    from .registry import EXPERIMENTS

    results_dir = Path(results_dir)
    output = Path(output)
    sections = [PREAMBLE]
    for experiment_id, experiment in EXPERIMENTS.items():
        csv_path = results_dir / f"{experiment_id}.csv"
        sections.append(f"\n## {experiment_id} — {experiment.title}\n")
        sections.append(f"*Kind:* {experiment.kind} · *Regenerated by:* "
                        f"`{experiment.bench_target}`\n")
        claims = CLAIMS.get(experiment_id, [])
        if claims:
            sections.append("**Claims reproduced (asserted by the benchmark):**\n")
            sections.extend(f"- {claim}" for claim in claims)
            sections.append("")
        if csv_path.exists():
            headers, rows = load_result_csv(csv_path)
            sections.append("**Measured (committed run):**\n")
            sections.append(_markdown_table(headers, rows))
            sections.append("")
        else:
            sections.append("*(no committed result — run the benchmark to "
                            "populate this section)*\n")
    sections.append("\n" + DISCUSSION)
    output.write_text("\n".join(sections) + "\n")
    return output
