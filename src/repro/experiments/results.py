"""Experiment result container and renderers."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.utils.tables import format_table, write_csv, write_markdown

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    ``rows`` is the tabular payload (figures are reported as the table of
    series points the plot would show); ``raw`` keeps anything non-tabular a
    test might want to assert on.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    raw: dict = field(default_factory=dict)

    def render(self) -> str:
        text = f"== {self.experiment_id}: {self.title} ==\n"
        text += format_table(self.headers, self.rows)
        if self.notes:
            text += f"\nNOTE: {self.notes}"
        return text

    def save(self, directory: str | Path) -> Path:
        """Write CSV + markdown into ``directory``; returns the markdown path."""
        directory = Path(directory)
        write_csv(directory / f"{self.experiment_id}.csv", self.headers, self.rows)
        return write_markdown(directory / f"{self.experiment_id}.md", self.headers,
                              self.rows, title=f"{self.experiment_id}: {self.title}")

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]
