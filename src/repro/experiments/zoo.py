"""Model zoo: named constructors for every method in the comparison tables."""

from __future__ import annotations

from repro.baselines import (BERT4Rec, BPRMF, CL4SRec, ComiRec, GRU4Rec, ItemKNN, LightGCN,
                             MBGRU, MBHTLite, MBSASRec, Popularity, SASRec)
from repro.core import MISSL, MISSLConfig

from .context import ExperimentContext

__all__ = ["MODEL_FAMILIES", "build_model", "model_names", "NONPARAMETRIC"]

# Model name → comparison-family label (the T2 table's grouping).
MODEL_FAMILIES: dict[str, str] = {
    "POP": "traditional",
    "ItemKNN": "traditional",
    "BPRMF": "traditional",
    "LightGCN": "traditional",
    "GRU4Rec": "traditional",
    "SASRec": "traditional",
    "BERT4Rec": "traditional",
    "ComiRec": "multi-interest/SSL",
    "CL4SRec": "multi-interest/SSL",
    "MBGRU": "multi-behavior",
    "MBSASRec": "multi-behavior",
    "MBHTLite": "multi-behavior",
    "MISSL": "ours",
}

NONPARAMETRIC = ("POP", "ItemKNN")


def model_names() -> list[str]:
    """All zoo model names in table order."""
    return list(MODEL_FAMILIES)


def build_model(name: str, context: ExperimentContext, dim: int = 32, seed: int = 0,
                missl_config: MISSLConfig | None = None):
    """Construct (and for non-parametric models, fit) a zoo model.

    Non-parametric models are fit on the leakage-free training view.
    """
    dataset = context.dataset
    num_items = dataset.num_items
    schema = dataset.schema
    if name == "POP":
        return Popularity(num_items).fit(context.train_view)
    if name == "ItemKNN":
        return ItemKNN(num_items).fit(context.train_view)
    if name == "BPRMF":
        return BPRMF(num_items, dataset.num_users, schema, dim=dim, seed=seed)
    if name == "LightGCN":
        return LightGCN(num_items, dataset.num_users, context.train_view,
                        dim=dim, seed=seed)
    if name == "GRU4Rec":
        return GRU4Rec(num_items, schema, dim=dim, seed=seed)
    if name == "SASRec":
        return SASRec(num_items, schema, dim=dim, seed=seed)
    if name == "BERT4Rec":
        return BERT4Rec(num_items, schema, dim=dim, seed=seed)
    if name == "ComiRec":
        return ComiRec(num_items, schema, dim=dim, seed=seed)
    if name == "CL4SRec":
        return CL4SRec(num_items, schema, dim=dim, seed=seed)
    if name == "MBGRU":
        return MBGRU(num_items, schema, dim=dim, seed=seed)
    if name == "MBSASRec":
        return MBSASRec(num_items, schema, dim=dim, seed=seed)
    if name == "MBHTLite":
        return MBHTLite(num_items, schema, context.graph, dim=dim, seed=seed)
    if name == "MISSL":
        config = missl_config or MISSLConfig(dim=dim)
        graph = context.graph if config.use_hypergraph else None
        return MISSL(num_items, schema, graph, config, seed=seed)
    raise KeyError(f"unknown model {name!r}; have {model_names()}")
