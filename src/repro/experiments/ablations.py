"""Extra ablation experiments for this implementation's own design choices.

Beyond the paper's component ablation (T3), DESIGN.md §6 names design
decisions internal to this reconstruction; these runners measure them:

* **A1** — interest-extraction mechanism: prototype attention (default)
  vs MIND-style capsule dynamic routing.
* **A2** — hypergraph construction: sequence-window size, and whether the
  cross-behavior user edges exist at all.
"""

from __future__ import annotations

from repro.core import MISSLConfig
from repro.hypergraph import BuilderConfig

from .context import ExperimentContext
from .results import ExperimentResult
from .runners import train_and_evaluate
from .zoo import build_model

__all__ = ["run_a1_interest_mode", "run_a2_hypergraph_construction",
           "run_a3_nonsequential_references"]


def run_a1_interest_mode(preset: str = "taobao", scale: float = 0.5, dim: int = 32,
                         epochs: int = 15, seed: int = 1) -> ExperimentResult:
    """Prototype attention vs dynamic routing, at matched K."""
    context = ExperimentContext.build(preset, scale=scale, seed=seed)
    headers = ["extractor", "K", "HR@10", "NDCG@10", "secs"]
    rows = []
    raw: dict = {}
    for mode in ("attention", "routing"):
        config = MISSLConfig(dim=dim, interest_mode=mode)
        model = build_model("MISSL", context, dim=dim, seed=seed, missl_config=config)
        report, seconds = train_and_evaluate(model, context, epochs=epochs, seed=seed)
        rows.append([mode, config.num_interests, report["HR@10"], report["NDCG@10"],
                     round(seconds, 1)])
        raw[mode] = report
    return ExperimentResult(
        experiment_id="A1", title="Interest-extractor ablation (attention vs routing)",
        headers=headers, rows=rows,
        notes="Both mechanisms must be competitive; attention is the default "
              "for its stability on short behavior sequences.",
        raw=raw,
    )


def run_a2_hypergraph_construction(preset: str = "taobao", scale: float = 0.5,
                                   dim: int = 32, epochs: int = 15, seed: int = 1,
                                   windows: tuple = (5, 10, None)) -> ExperimentResult:
    """Hypergraph construction knobs: window size and cross-behavior edges."""
    headers = ["variant", "edges", "HR@10", "NDCG@10"]
    rows = []
    raw: dict = {}
    variants: list[tuple[str, BuilderConfig]] = []
    for window in windows:
        label = f"window={window if window is not None else 'whole-seq'}"
        variants.append((label, BuilderConfig(window=window)))
    variants.append(("no cross-behavior edges",
                     BuilderConfig(window=10, include_cross_behavior=False)))
    for label, builder in variants:
        context = ExperimentContext.build(preset, scale=scale, seed=seed,
                                          builder=builder)
        config = MISSLConfig(dim=dim)
        model = build_model("MISSL", context, dim=dim, seed=seed, missl_config=config)
        report, _ = train_and_evaluate(model, context, epochs=epochs, seed=seed)
        rows.append([label, context.graph.num_edges, report["HR@10"],
                     report["NDCG@10"]])
        raw[label] = report
    return ExperimentResult(
        experiment_id="A2", title="Hypergraph-construction ablation",
        headers=headers, rows=rows,
        notes="Windowed sequence edges plus cross-behavior user edges is the "
              "default construction.",
        raw=raw,
    )


def run_a3_nonsequential_references(preset: str = "taobao", scale: float = 0.5,
                                    dim: int = 32, epochs: int = 15, seed: int = 1
                                    ) -> ExperimentResult:
    """Non-sequential reference models vs MISSL (outside the paper's table).

    The paper compares only against sequential methods.  This experiment adds
    the classic non-sequential references (popularity, ItemKNN, BPR-MF,
    LightGCN) for completeness.  On this synthetic substrate LightGCN is a
    *strong* reference: planted user interests are largely stationary, which
    is the regime pure collaborative filtering excels in — an honest,
    documented limitation of the simulator rather than of MISSL (real
    behavior logs carry far more temporal drift, and published results show
    sequential MB methods ahead there).
    """
    context = ExperimentContext.build(preset, scale=scale, seed=seed)
    headers = ["model", "type", "HR@10", "NDCG@10"]
    rows = []
    raw: dict = {}
    kinds = {"POP": "non-sequential", "ItemKNN": "non-sequential",
             "BPRMF": "non-sequential", "LightGCN": "non-sequential",
             "MISSL": "sequential (ours)"}
    for name in ("POP", "ItemKNN", "BPRMF", "LightGCN", "MISSL"):
        model = build_model(name, context, dim=dim, seed=seed)
        report, _ = train_and_evaluate(model, context, epochs=epochs, seed=seed)
        rows.append([name, kinds[name], report["HR@10"], report["NDCG@10"]])
        raw[name] = report
    return ExperimentResult(
        experiment_id="A3", title="Non-sequential reference comparison",
        headers=headers, rows=rows,
        notes="LightGCN is reported but not asserted against: stationary "
              "synthetic interests favor pure CF (see docstring).",
        raw=raw,
    )
