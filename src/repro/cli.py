"""Command-line interface: ``python -m repro <command>``.

Commands:
    stats        generate a synthetic corpus and print its statistics
    train        train a model (MISSL or any zoo baseline) and report test metrics
    experiment   run one registered experiment (T1..T4, F1..F6)
    list         list registered experiments and zoo models
    profile      per-op profile of training steps (fast vs reference path)
    compare      significance-test two models on one dataset
    export       train MISSL and freeze it into a serving artifact (.npz)
    serve        answer JSON-lines requests over an exported artifact
    obs          render a telemetry event log (trace tree + metric summary)
    lint         run the repro.lint static-analysis rules (CI gate)

All commands are seeded and run on synthetic presets; see ``--help`` of each
subcommand for knobs.  ``train`` and ``serve`` accept ``--events-out FILE``
to capture a JSON-lines telemetry log for ``python -m repro obs``.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys

__all__ = ["main", "build_parser"]


def _telemetry(events_out: str | None):
    """A telemetry session writing to ``events_out``, or a no-op context."""
    if events_out is None:
        return contextlib.nullcontext()
    from repro.obs import telemetry_session
    return telemetry_session(events_out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="generate a corpus and print statistics")
    stats.add_argument("--preset", default="taobao", choices=["taobao", "tmall", "yelp"])
    stats.add_argument("--scale", type=float, default=0.5)
    stats.add_argument("--seed", type=int, default=1)

    train = sub.add_parser("train", help="train one model and report test metrics")
    train.add_argument("--model", default="MISSL")
    train.add_argument("--preset", default="taobao", choices=["taobao", "tmall", "yelp"])
    train.add_argument("--scale", type=float, default=0.4)
    train.add_argument("--dim", type=int, default=32)
    train.add_argument("--epochs", type=int, default=12)
    train.add_argument("--seed", type=int, default=1)
    train.add_argument("--num-workers", type=int, default=0,
                       help="input-pipeline worker processes (0 = in-process; "
                            "batches are identical for any setting)")
    train.add_argument("--prefetch", type=int, default=2,
                       help="batches kept in flight per pipeline worker")
    train.add_argument("--data-parallel", action="store_true",
                       help="shard-decomposed data-parallel training "
                            "(allreduce over --grad-shards gradient shards; "
                            "deterministic at any --num-workers)")
    train.add_argument("--grad-shards", type=int, default=4,
                       help="gradient shards per step under --data-parallel "
                            "(fixed shard count keeps results worker-"
                            "count-independent)")
    train.add_argument("--checkpoint", default=None,
                       help="save the trained model's parameters to this .npz path")
    train.add_argument("--events-out", default=None, metavar="FILE",
                       help="write a JSON-lines telemetry event log "
                            "(render it with `python -m repro obs FILE`)")

    experiment = sub.add_parser("experiment", help="run a registered experiment")
    experiment.add_argument("id", help="experiment id, e.g. T2 or F1")
    experiment.add_argument("--scale", type=float, default=0.5)
    experiment.add_argument("--epochs", type=int, default=15)
    experiment.add_argument("--out", default=None, help="directory for CSV/markdown")

    sub.add_parser("list", help="list experiments and models")

    profile = sub.add_parser("profile", help="per-op profile of training steps")
    profile.add_argument("--model", default="MISSL")
    profile.add_argument("--preset", default="taobao", choices=["taobao", "tmall", "yelp"])
    profile.add_argument("--scale", type=float, default=0.4)
    profile.add_argument("--dim", type=int, default=32)
    profile.add_argument("--steps", type=int, default=5)
    profile.add_argument("--batch-size", type=int, default=128)
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument("--limit", type=int, default=25,
                         help="show at most this many ops in the table")
    profile.add_argument("--reference", action="store_true",
                         help="profile the retained seed kernels instead of "
                              "the fast paths")

    export = sub.add_parser("export", help="train MISSL and freeze a serving artifact")
    export.add_argument("out", help="path for the artifact (.npz file, or "
                                    "directory with --artifact-format dir)")
    export.add_argument("--preset", default="taobao", choices=["taobao", "tmall", "yelp"])
    export.add_argument("--scale", type=float, default=0.4)
    export.add_argument("--dim", type=int, default=32)
    export.add_argument("--epochs", type=int, default=12)
    export.add_argument("--seed", type=int, default=1)
    export.add_argument("--artifact-format", default="npz",
                        choices=["npz", "dir"],
                        help="npz: single compressed file; dir: directory "
                             "bundle of mmap-able .npy files (replicas share "
                             "page-cache pages and can ship prebuilt indexes)")
    export.add_argument("--prebuild", action="append", default=None,
                        metavar="INDEX",
                        choices=["ivf", "hnsw", "pq", "ivf_pq", "exact_sq"],
                        help="build this index at export time and serialize "
                             "it into the bundle (repeatable; requires "
                             "--artifact-format dir)")
    export.add_argument("--pq-m", type=int, default=8,
                        help="PQ subspace count for prebuilt pq/ivf_pq codes")

    serve = sub.add_parser("serve", help="serve an exported artifact "
                                         "(JSON-lines on stdin/stdout)")
    serve.add_argument("artifact", help="path to an exported artifact "
                                        "(.npz file or directory bundle)")
    serve.add_argument("--preset", default=None, choices=["taobao", "tmall", "yelp"],
                       help="corpus preset for user histories (defaults to the "
                            "provenance recorded in the artifact)")
    serve.add_argument("--scale", type=float, default=None)
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--backend", default="exact",
                       choices=["exact", "ivf", "hnsw", "pq", "ivf_pq",
                                "exact_sq"])
    serve.add_argument("--index", default=None,
                       choices=["exact", "ivf", "hnsw", "pq", "ivf_pq",
                                "exact_sq"],
                       help="retrieval index (overrides --backend; the "
                            "network-mode spelling)")
    serve.add_argument("--pq-m", type=int, default=None,
                       help="PQ subspace count (pq/ivf_pq; forces a fresh "
                            "build even when the artifact ships a prebuilt "
                            "index)")
    serve.add_argument("--refine", type=int, default=0,
                       help="with a quantized index, exactly re-score the "
                            "top-N scan candidates in float64 (0 = serve "
                            "raw quantized scores)")
    serve.add_argument("--k", type=int, default=10, help="default top-k per request")
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument("--max-wait-ms", type=float, default=5.0)
    serve.add_argument("--probe-every", type=int, default=0,
                       help="with an approximate index, shadow-score every "
                            "N-th request on an exact index and record recall")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="serve newline-delimited JSON over TCP instead "
                            "of stdin/stdout (port 0 picks a free port; the "
                            "ready banner reports the bound address)")
    serve.add_argument("--replicas", type=int, default=0,
                       help="with --listen, fork this many single-worker "
                            "replica processes (0 = serve in-process)")
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="with --listen, bound on concurrently executing "
                            "requests before load shedding")
    serve.add_argument("--events-out", default=None, metavar="FILE",
                       help="write a JSON-lines telemetry event log "
                            "(render it with `python -m repro obs FILE`)")
    serve.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="dump the final serving-metrics snapshot as "
                            "JSON on shutdown")

    obs = sub.add_parser("obs", help="render a telemetry event log "
                                     "(trace tree + metric summary)")
    obs.add_argument("events", help="path to a JSON-lines event log "
                                    "(from --events-out)")
    obs.add_argument("--collapse-after", type=int, default=5,
                     help="collapse sibling-span runs longer than this "
                          "into one aggregate line")

    lint = sub.add_parser("lint", help="run the static-analysis rule catalog "
                                       "(exits non-zero on new findings)")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint (default: the installed "
                           "repro package)")
    lint.add_argument("--format", default="text", choices=["text", "json"])
    lint.add_argument("--select", default=None, metavar="RULES",
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="baseline file (default: lint-baseline.json found "
                           "upward from the first path)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file (every finding fails)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="accept all current findings into the baseline "
                           "(preserves documented reasons)")
    lint.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="parse and run per-file rules across N worker "
                           "processes (project-wide rules stay in the "
                           "parent); output is identical to --jobs 1")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument("--verbose", action="store_true",
                      help="show offending source lines and baselined findings")

    compare = sub.add_parser("compare", help="paired-bootstrap two models")
    compare.add_argument("model_a")
    compare.add_argument("model_b")
    compare.add_argument("--preset", default="taobao", choices=["taobao", "tmall", "yelp"])
    compare.add_argument("--scale", type=float, default=0.4)
    compare.add_argument("--epochs", type=int, default=12)
    compare.add_argument("--seed", type=int, default=1)
    return parser


def _cmd_stats(args) -> int:
    from repro.data import DATASET_PRESETS, generate, k_core_filter
    from repro.utils import format_table
    dataset = k_core_filter(generate(DATASET_PRESETS[args.preset](args.scale),
                                     seed=args.seed))
    stats = dataset.stats()
    rows = [[behavior, count, f"{stats.avg_length_per_behavior[behavior]:.2f}"]
            for behavior, count in stats.interactions_per_behavior.items()]
    print(f"{stats.name}: {stats.num_users} users, {stats.num_items} items, "
          f"{stats.num_interactions} interactions, density {stats.density:.4f}")
    print(format_table(["behavior", "events", "avg/user"], rows))
    return 0


def _cmd_train(args) -> int:
    from repro.experiments import ExperimentContext, build_model, model_names, \
        train_and_evaluate
    from repro.obs import get_logger
    if args.model not in model_names():
        print(f"unknown model {args.model!r}; choose from {model_names()}",
              file=sys.stderr)
        return 2
    logger = get_logger("repro.cli")
    with _telemetry(args.events_out) as telemetry:
        callbacks: tuple = ()
        if telemetry is not None:
            from repro.obs import GradientMonitor, LossComponentTracker, NaNWatchdog
            callbacks = (NaNWatchdog(),
                         LossComponentTracker(registry=telemetry.registry),
                         GradientMonitor(registry=telemetry.registry))
        context = ExperimentContext.build(args.preset, scale=args.scale,
                                          seed=args.seed)
        model = build_model(args.model, context, dim=args.dim, seed=args.seed)
        report, seconds = train_and_evaluate(model, context, epochs=args.epochs,
                                             seed=args.seed, callbacks=callbacks,
                                             num_workers=args.num_workers,
                                             prefetch=args.prefetch,
                                             data_parallel=args.data_parallel,
                                             grad_shards=args.grad_shards)
        print(f"{args.model} on {args.preset} (scale {args.scale}): {report} "
              f"[{seconds:.1f}s]")
        if args.checkpoint and model.parameters():
            from pathlib import Path

            from repro.nn.serialization import save_checkpoint
            from repro.obs import write_run_manifest
            path = save_checkpoint(model, args.checkpoint,
                                   extra={"model": args.model, "preset": args.preset,
                                          "dim": args.dim, "scale": args.scale,
                                          "seed": args.seed})
            logger.info("checkpoint written to %s", path)
            checkpoint = Path(path)
            write_run_manifest(
                checkpoint.with_name(checkpoint.name + ".manifest.json"),
                config={"model": args.model, "preset": args.preset,
                        "dim": args.dim, "scale": args.scale,
                        "epochs": args.epochs, "num_workers": args.num_workers,
                        "prefetch": args.prefetch,
                        "data_parallel": args.data_parallel,
                        "grad_shards": args.grad_shards},
                seed=args.seed,
                metrics=dict(report),
                extra={"seconds": seconds})
    if args.events_out:
        logger.info("telemetry written to %s (render with "
                    "`python -m repro obs %s`)", args.events_out, args.events_out)
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import run_experiment
    kwargs = {"scale": args.scale}
    if args.id not in ("T1", "T4"):
        kwargs["epochs"] = args.epochs
    result = run_experiment(args.id.upper(), **kwargs)
    print(result.render())
    if args.out:
        path = result.save(args.out)
        print(f"saved to {path}")
    return 0


def _cmd_list(_args) -> int:
    from repro.experiments import EXPERIMENTS, MODEL_FAMILIES
    print("experiments:")
    for experiment in EXPERIMENTS.values():
        print(f"  {experiment.experiment_id:3s} [{experiment.kind:6s}] "
              f"{experiment.title}  ({experiment.bench_target})")
    print("models:")
    for name, family in MODEL_FAMILIES.items():
        print(f"  {name:10s} {family}")
    return 0


def _cmd_profile(args) -> int:
    import contextlib
    import time

    import numpy as np

    from repro.data.batching import BatchLoader
    from repro.data.sampling import NegativeSampler
    from repro.experiments import ExperimentContext, build_model, model_names
    from repro.nn.optim import Adam, clip_grad_norm
    from repro.perf import profiled, reference_mode

    if args.model not in model_names():
        print(f"unknown model {args.model!r}; choose from {model_names()}",
              file=sys.stderr)
        return 2
    if args.steps < 1:
        print("--steps must be at least 1", file=sys.stderr)
        return 2
    mode = reference_mode() if args.reference else contextlib.nullcontext()
    with mode:
        context = ExperimentContext.build(args.preset, scale=args.scale, seed=args.seed)
        model = build_model(args.model, context, dim=args.dim, seed=args.seed)
        if not model.parameters():
            print(f"{args.model} has no trainable parameters; nothing to profile",
                  file=sys.stderr)
            return 2
        loader = BatchLoader(context.split.train, context.dataset.schema,
                             args.batch_size, rng=np.random.default_rng(args.seed))
        sampler = NegativeSampler(context.dataset,
                                  np.random.default_rng(args.seed + 1))
        optimizer = Adam(model.parameters(), lr=1e-3)
        batches = list(loader)

        def step(batch) -> None:
            optimizer.zero_grad()
            loss = model.training_loss(batch, sampler)
            loss.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()

        step(batches[0])  # warm up caches (hypergraph plans, transposes)
        started = time.perf_counter()
        with profiled() as profiler:
            for index in range(args.steps):
                step(batches[index % len(batches)])
        elapsed = time.perf_counter() - started
        label = "reference" if args.reference else "fast"
        print(f"{args.model} on {args.preset} (scale {args.scale}, dim {args.dim}, "
              f"{label} path): {args.steps} steps in {elapsed:.3f}s "
              f"({elapsed / args.steps:.3f}s/step)")
        print(profiler.report(limit=args.limit))
    return 0


def _cmd_export(args) -> int:
    from repro.experiments import ExperimentContext, build_model, train_and_evaluate
    from repro.obs import get_logger
    from repro.serve import export_artifact
    context = ExperimentContext.build(args.preset, scale=args.scale, seed=args.seed)
    model = build_model("MISSL", context, dim=args.dim, seed=args.seed)
    report, seconds = train_and_evaluate(model, context, epochs=args.epochs,
                                         seed=args.seed)
    get_logger("repro.cli").info("MISSL on %s (scale %s): %s [%.1fs]",
                                 args.preset, args.scale, report, seconds)
    prebuilt = tuple(dict.fromkeys(args.prebuild or ()))
    if prebuilt and args.artifact_format != "dir":
        print("--prebuild requires --artifact-format dir", file=sys.stderr)
        return 2
    path = export_artifact(model, args.out,
                           extra={"preset": args.preset, "scale": args.scale,
                                  "seed": args.seed},
                           artifact_format=args.artifact_format,
                           prebuilt=prebuilt,
                           index_options={"pq": {"m": args.pq_m},
                                          "ivf_pq": {"m": args.pq_m}})
    print(f"serving artifact written to {path}")
    return 0


def _serve_request(service, request: dict, default_k: int) -> dict:
    """Dispatch one decoded JSON-lines request against the service."""
    op = request.get("op", "recommend")
    if op == "recommend":
        recs = service.recommend(int(request["user"]),
                                 k=int(request.get("k", default_k)))
        return {"ok": True, "user": int(request["user"]),
                "items": [r.item for r in recs],
                "scores": [r.score for r in recs]}
    if op == "append":
        version = service.append_event(
            int(request["user"]), int(request["item"]), request["behavior"],
            timestamp=request.get("timestamp"))
        return {"ok": True, "user": int(request["user"]), "version": version}
    if op == "stats":
        return {"ok": True, "stats": service.stats()}
    if op == "report":
        return {"ok": True, "report": service.report()}
    raise ValueError(f"unknown op {op!r} (expected recommend/append/stats/report)")


def _cmd_serve(args) -> int:
    import json

    from repro.data import DATASET_PRESETS, generate, k_core_filter
    from repro.serve import HistoryStore, RecommenderService, load_artifact

    artifact = load_artifact(args.artifact)
    preset = args.preset or artifact.extra.get("preset")
    scale = args.scale if args.scale is not None else artifact.extra.get("scale")
    seed = args.seed if args.seed is not None else artifact.extra.get("seed", 1)
    if preset is None or scale is None:
        print("artifact records no corpus provenance; pass --preset/--scale",
              file=sys.stderr)
        return 2
    dataset = k_core_filter(generate(DATASET_PRESETS[preset](scale), seed=seed))
    if dataset.num_items != artifact.num_items:
        print(f"corpus mismatch: rebuilt {dataset.num_items} items but the "
              f"artifact was exported with {artifact.num_items}", file=sys.stderr)
        return 2
    history = HistoryStore.from_dataset(dataset)
    index_backend = args.index or args.backend
    probe = args.probe_every if index_backend != "exact" else 0
    index_options = {}
    if args.pq_m is not None and index_backend in ("pq", "ivf_pq"):
        index_options["m"] = args.pq_m
    if args.refine and index_backend in ("pq", "ivf_pq", "exact_sq"):
        index_options["refine"] = args.refine
    if args.listen is not None:
        return _serve_network(args, artifact, history, index_backend,
                              index_options, probe)
    with _telemetry(args.events_out) as telemetry:
        registry = telemetry.registry if telemetry is not None else None
        with RecommenderService(artifact, history, index_backend=index_backend,
                                index_options=index_options,
                                max_batch=args.max_batch,
                                max_wait_ms=args.max_wait_ms,
                                recall_probe_every=probe,
                                registry=registry) as service:
            print(json.dumps({"ok": True, "ready": True,
                              "users": len(history.users),
                              "num_items": artifact.num_items,
                              "backend": index_backend}), flush=True)
            for line in sys.stdin:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    if request.get("op") == "quit":
                        break
                    response = _serve_request(service, request, args.k)
                except (KeyError, ValueError, TypeError) as error:
                    response = {"ok": False, "error": str(error)}
                print(json.dumps(response), flush=True)
            print(service.report(), file=sys.stderr)
            if args.metrics_out:
                from pathlib import Path
                snapshot = json.dumps(service.stats(), indent=2) + "\n"
                Path(args.metrics_out).write_text(snapshot, encoding="utf-8")
    return 0


def _serve_network(args, artifact, history, index_backend: str,
                   index_options: dict, probe: int) -> int:
    """Network serving mode (``--listen``): NDJSON over TCP until SIGTERM."""
    import json
    import signal

    from repro.serve import NetServer, build_backend

    host, _, port_text = args.listen.rpartition(":")
    if not host or not port_text:
        print(f"--listen expects HOST:PORT, got {args.listen!r}",
              file=sys.stderr)
        return 2
    with _telemetry(args.events_out) as telemetry:
        registry = telemetry.registry if telemetry is not None else None
        backend = build_backend(
            artifact, history, replicas=args.replicas,
            service_options={"index_backend": index_backend,
                             "index_options": index_options,
                             "recall_probe_every": probe},
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
            registry=registry)
        server = NetServer(backend, host, int(port_text),
                           max_inflight=args.max_inflight,
                           default_k=args.k, registry=registry)
        try:
            bound_host, bound_port = server.start_background()
            print(json.dumps({"ok": True, "ready": True,
                              "host": bound_host, "port": bound_port,
                              "users": len(history.users),
                              "num_items": artifact.num_items,
                              "backend": index_backend,
                              "replicas": args.replicas}), flush=True)
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, lambda *_: server.drain())
            server.wait()
        finally:
            server.stop()
            if args.metrics_out:
                snapshot = {"net": server.net_stats()}
                if hasattr(backend, "stats"):
                    snapshot["backend"] = backend.stats()
            # Close the backend before collecting: replica processes flush
            # their relay spools (final metrics snapshot included) on exit.
            backend.close()
            if args.metrics_out:
                from pathlib import Path
                if telemetry is not None:
                    from repro.obs import collect_fleet
                    telemetry.emit_metrics_snapshot()
                    fleet = collect_fleet(args.events_out)
                    snapshot["fleet"] = fleet.registry.snapshot()
                Path(args.metrics_out).write_text(
                    json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")
    return 0


def _cmd_obs(args) -> int:
    from repro.obs import render_events
    try:
        print(render_events(args.events, collapse_after=args.collapse_after))
    except FileNotFoundError:
        print(f"no such event log: {args.events}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import run_lint
    return run_lint(args)


def _cmd_compare(args) -> int:
    from repro.eval import rank_all
    from repro.eval.significance import paired_bootstrap
    from repro.experiments import ExperimentContext, build_model
    from repro.train import TrainConfig, Trainer
    context = ExperimentContext.build(args.preset, scale=args.scale, seed=args.seed)
    ranks = {}
    for name in (args.model_a, args.model_b):
        model = build_model(name, context, seed=args.seed)
        if model.parameters():
            Trainer(model, context.split,
                    TrainConfig(epochs=args.epochs, patience=3, seed=args.seed)).fit()
        ranks[name] = rank_all(model, context.split.test, context.test_candidates,
                               context.dataset.schema)
    result = paired_bootstrap(ranks[args.model_a], ranks[args.model_b])
    print(f"{args.model_a} vs {args.model_b} (NDCG@10, paired bootstrap):")
    print(f"  {result}")
    return 0


def main(argv: list[str] | None = None) -> int:
    from repro.obs import setup_logging
    setup_logging()
    if os.environ.get("REPRO_LOCK_WATCH", "") not in ("", "0"):
        # Opt-in runtime lock-order watchdog; fork-based replicas inherit
        # the enabled state (and their own private acquisition graphs).
        from repro.obs import enable_lock_watch
        enable_lock_watch()
    args = build_parser().parse_args(argv)
    handlers = {
        "stats": _cmd_stats,
        "train": _cmd_train,
        "experiment": _cmd_experiment,
        "list": _cmd_list,
        "profile": _cmd_profile,
        "compare": _cmd_compare,
        "export": _cmd_export,
        "serve": _cmd_serve,
        "obs": _cmd_obs,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
