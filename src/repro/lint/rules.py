"""The shipped rule catalog — codebase-specific checks, not pyflakes clones.

Each rule encodes a discipline this repository already relies on but until
now only enforced by review:

* ``DTYPE-DISCIPLINE`` — the float64-leak class of bug PR 1 fixed by hand in
  ``hgnn_propagation_matrix``: NumPy array factories default to float64, so
  hot-path code in ``repro.nn`` / ``repro.core`` / ``repro.serve`` must pass
  an explicit dtype, and explicit float64 must be intentional (baselined with
  a reason).
* ``SCATTER-CONTAINMENT`` — ``ufunc.at`` is the slowest scatter idiom; all
  scatter kernels live behind :mod:`repro.nn.scatter` so the fast/reference
  backend switch covers every call site.
* ``SHM-DISCIPLINE`` — ``multiprocessing.shared_memory.SharedMemory`` leaks
  ``/dev/shm`` segments unless creation, attachment, resource-tracker
  bookkeeping and unlink ordering are all handled; that lifecycle lives in
  :mod:`repro.data.shm` (arena slots, lease-counted unmap, finalizers) and
  nowhere else.
* ``NO-BARE-PRINT`` — library code logs through ``repro.obs.get_logger`` so
  telemetry sessions capture it; ``print`` is reserved for the CLI surface
  and experiment report rendering.
* ``SEEDED-RANDOMNESS`` — global-state ``np.random.*`` calls are invisible to
  the seeding discipline; library code draws from explicit
  ``np.random.Generator`` objects (``repro.utils.seeded_rng``).
* ``TELEMETRY-GUARD`` — ``get_telemetry()`` / ``current_span()`` return
  ``None`` when disabled; chaining directly on the call both crashes when
  telemetry is off and defeats the one-global-check zero-cost discipline
  shared with :mod:`repro.perf`.
* ``BLOCKING-IO-CONTAINMENT`` — raw sockets and blocking receive/send calls
  belong in :mod:`repro.serve.net` only; anywhere else (and especially on
  the asyncio front-end's event loop) a blocking socket call is a stall the
  in-flight bound cannot see.
* ``SPAN-NAME-DISCIPLINE`` — fleet merges aggregate per-process spools *by
  name*, so a typo'd or ad-hoc span/metric name silently fragments the fleet
  view; instrumentation sites must use a literal from the
  :mod:`repro.obs.names` catalog or one of its template helpers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import FileContext, Finding, register

__all__ = [
    "DtypeDisciplineRule",
    "ScatterContainmentRule",
    "ShmDisciplineRule",
    "NoBarePrintRule",
    "SeededRandomnessRule",
    "TelemetryGuardRule",
    "BlockingIoContainmentRule",
    "SpanNameDisciplineRule",
]

_NUMPY_ALIASES = {"np", "numpy"}


def _numpy_attr(node: ast.AST) -> str | None:
    """``"zeros"`` for an ``np.zeros`` / ``numpy.zeros`` expression."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id in _NUMPY_ALIASES):
        return node.attr
    return None


def _in_packages(module: str, packages: tuple[str, ...]) -> bool:
    return any(module == pkg or module.startswith(pkg + ".")
               for pkg in packages)


@register
class DtypeDisciplineRule:
    """Array factories need an explicit dtype; float64 must be intentional."""

    rule_id = "DTYPE-DISCIPLINE"
    description = ("np.zeros/ones/empty/full/arange need an explicit dtype, "
                   "and .astype/dtype targets must not be float64, inside "
                   "repro.nn / repro.core / repro.serve hot paths; the "
                   "quantized-retrieval module additionally requires a dtype "
                   "on np.array/np.asarray and confines float64 to refine "
                   "functions")

    PACKAGES = ("repro.nn", "repro.core", "repro.serve")
    FACTORIES = ("zeros", "ones", "empty", "full", "arange")
    # Spellings that statically resolve to a 64-bit (or wider) float dtype.
    FLOAT64_ATTRS = ("float64", "double", "float128", "longdouble")
    # Modules whose arrays carry int8/uint8 codes: an implicit dtype is a
    # silent promotion back to the float64/float32 block the module exists
    # to avoid, so the converting constructors are held to the same bar as
    # the factories — and float64 is legal only inside the exact refine
    # step (functions named ``*refine*``), the one deliberate promotion.
    STRICT_MODULES = ("repro.serve.quant",)
    STRICT_FACTORIES = ("array", "asarray")

    def _is_float64(self, node: ast.AST) -> bool:
        attr = _numpy_attr(node)
        if attr is not None:
            return attr in self.FLOAT64_ATTRS
        if isinstance(node, ast.Name):
            return node.id == "float"  # builtin float == np.float64
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value in self.FLOAT64_ATTRS
        return False

    def _refine_spans(self, tree: ast.AST) -> tuple[tuple[int, int], ...]:
        """Line spans of functions named ``*refine*`` (float64 is legal there)."""
        return tuple(
            (node.lineno, node.end_lineno or node.lineno)
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and "refine" in node.name)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag dtype-less factories and statically-float64 dtype targets."""
        if not _in_packages(ctx.module, self.PACKAGES):
            return
        strict = ctx.module in self.STRICT_MODULES
        refine_spans = self._refine_spans(ctx.tree) if strict else ()

        def float64_allowed(node: ast.AST) -> bool:
            return strict and any(lo <= node.lineno <= hi
                                  for lo, hi in refine_spans)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            factory = _numpy_attr(node.func)
            checked = self.FACTORIES + (self.STRICT_FACTORIES if strict
                                        else ())
            if factory in checked:
                dtype = next((kw.value for kw in node.keywords
                              if kw.arg == "dtype"), None)
                if dtype is None:
                    yield ctx.finding(
                        self.rule_id, node,
                        f"np.{factory} without an explicit dtype= "
                        + ("(quantized paths carry int8/uint8 codes; an "
                           "implicit dtype silently promotes them)"
                           if factory in self.STRICT_FACTORIES else
                           "(NumPy defaults to float64/int64)"))
                elif self._is_float64(dtype) and not float64_allowed(node):
                    yield ctx.finding(
                        self.rule_id, node,
                        f"np.{factory} with explicit float64 dtype "
                        + ("(float64 belongs in the refine step only)"
                           if strict else
                           "(baseline with a reason if intentional)"))
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype" and node.args):
                if (self._is_float64(node.args[0])
                        and not float64_allowed(node)):
                    yield ctx.finding(
                        self.rule_id, node,
                        ".astype to float64 "
                        + ("(float64 belongs in the refine step only)"
                           if strict else
                           "(baseline with a reason if intentional)"))


@register
class ScatterContainmentRule:
    """``ufunc.at`` scatter calls belong in ``repro.nn.scatter`` only."""

    rule_id = "SCATTER-CONTAINMENT"
    description = ("ufunc.at (np.add.at, np.maximum.at, ...) is forbidden "
                   "outside repro.nn.scatter — use the scatter kernels")

    HOME_MODULE = "repro.nn.scatter"
    UFUNCS = ("add", "subtract", "multiply", "divide", "maximum", "minimum",
              "fmax", "fmin", "logical_or", "logical_and", "bitwise_or")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag ``<ufunc>.at(...)`` calls in any other module."""
        if ctx.module == self.HOME_MODULE:
            return
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "at"
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr in self.UFUNCS):
                yield ctx.finding(
                    self.rule_id, node,
                    f"np.{node.func.value.attr}.at outside repro.nn.scatter "
                    "(route through the scatter kernels so backend selection "
                    "and the fast paths apply)")


@register
class ShmDisciplineRule:
    """``SharedMemory`` construction/attach belongs in ``repro.data.shm`` only."""

    rule_id = "SHM-DISCIPLINE"
    description = ("SharedMemory() construction/attach is forbidden outside "
                   "repro.data.shm — use ShmArena / ShmParamMirror so segment "
                   "cleanup and resource-tracker bookkeeping apply")

    HOME_MODULE = "repro.data.shm"

    def _is_shared_memory(self, func: ast.AST) -> bool:
        if isinstance(func, ast.Name):
            return func.id == "SharedMemory"
        if isinstance(func, ast.Attribute):
            return func.attr == "SharedMemory"
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag ``SharedMemory(...)`` calls in any other module."""
        if ctx.module == self.HOME_MODULE:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and self._is_shared_memory(node.func):
                yield ctx.finding(
                    self.rule_id, node,
                    "SharedMemory construction/attach outside repro.data.shm "
                    "(route through ShmArena / ShmParamMirror so leases, "
                    "finalizers and unlink ordering are handled)")


@register
class NoBarePrintRule:
    """Library code logs via ``repro.obs.get_logger``, never ``print``."""

    rule_id = "NO-BARE-PRINT"
    description = ("print() is reserved for the CLI surface and report "
                   "rendering; library code logs via repro.obs.get_logger")

    ALLOWED_MODULES = ("repro.cli", "repro.__main__", "repro.experiments.report",
                       "repro.lint.cli")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag ``print(...)`` calls outside the allowed CLI modules."""
        if ctx.module in self.ALLOWED_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                yield ctx.finding(
                    self.rule_id, node,
                    "bare print() in library code "
                    "(use repro.obs.get_logger so telemetry captures it)")


@register
class SeededRandomnessRule:
    """Global-state ``np.random.*`` draws are forbidden in library code."""

    rule_id = "SEEDED-RANDOMNESS"
    description = ("global-state np.random.* calls are forbidden; draw from "
                   "an explicit Generator (repro.utils.seeded_rng)")

    # Constructors/types that do not touch the global RNG state.
    ALLOWED = ("default_rng", "Generator", "SeedSequence", "BitGenerator",
               "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag ``np.random.<fn>(...)`` calls that use the global state."""
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            if (_numpy_attr(node.func.value) == "random"
                    and node.func.attr not in self.ALLOWED):
                yield ctx.finding(
                    self.rule_id, node,
                    f"global-state np.random.{node.func.attr} "
                    "(thread a seeded np.random.Generator instead)")


@register
class BlockingIoContainmentRule:
    """Raw sockets and blocking receive calls live in ``repro.serve.net`` only."""

    rule_id = "BLOCKING-IO-CONTAINMENT"
    description = ("socket imports/constructors and blocking recv/sendall/"
                   "accept calls are forbidden outside repro.serve.net — the "
                   "serving tier keeps every blocking socket behind the "
                   "executor boundary there")

    HOME_MODULE = "repro.serve.net"
    CONSTRUCTORS = ("socket", "create_connection", "create_server",
                    "socketpair", "fromfd")
    BLOCKING_METHODS = ("recv", "recv_into", "recvfrom", "recvfrom_into",
                        "recvmsg", "sendall", "accept")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag socket imports, ``socket.*`` constructors and blocking
        socket-style method calls in any other module."""
        if ctx.module == self.HOME_MODULE:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "socket" or alias.name.startswith("socket."):
                        yield ctx.finding(
                            self.rule_id, node,
                            "socket import outside repro.serve.net (route "
                            "network I/O through the serving tier)")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "socket":
                    yield ctx.finding(
                        self.rule_id, node,
                        "socket import outside repro.serve.net (route "
                        "network I/O through the serving tier)")
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                if (isinstance(func.value, ast.Name)
                        and func.value.id == "socket"
                        and func.attr in self.CONSTRUCTORS):
                    yield ctx.finding(
                        self.rule_id, node,
                        f"socket.{func.attr} outside repro.serve.net "
                        "(raw sockets bypass the serving tier's timeout and "
                        "shedding discipline)")
                elif func.attr in self.BLOCKING_METHODS:
                    yield ctx.finding(
                        self.rule_id, node,
                        f".{func.attr}() is a blocking socket-style call "
                        "outside repro.serve.net (it would stall whatever "
                        "thread or event loop runs it)")


@register
class SpanNameDisciplineRule:
    """Span/metric names at instrumentation sites come from the catalog.

    The fleet merge (:mod:`repro.obs.fleet`) sums counters and merges
    histograms across per-process spools strictly by name, so every name
    must be spelled identically in every process.  A ``span(...)`` /
    ``registry.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` call
    must therefore name its series with either

    * a string literal present in :data:`repro.obs.names.SPAN_NAMES` /
      :data:`~repro.obs.names.METRIC_NAMES`, or
    * a call to one of the catalog's template helpers
      (``serve_latency_stage`` and friends) for the parameterized families.

    F-strings and string arithmetic at the call site are always findings —
    that is exactly the ad-hoc-name class the catalog exists to kill.  Bare
    variables are allowed: merge/export code legitimately passes names it
    read from another process's snapshot.
    """

    rule_id = "SPAN-NAME-DISCIPLINE"
    description = ("span()/counter()/gauge()/histogram() names must be "
                   "catalog literals from repro.obs.names or calls to its "
                   "template helpers — ad-hoc literals and f-strings "
                   "fragment the fleet merge")

    # The catalog itself and the registry internals (which rebuild metrics
    # from merged state under dynamic names) are exempt.
    EXEMPT_MODULES = ("repro.obs.names", "repro.obs.metrics",
                      "repro.obs.fleet", "repro.obs.exporters")
    METRIC_METHODS = ("counter", "gauge", "histogram")
    HELPERS = ("serve_latency_stage", "train_loss_component",
               "pipeline_worker_batches")

    def _catalogs(self):
        from repro.obs.names import METRIC_NAMES, SPAN_NAMES
        return SPAN_NAMES, METRIC_NAMES

    def _is_helper_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in self.HELPERS
        return isinstance(func, ast.Attribute) and func.attr in self.HELPERS

    def _name_argument(self, call: ast.Call) -> ast.AST | None:
        if call.args:
            return call.args[0]
        return next((kw.value for kw in call.keywords if kw.arg == "name"),
                    None)

    def _check_name(self, ctx: FileContext, call: ast.Call, catalog,
                    what: str) -> Iterator[Finding]:
        name = self._name_argument(call)
        if name is None or self._is_helper_call(name):
            return
        if isinstance(name, ast.Constant) and isinstance(name.value, str):
            if name.value not in catalog:
                yield ctx.finding(
                    self.rule_id, call,
                    f"{what} name {name.value!r} is not in the "
                    "repro.obs.names catalog (add it there so fleet merges "
                    "can aggregate it)")
        elif isinstance(name, (ast.JoinedStr, ast.BinOp, ast.Call)):
            yield ctx.finding(
                self.rule_id, call,
                f"computed {what} name at the instrumentation site — use a "
                "catalog literal or a repro.obs.names template helper")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag non-catalog names on span and metric constructor calls."""
        if (ctx.module in self.EXEMPT_MODULES
                or not _in_packages(ctx.module, ("repro",))):
            return
        span_names, metric_names = self._catalogs()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "span":
                yield from self._check_name(ctx, node, span_names, "span")
            elif (isinstance(func, ast.Attribute)
                    and func.attr in self.METRIC_METHODS):
                yield from self._check_name(ctx, node, metric_names, "metric")


@register
class TelemetryGuardRule:
    """Optional-telemetry accessors must be bound and ``is None``-checked."""

    rule_id = "TELEMETRY-GUARD"
    description = ("get_telemetry()/current_span() return None when disabled; "
                   "bind the result and check `is not None` before use")

    OPTIONAL_ACCESSORS = ("get_telemetry", "current_span", "get_sanitizer",
                          "get_lock_watch")

    def _accessor_name(self, call: ast.AST) -> str | None:
        if not isinstance(call, ast.Call):
            return None
        func = call.func
        if isinstance(func, ast.Name) and func.id in self.OPTIONAL_ACCESSORS:
            return func.id
        if (isinstance(func, ast.Attribute)
                and func.attr in self.OPTIONAL_ACCESSORS):
            return func.attr
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag attribute chains directly on an optional accessor's result."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            accessor = self._accessor_name(node.value)
            if accessor is not None:
                yield ctx.finding(
                    self.rule_id, node,
                    f"chained access on {accessor}() — it returns None when "
                    "disabled; bind it to a local and check `is not None` "
                    "(zero-cost discipline from repro.perf/repro.obs)")
