"""``repro.lint`` — AST-based static analysis for this codebase.

A small custom lint framework (:mod:`.framework`) with a registry of
codebase-specific rules (:mod:`.rules`), per-line ``# repro: noqa[RULE-ID]``
suppression, a committed baseline of intentional violations with documented
reasons (:mod:`.baseline`), text/JSON reporters (:mod:`.reporters`) and the
``python -m repro lint`` CLI front-end (:mod:`.cli`).  The companion
*runtime* checker — the autograd sanitizer — lives in
:mod:`repro.nn.sanitizer`; see ``docs/STATIC_ANALYSIS.md`` for both.
"""

from .baseline import Baseline, BaselineMatcher, find_baseline
from .framework import (FileContext, Finding, LintResult, ProjectContext,
                        all_rules, get_rule, is_project_rule, lint_paths,
                        module_name_for, register, rule_ids,
                        suppressions_for)
from .reporters import render_json, render_text
from . import rules  # noqa: F401  (importing registers the rule catalog)
from . import flow   # noqa: F401  (importing registers the flow rules)

__all__ = [
    "Finding", "FileContext", "LintResult", "ProjectContext",
    "register", "all_rules", "get_rule", "rule_ids", "is_project_rule",
    "lint_paths", "module_name_for", "suppressions_for",
    "Baseline", "BaselineMatcher", "find_baseline",
    "render_text", "render_json",
    "rules", "flow",
]
