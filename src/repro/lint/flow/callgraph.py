"""Project call graph with containment-aware resolution.

The interprocedural flow rules need to answer "what does this call reach?"
across module boundaries: a call inside ``async def`` handlers must not
transitively hit blocking IO, a critical section must not transitively
acquire a second lock, a constructor call may transitively fork workers.

:func:`build_call_graph` indexes every linted file once and resolves call
expressions with the containment the codebase actually uses:

* **imports** — ``import a.b as c`` / ``from a.b import f as g`` map local
  names to dotted targets, so ``g(...)`` resolves to ``a.b.f`` even when
  ``a.b`` is outside the linted tree (the dotted text is still useful for
  recognizing primitives such as ``time.sleep``).
* **module functions and classes** — a bare ``Name`` call resolves to the
  same module's function or class; calling a class resolves to its
  ``__init__`` and records a *constructs* edge.
* **``self`` containment** — ``self.method(...)`` resolves within the
  enclosing class (and same-project base classes); ``self.attr.method(...)``
  resolves through the attribute's type, inferred from ``self.attr =
  SomeClass(...)`` assignments anywhere in the class.
* **local containment** — ``v = SomeClass(...)`` types ``v`` for the rest
  of the function, so ``v.method(...)`` resolves to ``SomeClass.method``.

Resolution is best-effort and unresolved calls stay unresolved — the flow
rules treat "unknown" as silent rather than guessing, keeping the gate's
false-positive rate at zero on the committed tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

__all__ = ["CallSite", "FunctionInfo", "ClassInfo", "ModuleIndex",
           "CallGraph", "build_call_graph", "dotted_name"]


def dotted_name(expr: ast.AST) -> str | None:
    """Flatten ``a.b.c`` attribute chains to a dotted string (else None)."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class CallSite:
    """One call expression, with its best-effort resolution."""

    node: ast.Call
    target: str | None          # project qualified name, when resolved
    dotted: str | None          # import-resolved dotted text (may be external)


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qname: str                  # e.g. "repro.serve.net._Replica.call"
    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: object                 # the owning FileContext (for findings)
    is_async: bool
    calls: list[CallSite] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class: its methods, bases, and inferred attribute types."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)      # raw dotted base text
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    # self.<attr> = <Call> assignments: attr -> dotted constructor text
    attr_ctors: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleIndex:
    """Per-module symbol tables used during resolution."""

    module: str
    ctx: object
    imports: dict[str, str] = field(default_factory=dict)   # alias -> dotted
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


class CallGraph:
    """The resolved project call graph plus memoized transitive queries."""

    def __init__(self, modules: dict[str, ModuleIndex],
                 functions: dict[str, FunctionInfo],
                 classes: dict[str, ClassInfo]):
        self.modules = modules
        self.functions = functions
        self.classes = classes

    def function(self, qname: str) -> FunctionInfo | None:
        return self.functions.get(qname)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        return iter(self.functions.values())

    def find_path(self, qname: str,
                  pred: Callable[[FunctionInfo], object],
                  _seen: set[str] | None = None
                  ) -> list[tuple[str, object]] | None:
        """DFS for a call path from ``qname`` to a function where ``pred``
        returns truthy.

        Returns ``[(qname, witness), ..., (qname, pred_result)]`` — the
        chain of functions walked, ending with the predicate's witness — or
        None when nothing in the transitive closure satisfies ``pred``.
        """
        seen = _seen if _seen is not None else set()
        if qname in seen:
            return None
        seen.add(qname)
        info = self.functions.get(qname)
        if info is None:
            return None
        hit = pred(info)
        if hit:
            return [(qname, hit)]
        for call in info.calls:
            if call.target is None:
                continue
            sub = self.find_path(call.target, pred, seen)
            if sub is not None:
                return [(qname, call), *sub]
        return None


class _Resolver:
    """Resolution scope for one function body."""

    def __init__(self, graph_modules: dict[str, ModuleIndex],
                 index: ModuleIndex, cls: ClassInfo | None):
        self.modules = graph_modules
        self.index = index
        self.cls = cls
        self.local_types: dict[str, str] = {}   # var -> class qname

    def _project_class(self, dotted: str) -> ClassInfo | None:
        """A project class by dotted name (module-qualified or local)."""
        module, _, name = dotted.rpartition(".")
        index = self.modules.get(module)
        if index is not None and name in index.classes:
            return index.classes[name]
        # Local (same-module) name.
        if dotted in self.index.classes:
            return self.index.classes[dotted]
        return None

    def _project_function(self, dotted: str) -> FunctionInfo | None:
        module, _, name = dotted.rpartition(".")
        index = self.modules.get(module)
        if index is not None and name in index.functions:
            return index.functions[name]
        return None

    def resolve_dotted(self, expr: ast.AST) -> str | None:
        """Dotted text with the leading alias resolved through imports."""
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.index.imports.get(head)
        if target is not None:
            return target + ("." + rest if rest else "")
        return dotted

    def _method_on(self, cls: ClassInfo, name: str,
                   _seen: set[str] | None = None) -> FunctionInfo | None:
        """Method lookup on a class, following same-project bases."""
        seen = _seen or set()
        if cls.qname in seen:
            return None
        seen.add(cls.qname)
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            base_cls = self._resolve_class_text(base)
            if base_cls is not None:
                found = self._method_on(base_cls, name, seen)
                if found is not None:
                    return found
        return None

    def _resolve_class_text(self, text: str) -> ClassInfo | None:
        """A class from raw source text (local name or import alias)."""
        if text in self.index.classes:
            return self.index.classes[text]
        head, _, rest = text.partition(".")
        target = self.index.imports.get(head)
        dotted = (target + ("." + rest if rest else "")) if target else text
        return self._project_class(dotted)

    def resolve_call(self, call: ast.Call) -> CallSite:
        func = call.func
        dotted = self.resolve_dotted(func)
        target: str | None = None

        if isinstance(func, ast.Name):
            name = func.id
            if name in self.local_types:
                cls = self._project_class(self.local_types[name])
                # Calling a typed local is rare; leave unresolved.
            elif name in self.index.functions:
                target = self.index.functions[name].qname
            elif name in self.index.classes:
                cls = self.index.classes[name]
                init = cls.methods.get("__init__")
                target = init.qname if init is not None else None
                dotted = cls.qname
            elif dotted is not None:
                info = self._project_function(dotted)
                if info is not None:
                    target = info.qname
                else:
                    cls = self._project_class(dotted)
                    if cls is not None:
                        init = cls.methods.get("__init__")
                        target = init.qname if init is not None else None
                        dotted = cls.qname

        elif isinstance(func, ast.Attribute):
            base, attr = func.value, func.attr
            cls: ClassInfo | None = None
            if isinstance(base, ast.Name):
                if base.id == "self" and self.cls is not None:
                    cls = self.cls
                elif base.id in self.local_types:
                    cls = self._project_class(self.local_types[base.id])
            elif (isinstance(base, ast.Attribute)
                  and isinstance(base.value, ast.Name)
                  and base.value.id == "self" and self.cls is not None):
                ctor = self.cls.attr_ctors.get(base.attr)
                if ctor is not None:
                    cls = self._resolve_class_text(ctor)
            if cls is not None:
                method = self._method_on(cls, attr)
                if method is not None:
                    target = method.qname
            elif dotted is not None:
                # Module-attr call through an import: "a.b.f".
                info = self._project_function(dotted)
                if info is not None:
                    target = info.qname
                else:
                    klass = self._project_class(dotted)
                    if klass is not None:
                        init = klass.methods.get("__init__")
                        target = init.qname if init is not None else None

        return CallSite(node=call, target=target, dotted=dotted)

    def note_assign(self, stmt: ast.stmt) -> None:
        """Track ``v = SomeClass(...)`` so later ``v.m()`` calls resolve."""
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        tgt = stmt.targets[0]
        if not isinstance(tgt, ast.Name) or not isinstance(stmt.value, ast.Call):
            return
        dotted = self.resolve_dotted(stmt.value.func)
        if dotted is None:
            return
        cls = self._project_class(dotted)
        if cls is None and dotted_name(stmt.value.func) in self.index.classes:
            cls = self.index.classes[dotted_name(stmt.value.func)]
        if cls is not None:
            self.local_types[tgt.name if hasattr(tgt, "name") else tgt.id] = \
                cls.qname


def _is_self_attr(target: ast.AST) -> bool:
    return (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self")


def _annotation_text(ann: ast.AST | None) -> str | None:
    """Best-effort dotted text of a type annotation (``X``, ``"X"``,
    ``X | None``); parameterized generics are left untyped."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        text = ann.value.strip().strip("'\"")
        return text if text.replace(".", "").replace("_", "").isalnum() \
            else None
    if isinstance(ann, (ast.Name, ast.Attribute)):
        return dotted_name(ann)
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        left = _annotation_text(ann.left)
        right = _annotation_text(ann.right)
        if left not in (None, "None"):
            return left
        return right if right != "None" else None
    return None


def _annotated_params(func) -> dict[str, str]:
    """Parameter name -> annotation text for one function."""
    params: dict[str, str] = {}
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        text = _annotation_text(arg.annotation)
        if text is not None:
            params[arg.arg] = text
    return params


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.partition(".")[0]] = \
                    alias.name if alias.asname else alias.name.partition(".")[0]
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:     # relative imports: skip (none in this tree)
                continue
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = \
                    f"{base}.{alias.name}" if base else alias.name
    return imports


def _index_module(ctx) -> ModuleIndex:
    index = ModuleIndex(module=ctx.module, ctx=ctx,
                        imports=_collect_imports(ctx.tree))
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{ctx.module}.{node.name}"
            index.functions[node.name] = FunctionInfo(
                qname=qname, module=ctx.module, cls=None, name=node.name,
                node=node, ctx=ctx,
                is_async=isinstance(node, ast.AsyncFunctionDef))
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(qname=f"{ctx.module}.{node.name}",
                            module=ctx.module, name=node.name, node=node,
                            bases=[d for d in (dotted_name(b)
                                               for b in node.bases)
                                   if d is not None])
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = f"{cls.qname}.{item.name}"
                    cls.methods[item.name] = FunctionInfo(
                        qname=qname, module=ctx.module, cls=node.name,
                        name=item.name, node=item, ctx=ctx,
                        is_async=isinstance(item, ast.AsyncFunctionDef))
            # self.<attr> types, in priority order: annotated class-level /
            # AnnAssign declarations, `self.x = Ctor(...)` constructor
            # calls, and `self.x = param` stores of annotated parameters.
            for method in cls.methods.values():
                params = _annotated_params(method.node)
                for item in ast.walk(method.node):
                    target, value = None, None
                    if (isinstance(item, ast.Assign)
                            and len(item.targets) == 1):
                        target, value = item.targets[0], item.value
                    elif isinstance(item, ast.AnnAssign):
                        target = item.target
                        ann = _annotation_text(item.annotation)
                        if (ann is not None and _is_self_attr(target)):
                            cls.attr_ctors.setdefault(target.attr, ann)
                            continue
                    if target is None or not _is_self_attr(target):
                        continue
                    if isinstance(value, ast.Call):
                        text = dotted_name(value.func)
                        if text is not None:
                            cls.attr_ctors.setdefault(target.attr, text)
                    elif isinstance(value, ast.Name) and value.id in params:
                        cls.attr_ctors.setdefault(target.attr,
                                                  params[value.id])
            index.classes[node.name] = cls
    return index


def build_call_graph(contexts: Sequence) -> CallGraph:
    """Index every file and resolve every call expression once."""
    modules: dict[str, ModuleIndex] = {}
    for ctx in contexts:
        modules[ctx.module] = _index_module(ctx)

    functions: dict[str, FunctionInfo] = {}
    classes: dict[str, ClassInfo] = {}
    for index in modules.values():
        for info in index.functions.values():
            functions[info.qname] = info
        for cls in index.classes.values():
            classes[cls.qname] = cls
            for info in cls.methods.values():
                functions[info.qname] = info

    for index in modules.values():
        for info in index.functions.values():
            _resolve_function(info, modules, index, None)
        for cls in index.classes.values():
            for info in cls.methods.values():
                _resolve_function(info, modules, index, cls)
    return CallGraph(modules=modules, functions=functions, classes=classes)


def _resolve_function(info: FunctionInfo, modules: dict[str, ModuleIndex],
                      index: ModuleIndex, cls: ClassInfo | None) -> None:
    resolver = _Resolver(modules, index, cls)
    # Statement-ordered walk so local `v = Cls(...)` types apply to later
    # calls (close enough to flow order for real code).
    for stmt in ast.walk(info.node):
        if isinstance(stmt, ast.Assign):
            resolver.note_assign(stmt)
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            info.calls.append(resolver.resolve_call(node))


def project_call_graph(project) -> CallGraph:
    """The (cached) call graph for one :class:`ProjectContext`."""
    graph = project.cache.get("callgraph")
    if graph is None:
        graph = build_call_graph(project.files)
        project.cache["callgraph"] = graph
    return graph
