"""``repro.lint.flow`` — flow-sensitive, interprocedural analysis layer.

Three building blocks and the rules on top:

- :mod:`.cfg` — per-function control-flow graphs (basic blocks, with/try
  desugaring, early-exit routing through cleanups).
- :mod:`.callgraph` — the project call graph with containment-aware
  resolution (imports, ``self`` methods, typed attributes and locals).
- :mod:`.lifecycle` — forward may-analyses over the CFG: acquire/release
  pair tracking and generic per-step state queries.
- :mod:`.rules` — ``LEASE-BALANCE``, ``LOCK-DISCIPLINE``, ``LOCK-ORDER``,
  ``FORK-SAFETY``, ``ASYNC-BLOCKING``, registered into the shared
  :mod:`repro.lint` catalog as project-scoped rules.

The runtime companion — the lock-order watchdog that checks the *dynamic*
acquisition graph — lives in :mod:`repro.obs.lockwatch`; see
``docs/STATIC_ANALYSIS.md`` for both halves.
"""

from .callgraph import (CallGraph, CallSite, ClassInfo, FunctionInfo,
                        build_call_graph, project_call_graph)
from .cfg import CFG, Block, WithEnter, WithExit, build_cfg
from .lifecycle import Resource, find_leaks, run_forward, step_states
from . import rules  # noqa: F401  (importing registers the flow rules)

__all__ = [
    "CFG", "Block", "WithEnter", "WithExit", "build_cfg",
    "CallGraph", "CallSite", "ClassInfo", "FunctionInfo",
    "build_call_graph", "project_call_graph",
    "Resource", "find_leaks", "run_forward", "step_states",
    "rules",
]
