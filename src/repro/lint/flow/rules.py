"""The flow-sensitive rule catalog: locks, leases, forks, async blocking.

Five project-scoped rules built on the CFG (:mod:`.cfg`), the call graph
(:mod:`.callgraph`) and the lifecycle interpreter (:mod:`.lifecycle`).
They run once over the whole linted tree (``check_project``), sharing one
call graph through the :class:`~repro.lint.framework.ProjectContext`
cache:

* ``LEASE-BALANCE`` — a :class:`~repro.data.shm.ShmArena` /
  ``ShmParamMirror`` acquired by a consumer must be released on every
  explicit path out of the function (``close()`` in a ``finally``, a
  ``with`` block, or ownership stored on an object / returned).
* ``LOCK-DISCIPLINE`` — locks are acquired with ``with`` only (no bare
  ``.acquire()``), and no blocking operation (``time.sleep``, socket or
  file IO, queue get/put, ``WorkerPool``/batcher submission) runs while a
  lock is held — directly or through the call graph.  Waiting on the very
  condition/lock object being held is the sanctioned condition-variable
  idiom and exempt.
* ``LOCK-ORDER`` — the static lock-acquisition graph (lock held → lock
  acquired inside, transitively through calls) must be acyclic.
* ``FORK-SAFETY`` — fork-based ``WorkerPool`` construction happens only in
  sanctioned modules; nothing starts threads or takes locks at import
  time; and no path inside a function starts a thread *before* forking.
* ``ASYNC-BLOCKING`` — a non-awaited call inside ``async def`` must not
  resolve (transitively) to blocking IO; blocking work crosses the
  executor boundary via ``run_in_executor``.

All resolution is best-effort (see :mod:`.callgraph`): unresolved calls
are silent, keeping the committed tree's gate at zero false positives.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FileContext, Finding, ProjectContext, register
from .callgraph import (CallGraph, CallSite, ClassInfo, FunctionInfo,
                        project_call_graph)
from .cfg import WithEnter, WithExit, build_cfg
from .lifecycle import find_leaks, step_states

__all__ = [
    "LeaseBalanceRule",
    "LockDisciplineRule",
    "LockOrderRule",
    "ForkSafetyRule",
    "AsyncBlockingRule",
]


def _in_repro(module: str) -> bool:
    return module == "repro" or module.startswith("repro.")


def _terminal_name(expr: ast.AST) -> str | None:
    """``"lock"`` for ``self._lock`` / ``lock`` receiver expressions."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


# -- lock recognition ---------------------------------------------------------

_LOCK_NAME_FRAGMENTS = ("lock", "mutex", "cond", "wake")
_LOCK_CTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "multiprocessing.Lock", "multiprocessing.RLock",
    "repro.obs.lockwatch.watched_lock", "repro.obs.lockwatch.watched_rlock",
    "watched_lock", "watched_rlock",
})


def _lockish_name(name: str | None) -> bool:
    return name is not None and any(f in name.lower()
                                    for f in _LOCK_NAME_FRAGMENTS)


def _is_lock_expr(expr: ast.AST, cls: ClassInfo | None) -> bool:
    """Heuristic + containment: is this with-context / receiver a lock?"""
    name = _terminal_name(expr)
    if _lockish_name(name):
        return True
    if (cls is not None and isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name) and expr.value.id == "self"):
        ctor = cls.attr_ctors.get(expr.attr, "")
        return ctor in _LOCK_CTORS or ctor.split(".")[-1] in (
            "Lock", "RLock", "Condition", "watched_lock", "watched_rlock")
    return False


def _lock_identity(expr: ast.AST, info: FunctionInfo) -> str:
    """Stable cross-function identity for a lock expression.

    ``self.<attr>`` locks are identified by class (every instance shares
    the ordering discipline); local locks by function.
    """
    if (isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name)
            and expr.value.id == "self" and info.cls is not None):
        return f"{info.module}.{info.cls}.{expr.attr}"
    name = _terminal_name(expr) or "<lock>"
    return f"{info.module}.{info.name}.{name}"


# -- blocking-call recognition ------------------------------------------------

_BLOCKING_DOTTED = frozenset({
    "time.sleep",
    "socket.create_connection", "socket.create_server", "socket.socketpair",
    "open",
})
_BLOCKING_METHODS = frozenset({
    "recv", "recv_into", "recvfrom", "recvfrom_into", "recvmsg",
    "sendall", "accept", "next_result",
})
# Receiver-conditioned methods: the method name alone is too generic
# (dict.get, str.join, ...), so the receiver must look like the real thing.
_CONDITIONED_METHODS = {
    "submit": ("pool", "batcher", "executor"),
    "get": ("queue", "tasks", "results", "free", "inbox", "outbox"),
    "put": ("queue", "tasks", "results", "free", "inbox", "outbox"),
    "wait": ("event", "done", "stop", "ready", "barrier"),
    "join": ("thread", "worker", "supervisor", "collector", "proc"),
}


def _direct_blocking(site: CallSite) -> str | None:
    """Describe why this call blocks, or None if it does not (statically)."""
    if site.dotted in _BLOCKING_DOTTED:
        return site.dotted
    func = site.node.func
    if isinstance(func, ast.Attribute):
        attr = func.attr
        if attr in _BLOCKING_METHODS:
            return f".{attr}()"
        fragments = _CONDITIONED_METHODS.get(attr)
        if fragments is not None:
            receiver = (_terminal_name(func.value) or "").lower()
            if any(f in receiver for f in fragments):
                return f"{_terminal_name(func.value)}.{attr}()"
    return None


def _fn_blocking_pred(graph: CallGraph):
    """Predicate for :meth:`CallGraph.find_path`: direct blocking op in fn."""
    def pred(info: FunctionInfo):
        for site in info.calls:
            desc = _direct_blocking(site)
            if desc is not None:
                return desc
        return None
    return pred


def _blocking_path(graph: CallGraph, target: str) -> str | None:
    """``"a.b -> c.d: time.sleep"`` for a transitive blocking chain."""
    info = graph.function(target)
    if info is None or info.is_async:
        return None
    path = graph.find_path(target, _fn_blocking_pred(graph))
    if path is None:
        return None
    qnames = [qname for qname, _ in path]
    return " -> ".join(qnames) + f": {path[-1][1]}"


def _sites_by_node(info: FunctionInfo) -> dict[int, CallSite]:
    return {id(site.node): site for site in info.calls}


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    """Call expressions in ``node``, not descending into nested defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        if isinstance(child, ast.Call):
            yield child
        stack.extend(ast.iter_child_nodes(child))


# -- LEASE-BALANCE ------------------------------------------------------------

_LEASE_CTORS = {
    "repro.data.shm.ShmArena": "ShmArena",
    "repro.data.shm.ShmParamMirror": "ShmParamMirror",
}


@register
class LeaseBalanceRule:
    """Shm arenas/mirrors acquired by consumers are released on all paths."""

    rule_id = "LEASE-BALANCE"
    description = ("ShmArena/ShmParamMirror acquired outside repro.data.shm "
                   "must be closed on every path (finally/with) or stored "
                   "on an owner — a leaked arena pins /dev/shm segments")

    HOME_MODULE = "repro.data.shm"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project_call_graph(project)
        for info in graph.iter_functions():
            if not _in_repro(info.module) or info.module == self.HOME_MODULE:
                continue
            sites = _sites_by_node(info)
            if not any(site.dotted in _LEASE_CTORS for site in info.calls):
                continue

            def acquire_kind(call: ast.Call) -> str | None:
                site = sites.get(id(call))
                if site is not None and site.dotted in _LEASE_CTORS:
                    return _LEASE_CTORS[site.dotted]
                return None

            cfg = build_cfg(info.node)
            leaked, anonymous = find_leaks(cfg, acquire_kind)
            ctx: FileContext = info.ctx
            for res in leaked:
                node = next((s.node for s in info.calls
                             if s.node.lineno == res.line
                             and s.dotted in _LEASE_CTORS), info.node)
                yield ctx.finding(
                    self.rule_id, node,
                    f"{res.kind} bound to {res.var!r} is not released on "
                    f"every path out of {info.qname} — close() it in a "
                    "finally, use a with block, or store it on an owner")
            for call in anonymous:
                yield ctx.finding(
                    self.rule_id, call,
                    "anonymous ShmArena/ShmParamMirror acquisition — bind "
                    "it to a name (or use with) so it can be released")


# -- LOCK-DISCIPLINE ----------------------------------------------------------

@register
class LockDisciplineRule:
    """Locks via ``with`` only; nothing blocking inside a critical section."""

    rule_id = "LOCK-DISCIPLINE"
    description = ("locks are acquired via with (no bare .acquire()), and "
                   "no sleep/socket/file-IO/queue/pool-submit call may run "
                   "while a lock is held (directly or via the call graph)")

    EXEMPT_MODULES = ("repro.obs.lockwatch",)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project_call_graph(project)
        for info in graph.iter_functions():
            if (not _in_repro(info.module)
                    or info.module in self.EXEMPT_MODULES):
                continue
            cls = graph.classes.get(f"{info.module}.{info.cls}") \
                if info.cls else None
            ctx: FileContext = info.ctx
            yield from self._check_acquire_calls(ctx, info, cls)
            yield from self._check_critical_sections(ctx, info, cls, graph)

    def _check_acquire_calls(self, ctx, info, cls) -> Iterator[Finding]:
        for site in info.calls:
            func = site.node.func
            if (isinstance(func, ast.Attribute) and func.attr == "acquire"
                    and _is_lock_expr(func.value, cls)):
                yield ctx.finding(
                    self.rule_id, site.node,
                    "bare .acquire() — acquire locks with `with` so every "
                    "exit path releases (and the lock watchdog can pair "
                    "acquire/release)")

    def _check_critical_sections(self, ctx, info, cls,
                                 graph) -> Iterator[Finding]:
        sites = _sites_by_node(info)

        def walk(stmts, held: tuple[ast.AST, ...]) -> Iterator[Finding]:
            for stmt in stmts:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    lock_items = [item.context_expr for item in stmt.items
                                  if _is_lock_expr(item.context_expr, cls)]
                    yield from walk(stmt.body, held + tuple(lock_items))
                    continue
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if held:
                    yield from self._check_calls(ctx, stmt, held, sites,
                                                 graph)
                for body_attr in ("body", "orelse", "finalbody"):
                    yield from walk(getattr(stmt, body_attr, []) or [], held)
                for handler in getattr(stmt, "handlers", []) or []:
                    yield from walk(handler.body, held)

        yield from walk(info.node.body, ())

    def _check_calls(self, ctx, stmt, held, sites, graph) -> Iterator[Finding]:
        held_dumps = {ast.dump(expr) for expr in held}
        for call in _calls_in(stmt):
            if isinstance(call.func, ast.Attribute):
                # Waiting/notifying on the held condition object itself is
                # the condition-variable idiom, not a foreign blocking call.
                if ast.dump(call.func.value) in held_dumps:
                    continue
            site = sites.get(id(call))
            if site is None:
                site = CallSite(node=call, target=None, dotted=None)
            desc = _direct_blocking(site)
            if desc is not None:
                yield ctx.finding(
                    self.rule_id, call,
                    f"blocking call {desc} while holding a lock — move it "
                    "outside the critical section")
                continue
            if site.target is not None:
                chain = _blocking_path(graph, site.target)
                if chain is not None:
                    yield ctx.finding(
                        self.rule_id, call,
                        f"call under a held lock reaches blocking IO "
                        f"({chain}) — move it outside the critical section")


# -- LOCK-ORDER ---------------------------------------------------------------

@register
class LockOrderRule:
    """The static lock-acquisition graph must have no cycles."""

    rule_id = "LOCK-ORDER"
    description = ("lock-acquisition order must be globally acyclic: "
                   "holding A while (transitively) acquiring B and holding "
                   "B while acquiring A is a deadlock waiting for traffic")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project_call_graph(project)
        acq_closure: dict[str, frozenset[str]] = {}

        def direct_locks(info: FunctionInfo) -> list[tuple[str, ast.With]]:
            cls = graph.classes.get(f"{info.module}.{info.cls}") \
                if info.cls else None
            out = []
            for node in ast.walk(info.node):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if _is_lock_expr(item.context_expr, cls):
                            out.append((_lock_identity(item.context_expr,
                                                       info), node))
            return out

        def closure(qname: str, seen: frozenset[str] = frozenset()
                    ) -> frozenset[str]:
            if qname in acq_closure:
                return acq_closure[qname]
            if qname in seen:
                return frozenset()
            info = graph.function(qname)
            if info is None:
                return frozenset()
            acquired = {lock for lock, _ in direct_locks(info)}
            for site in info.calls:
                if site.target is not None:
                    acquired |= closure(site.target, seen | {qname})
            result = frozenset(acquired)
            acq_closure[qname] = result
            return result

        # Edge set: held lock -> acquired lock, with a witness call site.
        edges: dict[str, dict[str, tuple[FunctionInfo, ast.AST]]] = {}

        def add_edge(src: str, dst: str, info: FunctionInfo,
                     node: ast.AST) -> None:
            if src == dst:
                return      # RLock re-entry; not an ordering edge
            edges.setdefault(src, {}).setdefault(dst, (info, node))

        for info in graph.iter_functions():
            if not _in_repro(info.module):
                continue
            cls = graph.classes.get(f"{info.module}.{info.cls}") \
                if info.cls else None
            sites = _sites_by_node(info)

            def walk(stmts, held: tuple[str, ...]):
                for stmt in stmts:
                    if isinstance(stmt, (ast.With, ast.AsyncWith)):
                        new = []
                        for item in stmt.items:
                            if _is_lock_expr(item.context_expr, cls):
                                lock = _lock_identity(item.context_expr, info)
                                for h in held:
                                    add_edge(h, lock, info, stmt)
                                new.append(lock)
                        walk(stmt.body, held + tuple(new))
                        continue
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef, ast.ClassDef)):
                        continue
                    if held:
                        for call in _calls_in(stmt):
                            site = sites.get(id(call))
                            if site is None or site.target is None:
                                continue
                            for lock in sorted(closure(site.target)):
                                for h in held:
                                    add_edge(h, lock, info, call)
                    for body_attr in ("body", "orelse", "finalbody"):
                        walk(getattr(stmt, body_attr, []) or [], held)
                    for handler in getattr(stmt, "handlers", []) or []:
                        walk(handler.body, held)

            walk(info.node.body, ())

        yield from self._report_cycles(edges)

    def _report_cycles(self, edges) -> Iterator[Finding]:
        reported: set[frozenset[str]] = set()
        for start in sorted(edges):
            cycle = self._find_cycle(edges, start)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if key in reported or min(cycle) != start:
                continue
            reported.add(key)
            info, node = edges[cycle[0]][cycle[1] if len(cycle) > 1
                                         else cycle[0]]
            ctx: FileContext = info.ctx
            loop = " -> ".join([*cycle, cycle[0]])
            yield ctx.finding(
                self.rule_id, node,
                f"lock-order cycle: {loop} — two threads taking these locks "
                "in opposite order deadlock; pick one global order")

    @staticmethod
    def _find_cycle(edges, start) -> list[str] | None:
        """A simple cycle through ``start`` (sorted-neighbor DFS), or None."""
        path: list[str] = [start]
        on_path = {start}
        visited: set[str] = set()

        def dfs(node: str) -> list[str] | None:
            visited.add(node)
            for succ in sorted(edges.get(node, ())):
                if succ == start:
                    return list(path)
                if succ in on_path or succ in visited:
                    continue
                path.append(succ)
                on_path.add(succ)
                found = dfs(succ)
                if found is not None:
                    return found
                path.pop()
                on_path.discard(succ)
            return None

        return dfs(start)


# -- FORK-SAFETY --------------------------------------------------------------

_FORK_CTORS = frozenset({
    "repro.data.pipeline.WorkerPool",
    "multiprocessing.Process", "multiprocessing.get_context",
})
_THREADISH_FRAGMENTS = ("thread", "collector", "supervisor")


@register
class ForkSafetyRule:
    """Fork in sanctioned modules only; never after starting threads."""

    rule_id = "FORK-SAFETY"
    description = ("fork-based WorkerPool construction is confined to "
                   "sanctioned modules, import time must not start threads "
                   "or take locks, and no path may start a thread before "
                   "forking — forked children inherit poisoned locks")

    SANCTIONED = ("repro.data.pipeline", "repro.train.ddp",
                  "repro.serve.net", "repro.eval.evaluator")

    def _forks_directly(self, graph: CallGraph):
        def pred(info: FunctionInfo):
            for site in info.calls:
                if site.dotted in _FORK_CTORS:
                    return site.dotted
            return None
        return pred

    def _is_thread_start(self, call: ast.Call, cls: ClassInfo | None,
                         local_threads: set[str]) -> bool:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "start"):
            return False
        receiver = func.value
        name = _terminal_name(receiver)
        if name in local_threads:
            return True
        if (cls is not None and isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"):
            ctor = cls.attr_ctors.get(receiver.attr, "")
            if ctor.split(".")[-1] == "Thread":
                return True
        return name is not None and any(f in name.lower()
                                        for f in _THREADISH_FRAGMENTS)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project_call_graph(project)
        forks_pred = self._forks_directly(graph)
        yield from self._check_import_time(project)
        for info in graph.iter_functions():
            if not _in_repro(info.module):
                continue
            ctx: FileContext = info.ctx
            sites = _sites_by_node(info)
            sanctioned = any(info.module == m or info.module.startswith(m + ".")
                             for m in self.SANCTIONED)

            def fork_reason(call: ast.Call) -> str | None:
                site = sites.get(id(call))
                if site is None:
                    return None
                if site.dotted in _FORK_CTORS:
                    return site.dotted
                if site.target is not None:
                    path = graph.find_path(site.target, forks_pred)
                    if path is not None:
                        return " -> ".join(q for q, _ in path)
                return None

            # (a) containment: direct fork construction outside sanctioned
            # modules.
            if not sanctioned:
                for site in info.calls:
                    if site.dotted in _FORK_CTORS:
                        yield ctx.finding(
                            self.rule_id, site.node,
                            f"{site.dotted} constructed in {info.module} — "
                            "fork-based pools are confined to "
                            f"{', '.join(self.SANCTIONED)} (route through "
                            "parallel_map or an engine there)")

            # (b) ordering: a thread started on some path before a fork.
            cls = graph.classes.get(f"{info.module}.{info.cls}") \
                if info.cls else None
            local_threads = {
                stmt.targets[0].id
                for stmt in ast.walk(info.node)
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and (_terminal_name(stmt.value.func) == "Thread")}
            has_start = any(self._is_thread_start(c, cls, local_threads)
                            for c in _calls_in(info.node))
            if not has_start:
                continue
            may_fork = any(fork_reason(s.node) is not None
                           for s in info.calls)
            if not may_fork:
                continue

            cfg = build_cfg(info.node)

            def transfer(step, state: frozenset) -> frozenset:
                if isinstance(step, ast.AST):
                    for call in _calls_in_step(step):
                        if self._is_thread_start(call, cls, local_threads):
                            return state | {"thread-started"}
                return state

            for step, state in step_states(cfg, transfer):
                if "thread-started" not in state:
                    continue
                if not isinstance(step, ast.AST):
                    continue
                for call in _calls_in_step(step):
                    reason = fork_reason(call)
                    if reason is not None:
                        yield ctx.finding(
                            self.rule_id, call,
                            f"fork ({reason}) on a path where a thread was "
                            "already started — the forked child inherits "
                            "whatever locks that thread holds, frozen "
                            "forever; fork first, start threads after")

    def _check_import_time(self, project: ProjectContext
                           ) -> Iterator[Finding]:
        for ctx in project.files:
            if not _in_repro(ctx.module):
                continue
            for stmt in self._import_time_stmts(ctx.tree):
                for call in _calls_in_step(stmt):
                    func = call.func
                    if not isinstance(func, ast.Attribute):
                        continue
                    receiver = (_terminal_name(func.value) or "").lower()
                    if func.attr == "start" and any(
                            f in receiver for f in _THREADISH_FRAGMENTS):
                        yield ctx.finding(
                            self.rule_id, call,
                            "thread started at import time — importing this "
                            "module from a process that later forks "
                            "poisons every child")
                    elif (func.attr == "acquire"
                          and _lockish_name(_terminal_name(func.value))):
                        yield ctx.finding(
                            self.rule_id, call,
                            "lock acquired at import time — a fork while "
                            "any import holds it deadlocks the child")

    @staticmethod
    def _import_time_stmts(tree: ast.Module) -> Iterator[ast.stmt]:
        """Module-body statements that execute at import, including class
        bodies but excluding function bodies."""
        stack: list[ast.stmt] = list(tree.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield stmt
            for body_attr in ("body", "orelse", "finalbody"):
                stack.extend(getattr(stmt, body_attr, []) or [])
            for handler in getattr(stmt, "handlers", []) or []:
                stack.extend(handler.body)


def _calls_in_step(step: ast.AST) -> Iterator[ast.Call]:
    """Calls within one statement, not descending into nested defs; for
    compound statements only the header expressions execute as this step."""
    if isinstance(step, (ast.If, ast.While)):
        yield from _calls_in(step.test)
        return
    if isinstance(step, (ast.For, ast.AsyncFor)):
        yield from _calls_in(step.iter)
        return
    if isinstance(step, (ast.With, ast.AsyncWith, ast.Try)):
        return
    if isinstance(step, ast.Call):
        yield step
    yield from _calls_in(step)


# -- ASYNC-BLOCKING -----------------------------------------------------------

@register
class AsyncBlockingRule:
    """Non-awaited calls in ``async def`` must not reach blocking IO."""

    rule_id = "ASYNC-BLOCKING"
    description = ("a call inside async def that resolves (via the call "
                   "graph) to blocking IO stalls the whole event loop — "
                   "cross the boundary with run_in_executor")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project_call_graph(project)
        for info in graph.iter_functions():
            if not info.is_async or not _in_repro(info.module):
                continue
            ctx: FileContext = info.ctx
            sites = _sites_by_node(info)
            awaited = {id(node.value) for node in ast.walk(info.node)
                       if isinstance(node, ast.Await)
                       and isinstance(node.value, ast.Call)}
            for call in _calls_in(info.node):
                if id(call) in awaited:
                    continue
                func = call.func
                if (isinstance(func, ast.Attribute)
                        and func.attr == "run_in_executor"):
                    continue    # the sanctioned boundary crossing
                site = sites.get(id(call))
                if site is None:
                    site = CallSite(node=call, target=None, dotted=None)
                desc = _direct_blocking(site)
                if desc is not None:
                    yield ctx.finding(
                        self.rule_id, call,
                        f"blocking call {desc} inside async {info.name} — "
                        "it stalls the event loop; use run_in_executor")
                    continue
                if site.target is not None:
                    target_info = graph.function(site.target)
                    if target_info is not None and target_info.is_async:
                        continue    # a coroutine object; nothing ran yet
                    chain = _blocking_path(graph, site.target)
                    if chain is not None:
                        yield ctx.finding(
                            self.rule_id, call,
                            f"call inside async {info.name} reaches blocking "
                            f"IO ({chain}) — cross the executor boundary "
                            "with run_in_executor")
