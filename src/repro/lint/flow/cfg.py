"""Per-function control-flow graphs over the Python AST.

The flow rules (:mod:`repro.lint.flow.rules`) need to reason about *paths*
— "is this arena closed on every way out of the function?", "can a thread
start before this pool forks?" — which a statement-at-a-time AST walk
cannot answer.  :func:`build_cfg` lowers one ``FunctionDef`` /
``AsyncFunctionDef`` body into basic blocks of *steps* connected by
explicit edges, with the structured constructs desugared:

* ``if`` / ``while`` / ``for`` produce branch and back edges; loop bodies
  execute zero or more times.
* ``with`` produces :class:`WithEnter` / :class:`WithExit` marker steps.
  Because ``with`` guarantees its exit runs on *every* way out of the
  body, early exits (``return`` / ``break`` / ``continue`` / ``raise``)
  are routed through synthesized exit steps.
* ``try`` bodies are split one statement per block, each with an
  exceptional edge to the handler dispatch point, so a resource acquired
  mid-``try`` is correctly seen as held on the handler path.  ``finally``
  bodies are rebuilt on every path that crosses them (normal fall-through,
  each handler, early exits, and the unhandled re-raise path).
* ``return`` / ``raise`` edges lead to the single virtual :attr:`CFG.exit`
  block after draining the active cleanup stack.

Implicit exceptions (an arbitrary expression raising) are modeled only at
``try``-body statement granularity; outside a ``try`` the graph tracks
explicit control flow.  The analyses built on top
(:mod:`repro.lint.flow.lifecycle`) are therefore tuned to catch
missing-release-on-explicit-path and missing-``finally``-in-``try`` bugs
without drowning call sites in hypothetical-exception noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Block", "CFG", "WithEnter", "WithExit", "build_cfg"]


@dataclass(frozen=True)
class WithEnter:
    """Marker step: control entered ``with <context_expr>``."""

    node: ast.With | ast.AsyncWith
    item: ast.withitem

    @property
    def lineno(self) -> int:
        return getattr(self.item.context_expr, "lineno", self.node.lineno)


@dataclass(frozen=True)
class WithExit:
    """Marker step: the ``with <context_expr>`` context manager exited."""

    node: ast.With | ast.AsyncWith
    item: ast.withitem

    @property
    def lineno(self) -> int:
        return getattr(self.item.context_expr, "lineno", self.node.lineno)


# A step is an ast statement (simple statements, plus Return/Raise as block
# terminators), a bare expression (branch/loop conditions, iterables), or a
# with-lifecycle marker.
Step = object


@dataclass
class Block:
    """One basic block: a straight-line list of steps plus successor edges."""

    index: int
    steps: list = field(default_factory=list)
    succs: list["Block"] = field(default_factory=list)

    def link(self, other: "Block") -> None:
        if other not in self.succs:
            self.succs.append(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Block({self.index}, steps={len(self.steps)}, "
                f"succs={[b.index for b in self.succs]})")


@dataclass
class CFG:
    """A function's control-flow graph: ``entry`` … ``exit`` over blocks."""

    func: ast.FunctionDef | ast.AsyncFunctionDef
    blocks: list[Block]
    entry: Block
    exit: Block

    def preds(self) -> dict[int, list[Block]]:
        """Predecessor map (block index -> predecessor blocks)."""
        preds: dict[int, list[Block]] = {b.index: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.succs:
                preds[succ.index].append(block)
        return preds


class _Builder:
    """Recursive-descent lowering of a function body into a :class:`CFG`."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.func = func
        self.blocks: list[Block] = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        self.current: Block | None = self.entry
        # Stack frames crossed by early exits, innermost last:
        #   ("with", With-node, [withitem, ...])   -> synthesize WithExit steps
        #   ("finally", [stmt, ...])               -> rebuild the finally body
        #   ("loop", head_block, after_block)      -> break/continue targets
        #   ("except", dispatch_block)             -> where explicit raises go
        self.cleanup: list[tuple] = []

    def _new_block(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def _emit(self, step) -> None:
        if self.current is not None:
            self.current.steps.append(step)

    def _start_block(self) -> Block:
        """End the current block and chain a fresh one after it."""
        block = self._new_block()
        if self.current is not None:
            self.current.link(block)
        self.current = block
        return block

    # -- early-exit routing -------------------------------------------------

    def _drain_cleanups(self, frames: list[tuple], from_block: Block) -> Block:
        """Build the cleanup chain for an early exit; returns its last block.

        ``frames`` are the stack frames being exited, innermost first.
        With-frames synthesize :class:`WithExit` steps; finally-frames
        rebuild their statements (loop/except frames carry no cleanup).
        """
        tail = from_block
        for frame in frames:
            if frame[0] == "with":
                _, node, items = frame
                for item in reversed(items):
                    tail.steps.append(WithExit(node, item))
            elif frame[0] == "finally":
                _, body = frame
                saved_current, saved_cleanup = self.current, self.cleanup
                # The finally body runs outside the frames it guards.  When
                # the frame was already popped (normal try exit) the current
                # stack is already the outer one.
                if frame in saved_cleanup:
                    self.cleanup = saved_cleanup[:saved_cleanup.index(frame)]
                else:
                    self.cleanup = list(saved_cleanup)
                self.current = self._new_block()
                tail.link(self.current)
                self._build_body(body)
                tail = self.current if self.current is not None \
                    else self._new_block()
                self.current, self.cleanup = saved_current, saved_cleanup
        return tail

    def _jump(self, kind: str) -> None:
        """Route return/break/continue through the active cleanup stack."""
        if self.current is None:
            return
        frames: list[tuple] = []
        target: Block | None = None
        for frame in reversed(self.cleanup):
            if frame[0] == "loop" and kind in ("break", "continue"):
                target = frame[2] if kind == "break" else frame[1]
                break
            if frame[0] in ("with", "finally"):
                frames.append(frame)
        if target is None:
            target = self.exit  # return (or break/continue outside a loop)
        tail = self._drain_cleanups(frames, self.current)
        tail.link(target)
        self.current = None  # statements after a jump are unreachable

    def _raise_target(self) -> tuple[list[tuple], Block]:
        """Cleanup frames and destination for an explicit ``raise``."""
        frames: list[tuple] = []
        for frame in reversed(self.cleanup):
            if frame[0] == "except":
                return frames, frame[1]
            if frame[0] in ("with", "finally"):
                frames.append(frame)
        return frames, self.exit

    # -- statement lowering -------------------------------------------------

    def _build_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if self.current is None:
                break  # unreachable code after return/raise/break
            self._build_stmt(stmt)

    def _build_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Nested definitions do not execute inline; the def itself is a
            # plain binding step (decorators/defaults do evaluate here).
            self._emit(stmt)
        elif isinstance(stmt, ast.Return):
            self._emit(stmt)
            self._jump("return")
        elif isinstance(stmt, ast.Break):
            self._jump("break")
        elif isinstance(stmt, ast.Continue):
            self._jump("continue")
        elif isinstance(stmt, ast.Raise):
            self._emit(stmt)
            frames, target = self._raise_target()
            tail = self._drain_cleanups(frames, self.current)
            tail.link(target)
            self.current = None
        elif isinstance(stmt, ast.If):
            self._build_if(stmt)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._build_loop(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._build_with(stmt)
        elif isinstance(stmt, ast.Try):
            self._build_try(stmt)
        else:
            self._emit(stmt)

    def _build_if(self, stmt: ast.If) -> None:
        self._emit(stmt.test)
        fork = self.current
        join = self._new_block()
        self.current = self._new_block()
        fork.link(self.current)
        self._build_body(stmt.body)
        if self.current is not None:
            self.current.link(join)
        if stmt.orelse:
            self.current = self._new_block()
            fork.link(self.current)
            self._build_body(stmt.orelse)
            if self.current is not None:
                self.current.link(join)
        else:
            fork.link(join)
        self.current = join

    def _build_loop(self, stmt) -> None:
        head = self._start_block()
        self._emit(stmt.test if isinstance(stmt, ast.While) else stmt.iter)
        after = self._new_block()
        body = self._new_block()
        head.link(body)
        self.cleanup.append(("loop", head, after))
        self.current = body
        self._build_body(stmt.body)
        if self.current is not None:
            self.current.link(head)  # back edge
        self.cleanup.pop()
        if stmt.orelse:
            self.current = self._new_block()
            head.link(self.current)
            self._build_body(stmt.orelse)
            if self.current is not None:
                self.current.link(after)
        else:
            head.link(after)
        self.current = after

    def _build_with(self, stmt) -> None:
        for item in stmt.items:
            self._emit(WithEnter(stmt, item))
        self.cleanup.append(("with", stmt, list(stmt.items)))
        self._build_body(stmt.body)
        self.cleanup.pop()
        if self.current is not None:
            for item in reversed(stmt.items):
                self._emit(WithExit(stmt, item))

    def _build_try(self, stmt: ast.Try) -> None:
        handlers = stmt.handlers
        finally_body = stmt.finalbody
        after = self._new_block()
        dispatch = self._new_block() if handlers else None

        if finally_body:
            self.cleanup.append(("finally", finally_body))
            finally_frame = self.cleanup[-1]
        if dispatch is not None:
            self.cleanup.append(("except", dispatch))

        # Try body: one statement per block, each with an exceptional edge
        # to the dispatch point so mid-body state reaches the handlers.
        body_entry = self._start_block()
        if dispatch is not None:
            body_entry.link(dispatch)
        for sub in stmt.body:
            if self.current is None:
                break
            self._build_stmt(sub)
            if self.current is not None:
                self._start_block()
                if dispatch is not None:
                    self.current.link(dispatch)
        if dispatch is not None:
            self.cleanup.pop()  # "except": handlers do not catch themselves

        # else-clause runs only after a clean body.
        if stmt.orelse and self.current is not None:
            self._build_body(stmt.orelse)

        exits: list[Block] = []
        if self.current is not None:
            exits.append(self.current)

        bare_except = False
        for handler in handlers:
            if handler.type is None:
                bare_except = True
            self.current = self._new_block()
            dispatch.link(self.current)
            self._build_body(handler.body)
            if self.current is not None:
                exits.append(self.current)

        if finally_body:
            self.cleanup.pop()  # "finally"
            # Normal paths: body/else and handler fall-throughs cross the
            # finally once, then reach `after`.
            for block in exits:
                tail = self._drain_cleanups([finally_frame], block)
                tail.link(after)
            # Unhandled-exception path: finally runs, then the exception
            # propagates (to an outer handler or out of the function).
            if dispatch is not None and not bare_except:
                frames, target = self._raise_target()
                tail = self._drain_cleanups([finally_frame, *frames], dispatch)
                tail.link(target)
            elif dispatch is None:
                # try/finally with no handlers: exceptional entry is the
                # body blocks themselves; model the propagate path from the
                # try entry through the finally.
                frames, target = self._raise_target()
                tail = self._drain_cleanups([finally_frame, *frames],
                                            body_entry)
                tail.link(target)
        else:
            for block in exits:
                block.link(after)
            if dispatch is not None and not bare_except:
                frames, target = self._raise_target()
                tail = self._drain_cleanups(frames, dispatch)
                tail.link(target)

        self.current = after

    def build(self) -> CFG:
        self._build_body(self.func.body)
        if self.current is not None:
            self.current.link(self.exit)
        return CFG(func=self.func, blocks=self.blocks,
                   entry=self.entry, exit=self.exit)


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Lower one function's body into a control-flow graph."""
    return _Builder(func).build()
