"""Resource-lifecycle abstract interpretation over the CFG.

A forward *may* analysis: the abstract state at a program point is the set
of facts that hold on **some** path reaching it.  Two clients:

* :func:`find_leaks` — track acquire/release pairs.  A resource acquired
  by ``v = Ctor(...)`` is *held* until the path releases it
  (``v.close()``, ``with v`` / ``with closing(v)``) or the function
  transfers ownership (``self.x = v``, ``return v``, ``yield v``,
  ``container.append(v)``, ``v2 = v`` aliasing).  Any path that reaches
  the function exit still holding the resource is a leak.  Passing ``v``
  as a plain call argument is a *borrow*, not a transfer — callees do not
  inherit the close obligation.
* :func:`step_states` — the raw fixpoint, exposed so other rules (e.g.
  FORK-SAFETY's "thread started before fork" check) can ask for the state
  in force at each individual step.

States are frozensets, transfer functions are pure, and the fixpoint is a
standard worklist over block in-states; CFGs here are tiny (one function),
so no widening is needed beyond set union.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator

from .cfg import CFG, WithEnter, WithExit

__all__ = ["Resource", "find_leaks", "run_forward", "step_states"]


@dataclass(frozen=True)
class Resource:
    """One tracked acquisition: the variable it bound and where."""

    var: str
    line: int
    kind: str


# Methods that transfer ownership of an argument into a container/registry.
_ADOPTING_METHODS = frozenset({"append", "add", "insert", "put", "register",
                               "setdefault", "appendleft"})


def run_forward(cfg: CFG,
                transfer: Callable[[object, frozenset], frozenset],
                init: frozenset = frozenset()) -> dict[int, frozenset]:
    """Fixpoint of a forward may-analysis; returns block in-states."""
    in_states: dict[int, frozenset] = {cfg.entry.index: init}
    work = [cfg.entry]
    while work:
        block = work.pop()
        state = in_states.get(block.index, frozenset())
        for step in block.steps:
            state = transfer(step, state)
        for succ in block.succs:
            merged = in_states.get(succ.index, frozenset()) | state
            if merged != in_states.get(succ.index):
                in_states[succ.index] = merged
                work.append(succ)
    return in_states


def step_states(cfg: CFG,
                transfer: Callable[[object, frozenset], frozenset],
                init: frozenset = frozenset()
                ) -> Iterator[tuple[object, frozenset]]:
    """Yield ``(step, state_before_step)`` for every step, post-fixpoint."""
    in_states = run_forward(cfg, transfer, init)
    for block in cfg.blocks:
        state = in_states.get(block.index)
        if state is None:       # unreachable block
            continue
        for step in block.steps:
            yield step, state
            state = transfer(step, state)


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _released_vars(step, held_vars: set[str]) -> set[str]:
    """Variables released by this step (``v.close()`` or ``with v``)."""
    released: set[str] = set()
    if isinstance(step, WithEnter):
        expr = step.item.context_expr
        if isinstance(expr, ast.Name) and expr.id in held_vars:
            released.add(expr.id)
        elif (isinstance(expr, ast.Call) and len(expr.args) == 1
              and isinstance(expr.args[0], ast.Name)
              and expr.args[0].id in held_vars):
            released.add(expr.args[0].id)   # with closing(v): ...
        return released
    if isinstance(step, ast.AST):
        for node in ast.walk(step):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("close", "terminate", "release")
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in held_vars):
                released.add(node.func.value.id)
    return released


def _escaped_vars(step, held_vars: set[str]) -> set[str]:
    """Variables whose ownership this step transfers away."""
    escaped: set[str] = set()
    if not isinstance(step, ast.AST):
        return escaped
    if isinstance(step, (ast.Return, ast.Expr)) and isinstance(
            getattr(step, "value", None), ast.AST):
        value = step.value
        if isinstance(step, ast.Return):
            escaped |= _names_in(value) & held_vars
        elif isinstance(value, (ast.Yield, ast.YieldFrom)) and value.value:
            escaped |= _names_in(value.value) & held_vars
    if isinstance(step, ast.Assign) and not isinstance(step.value, ast.Call):
        # `x = v` / `self.x = v` / `x = (v, ...)` alias or store the
        # resource; `x = Ctor(..., v, ...)` arguments stay borrows.
        escaped |= _names_in(step.value) & held_vars
    for node in ast.walk(step):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ADOPTING_METHODS):
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id in held_vars:
                    escaped.add(arg.id)
    return escaped


def find_leaks(cfg: CFG,
               acquire_kind: Callable[[ast.Call], str | None]
               ) -> tuple[list[Resource], list[ast.Call]]:
    """Resources some explicit path leaks, plus unbindable acquisitions.

    ``acquire_kind`` classifies a call expression: return the resource kind
    (e.g. ``"ShmArena"``) when the call acquires something that must be
    released, else None.

    Returns ``(leaked, anonymous)``: resources bound to a local name that
    some path to the function exit still holds, and acquisition calls in
    positions where no name ever binds them (nested in an expression), so
    no release is possible at all.
    """
    anonymous: list[ast.Call] = []
    tracked: dict[tuple[str, int], Resource] = {}

    def acquires_in(step) -> list[tuple[ast.Call, str]]:
        if not isinstance(step, ast.AST):
            return []
        return [(node, kind) for node in ast.walk(step)
                if isinstance(node, ast.Call)
                for kind in (acquire_kind(node),) if kind is not None]

    def transfer(step, state: frozenset) -> frozenset:
        held = set(state)
        acquires = acquires_in(step)
        if acquires:
            if (isinstance(step, ast.Assign) and len(step.targets) == 1
                    and isinstance(step.targets[0], ast.Name)
                    and isinstance(step.value, ast.Call)
                    and acquires[0][0] is step.value and len(acquires) == 1):
                call, kind = acquires[0]
                res = Resource(var=step.targets[0].id, line=call.lineno,
                               kind=kind)
                tracked[(res.var, res.line)] = res
                held.add(res)
            elif (isinstance(step, ast.Assign)
                  and any(isinstance(t, (ast.Attribute, ast.Subscript))
                          for t in step.targets)):
                pass    # self.x = Ctor(...): ownership lives on the object
            elif isinstance(step, ast.Return) or (
                    isinstance(step, ast.Expr)
                    and isinstance(step.value, (ast.Yield, ast.YieldFrom))):
                pass    # return Ctor(...): ownership transfers to the caller
            else:
                for call, _ in acquires:
                    if call not in anonymous:
                        anonymous.append(call)
        held_vars = {r.var for r in held}
        if held_vars:
            for var in _released_vars(step, held_vars):
                held = {r for r in held if r.var != var}
                held_vars.discard(var)
        if held_vars:
            for var in _escaped_vars(step, held_vars):
                held = {r for r in held if r.var != var}
        return frozenset(held)

    in_states = run_forward(cfg, transfer)
    at_exit = in_states.get(cfg.exit.index, frozenset())
    leaked = sorted({r for r in at_exit}, key=lambda r: (r.line, r.var))
    return leaked, anonymous
