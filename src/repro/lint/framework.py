"""AST lint framework: rules, registry, suppression, and the lint engine.

The framework is deliberately small and codebase-specific — it is not a
pyflakes clone.  A :class:`Rule` inspects one parsed file at a time through a
:class:`FileContext` and yields :class:`Finding` objects.  The engine layers
three mechanisms on top so intentional exceptions stay visible and auditable:

* **Inline suppression** — a ``# repro: noqa[RULE-ID]`` comment on the
  finding's first line silences that rule there (``# repro: noqa`` silences
  every rule on the line).  Use it for one-off pass-through code.
* **Baseline** — a committed JSON file (:mod:`repro.lint.baseline`) listing
  known, intentional violations with a human-readable ``reason``.  Findings
  matching a baseline entry are reported separately and do not fail the run;
  *new* findings do.
* **Registry** — rules self-register via the :func:`register` decorator so
  the CLI, the test suite, and the docs all enumerate the same catalog.

Module identity (``repro.nn.layers`` …) is derived from the filesystem by
walking up while ``__init__.py`` files exist, so rules can scope themselves
to packages without caring where the tree is checked out.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Protocol, Sequence

__all__ = [
    "Finding",
    "FileContext",
    "ProjectContext",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "rule_ids",
    "is_project_rule",
    "LintResult",
    "lint_paths",
    "module_name_for",
    "suppressions_for",
]

# ``# repro: noqa`` or ``# repro: noqa[RULE-A, RULE-B]`` (case-insensitive ids).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_\-, ]+)\])?")

# Sentinel stored in the suppression map for a bare ``# repro: noqa``.
_ALL_RULES = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``module`` and ``code`` (the stripped source line) — not the absolute
    path or line number — identify the finding for baseline matching, so a
    baseline survives checkouts at different paths and unrelated edits that
    shift line numbers.
    """

    rule: str
    path: str
    module: str
    line: int
    col: int
    message: str
    code: str

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: ``(module, rule, stripped source line)``."""
        return (self.module, self.rule, self.code)

    def render(self) -> str:
        """One-line human-readable form (``path:line:col RULE message``)."""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"


class FileContext:
    """Everything a rule may inspect about one file: path, source, AST."""

    def __init__(self, path: Path, source: str, tree: ast.AST,
                 module: str, display_path: str):
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module
        self.display_path = display_path
        self.lines = source.splitlines()

    def source_line(self, lineno: int) -> str:
        """The stripped source text of 1-based line ``lineno``."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule, path=self.display_path, module=self.module,
                       line=lineno, col=col, message=message,
                       code=self.source_line(lineno))


class ProjectContext:
    """Every linted file at once, for project-scoped (flow) rules.

    ``files`` are the successfully parsed :class:`FileContext` objects in
    deterministic (sorted-path) order.  ``cache`` is a scratch dict shared
    by all project rules of one run, so expensive whole-project analyses
    (the call graph in :mod:`repro.lint.flow.callgraph`) are built once
    and reused across rules.
    """

    def __init__(self, files: Sequence[FileContext]):
        self.files = tuple(files)
        self.cache: dict = {}

    def by_module(self) -> dict[str, FileContext]:
        return {ctx.module: ctx for ctx in self.files}


class Rule(Protocol):
    """The rule protocol: an id, a one-line description, and a checker."""

    rule_id: str
    description: str

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        ...  # pragma: no cover - protocol stub


def is_project_rule(rule) -> bool:
    """True for rules that analyze the whole project at once.

    A project rule implements ``check_project(project) -> Iterator[Finding]``
    instead of (or in addition to) the per-file ``check``; the engine runs
    it once over a :class:`ProjectContext` after every file is parsed.
    """
    return callable(getattr(rule, "check_project", None))


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls):
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = rule_cls()
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in registration order."""
    return tuple(_REGISTRY.values())


def rule_ids() -> tuple[str, ...]:
    """The registered rule ids, in registration order."""
    return tuple(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id (raises ``KeyError`` on unknown ids)."""
    return _REGISTRY[rule_id]


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the package layout on disk.

    Walks upward from ``path`` while ``__init__.py`` files mark package
    directories; a file outside any package is named after its stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        if parent.parent == parent:  # filesystem root
            break
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def suppressions_for(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to suppressed rule ids.

    A bare ``# repro: noqa`` stores the ``"*"`` wildcard; rule ids are
    normalized to upper case.
    """
    suppressed: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if not match:
                continue
            ids = match.group(1)
            entry = suppressed.setdefault(token.start[0], set())
            if ids is None:
                entry.add(_ALL_RULES)
            else:
                entry.update(part.strip().upper()
                             for part in ids.split(",") if part.strip())
    except tokenize.TokenError:  # pragma: no cover - unterminated source
        pass
    return suppressed


def _is_suppressed(finding: Finding, suppressed: dict[int, set[str]]) -> bool:
    entry = suppressed.get(finding.line)
    if not entry:
        return False
    return _ALL_RULES in entry or finding.rule in entry


@dataclass
class LintResult:
    """Outcome of one lint run.

    ``findings`` are the *new* violations (they fail the run);
    ``baselined`` matched a committed baseline entry; ``suppressed_count``
    counts inline-noqa'd findings; ``unused_baseline`` lists baseline keys
    that matched nothing (stale entries worth pruning); ``errors`` are files
    that could not be parsed.
    """

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    unused_baseline: list[tuple[str, str, str]] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the run produced no new findings and no parse errors."""
        return not self.findings and not self.errors

    def all_findings(self) -> list[Finding]:
        """New + baselined findings together (used by ``--write-baseline``)."""
        return sorted(self.findings + self.baselined,
                      key=lambda f: (f.module, f.line, f.rule))


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _parse_file(path: Path) -> tuple[FileContext | None, str | None]:
    """Read and parse one file into a :class:`FileContext` (or an error)."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError) as error:
        return None, f"{path}: {error}"
    return FileContext(path=path, source=source, tree=tree,
                       module=module_name_for(path),
                       display_path=str(path)), None


def _lint_worker(rule_ids_selected: tuple[str, ...]):
    """Worker factory for ``--jobs``: parse + run file rules on one path.

    Returns a picklable payload per file — the parse error or the parsed
    tree (AST nodes pickle) plus that file's findings — so the parent can
    rebuild :class:`FileContext` objects for the project rules without
    re-parsing, and merge findings in input order (``parallel_map`` is
    order-stable, keeping output identical to the serial path).
    """
    selected = [_REGISTRY[rule_id] for rule_id in rule_ids_selected]

    def analyze(path_str: str):
        ctx, error = _parse_file(Path(path_str))
        if error is not None:
            return {"error": error}
        findings = [finding for rule in selected
                    for finding in rule.check(ctx)]
        return {"error": None, "source": ctx.source, "tree": ctx.tree,
                "module": ctx.module, "findings": findings}

    return analyze


def lint_paths(paths: Sequence[str | Path],
               rules: Sequence[Rule] | None = None,
               baseline=None, jobs: int = 1) -> LintResult:
    """Lint files/directories and classify findings against ``baseline``.

    Args:
        paths: files or directories (directories are searched recursively
            for ``*.py``).
        rules: rules to run; defaults to the full registry.
        baseline: a :class:`repro.lint.baseline.Baseline` or None.
        jobs: with ``jobs > 1``, fan per-file parsing and file-scoped rules
            out over a :func:`repro.data.pipeline.parallel_map` worker pool
            (project rules still run once, in the parent, over the full
            tree).  Output ordering and exit semantics are identical to
            the serial path; without fork support this falls back to
            serial.
    """
    active = tuple(rules) if rules is not None else all_rules()
    file_rules = tuple(r for r in active if not is_project_rule(r))
    project_rules = tuple(r for r in active if is_project_rule(r))
    result = LintResult()
    matcher = baseline.matcher() if baseline is not None else None

    def classify(finding: Finding, suppressed: dict[int, set[str]]) -> None:
        if _is_suppressed(finding, suppressed):
            result.suppressed_count += 1
        elif matcher is not None and matcher.consume(finding):
            result.baselined.append(finding)
        else:
            result.findings.append(finding)

    files = list(_iter_python_files([Path(p) for p in paths]))
    contexts: list[FileContext] = []
    suppressions: dict[str, dict[int, set[str]]] = {}

    if jobs > 1:
        from repro.data.pipeline import fork_available, parallel_map
        if not fork_available():  # pragma: no cover - platform dependent
            jobs = 1
    if jobs > 1 and files:
        reports = parallel_map(
            _lint_worker, (tuple(r.rule_id for r in file_rules),),
            [str(p) for p in files], num_workers=min(jobs, len(files)),
            process_role="lint")
        for path, report in zip(files, reports):
            if report["error"] is not None:
                result.errors.append(report["error"])
                continue
            ctx = FileContext(path=path, source=report["source"],
                              tree=report["tree"], module=report["module"],
                              display_path=str(path))
            contexts.append(ctx)
            suppressed = suppressions_for(ctx.source)
            suppressions[ctx.display_path] = suppressed
            for finding in report["findings"]:
                classify(finding, suppressed)
    else:
        for path in files:
            ctx, error = _parse_file(path)
            if error is not None:
                result.errors.append(error)
                continue
            contexts.append(ctx)
            suppressed = suppressions_for(ctx.source)
            suppressions[ctx.display_path] = suppressed
            for rule in file_rules:
                for finding in rule.check(ctx):
                    classify(finding, suppressed)

    if project_rules and contexts:
        project = ProjectContext(contexts)
        for rule in project_rules:
            for finding in rule.check_project(project):
                classify(finding, suppressions.get(finding.path, {}))

    if matcher is not None:
        result.unused_baseline = matcher.unused()
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.baselined.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
