"""``python -m repro lint`` — run the rule catalog and gate on new findings.

Exit codes: 0 clean (or all findings baselined/suppressed), 1 new findings
or parse errors, 2 usage error.  See :mod:`repro.lint.framework` for the
suppression/baseline semantics and ``docs/STATIC_ANALYSIS.md`` for the
workflow.
"""

from __future__ import annotations

import sys
from pathlib import Path

from .baseline import Baseline, find_baseline
from .framework import all_rules, get_rule, lint_paths, rule_ids
from .reporters import render_json, render_text

__all__ = ["run_lint", "default_lint_root"]


def default_lint_root() -> Path:
    """The installed ``repro`` package directory (the default lint target)."""
    import repro
    return Path(repro.__file__).resolve().parent


def _select_rules(selector: str | None):
    if not selector:
        return None
    selected = []
    for rule_id in selector.split(","):
        rule_id = rule_id.strip().upper()
        if not rule_id:
            continue
        try:
            selected.append(get_rule(rule_id))
        except KeyError:
            raise ValueError(
                f"unknown rule {rule_id!r}; choose from {', '.join(rule_ids())}")
    if not selected:
        raise ValueError("no rules selected")
    return selected


def run_lint(args) -> int:
    """Execute the lint subcommand from parsed argparse arguments."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id:20s} {rule.description}")
        return 0
    paths = [Path(p) for p in args.paths] or [default_lint_root()]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        rules = _select_rules(args.select)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    baseline = None
    baseline_path: Path | None = None
    if not args.no_baseline:
        baseline_path = (Path(args.baseline) if args.baseline
                         else find_baseline(paths[0]))
        if baseline_path is not None and baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except ValueError as error:
                print(str(error), file=sys.stderr)
                return 2
        elif args.baseline:
            # An explicitly-named baseline that does not exist yet is only
            # meaningful together with --write-baseline.
            if not args.write_baseline:
                print(f"no such baseline: {baseline_path}", file=sys.stderr)
                return 2

    jobs = getattr(args, "jobs", 1)
    if jobs < 1:
        print(f"--jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    result = lint_paths(paths, rules=rules, baseline=baseline, jobs=jobs)

    if args.write_baseline:
        target = baseline_path or (paths[0].resolve() / "lint-baseline.json")
        written = Baseline.from_findings(result.all_findings(),
                                         previous=baseline).save(target)
        print(f"baseline with {len(result.all_findings())} entr(ies) "
              f"written to {written}")
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1
