"""Lint output renderers: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from .framework import LintResult

__all__ = ["render_text", "render_json"]


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Compiler-style report: one ``path:line:col RULE message`` per finding.

    With ``verbose`` the offending source line is shown under each finding
    and baselined findings are listed too (they never fail the run).
    """
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
        if verbose and finding.code:
            lines.append(f"    {finding.code}")
    if verbose:
        for finding in result.baselined:
            lines.append(f"{finding.render()} [baselined]")
    for error in result.errors:
        lines.append(f"error: {error}")
    for module, rule, code in result.unused_baseline:
        lines.append(f"warning: stale baseline entry {rule} in {module}: {code!r}")
    summary = (f"{len(result.findings)} finding(s), "
               f"{len(result.baselined)} baselined, "
               f"{result.suppressed_count} suppressed")
    if result.errors:
        summary += f", {len(result.errors)} error(s)"
    lines.append(summary if lines else f"clean ({summary})")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Full result as a JSON document (stable key order)."""

    def encode(finding):
        return {"rule": finding.rule, "path": finding.path,
                "module": finding.module, "line": finding.line,
                "col": finding.col, "message": finding.message,
                "code": finding.code}

    payload = {
        "ok": result.ok,
        "findings": [encode(f) for f in result.findings],
        "baselined": [encode(f) for f in result.baselined],
        "suppressed": result.suppressed_count,
        "unused_baseline": [
            {"module": module, "rule": rule, "code": code}
            for module, rule, code in result.unused_baseline],
        "errors": list(result.errors),
    }
    return json.dumps(payload, indent=2)
