"""Committed lint baseline: known-intentional violations with reasons.

The baseline is a JSON file (``lint-baseline.json`` at the repository root)
whose entries identify findings by ``(module, rule, stripped source line)``
rather than by path + line number, so the file survives checkouts at
different locations and unrelated edits that shift lines.  Every entry
carries a ``reason`` explaining *why* the violation is intentional — the
baseline doubles as documentation of the exceptions.

Workflow::

    python -m repro lint src/repro                  # gate: new findings fail
    python -m repro lint src/repro --write-baseline # accept current findings

``--write-baseline`` preserves the reasons of entries that still match, so
regenerating never loses the documentation; fill in the reason of any new
entry by hand before committing.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .framework import Finding

__all__ = ["Baseline", "BaselineMatcher", "find_baseline"]

BASELINE_FILENAME = "lint-baseline.json"
_FORMAT_VERSION = 1


def find_baseline(start: Path) -> Path | None:
    """Search ``start`` and its ancestors for ``lint-baseline.json``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in [current, *current.parents]:
        candidate = directory / BASELINE_FILENAME
        if candidate.is_file():
            return candidate
    return None


class BaselineMatcher:
    """Multiset matcher consuming baseline slots as findings arrive.

    Two identical violations on one line of code in two places produce two
    entries; each finding consumes one slot so a third occurrence is *new*.
    """

    def __init__(self, counts: Counter):
        self._remaining = Counter(counts)

    def consume(self, finding: Finding) -> bool:
        """True (and consume a slot) if the finding matches the baseline."""
        key = finding.key()
        if self._remaining.get(key, 0) > 0:
            self._remaining[key] -= 1
            return True
        return False

    def unused(self) -> list[tuple[str, str, str]]:
        """Baseline keys with unconsumed slots (stale entries)."""
        return sorted(key for key, count in self._remaining.items()
                      if count > 0)


class Baseline:
    """In-memory view of the baseline file."""

    def __init__(self, entries: list[dict] | None = None,
                 path: Path | None = None):
        self.entries = entries or []
        self.path = path

    @staticmethod
    def load(path: str | Path) -> "Baseline":
        """Read a baseline file (raises ``ValueError`` on a bad format)."""
        path = Path(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"{path}: not a lint baseline file")
        entries = []
        for entry in payload["entries"]:
            missing = {"module", "rule", "code"} - set(entry)
            if missing:
                raise ValueError(f"{path}: baseline entry missing {sorted(missing)}")
            entries.append({"module": entry["module"], "rule": entry["rule"],
                            "code": entry["code"],
                            "reason": entry.get("reason", "")})
        return Baseline(entries, path=path)

    def matcher(self) -> BaselineMatcher:
        """A fresh matcher over this baseline's entries."""
        return BaselineMatcher(Counter(
            (e["module"], e["rule"], e["code"]) for e in self.entries))

    def reasons(self) -> dict[tuple[str, str, str], str]:
        """Map entry keys to their documented reasons (first wins)."""
        reasons: dict[tuple[str, str, str], str] = {}
        for entry in self.entries:
            key = (entry["module"], entry["rule"], entry["code"])
            reasons.setdefault(key, entry["reason"])
        return reasons

    @staticmethod
    def from_findings(findings: list[Finding],
                      previous: "Baseline | None" = None) -> "Baseline":
        """Build a baseline accepting ``findings``, keeping known reasons."""
        known = previous.reasons() if previous is not None else {}
        entries = [{"module": f.module, "rule": f.rule, "code": f.code,
                    "reason": known.get(f.key(), "")}
                   for f in sorted(findings, key=lambda f: (f.module, f.line,
                                                            f.rule))]
        return Baseline(entries)

    def save(self, path: str | Path) -> Path:
        """Write the baseline as stable, diff-friendly JSON."""
        path = Path(path)
        payload = {"version": _FORMAT_VERSION, "entries": self.entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        self.path = path
        return path
