"""Scenario: peeking inside the multi-interest extractor.

Trains a small MISSL, then inspects what the K interest prototypes attend
to: for a handful of users, which items dominate each interest slot, whether
the slots align with the generator's planted interest clusters, and how the
disentanglement penalty keeps the slots apart.

    python examples/interest_inspection.py
"""

import numpy as np

from repro.data import collate
from repro.experiments import ExperimentContext, build_model
from repro.nn.tensor import no_grad
from repro.train import TrainConfig, Trainer
from repro.utils import format_table


def main() -> None:
    context = ExperimentContext.build("taobao", scale=0.3, seed=2)
    dataset = context.dataset
    clusters = dataset.item_clusters  # planted ground truth (synthetic only)

    model = build_model("MISSL", context, dim=32, seed=0)
    print("training MISSL ...")
    Trainer(model, context.split, TrainConfig(epochs=10, patience=3)).fit()
    model.eval()

    examples = context.split.test[:6]
    batch = collate(examples, dataset.schema)
    with no_grad():
        table = model.item_representations()
        # Attention of the fused timeline over interest slots.
        merged_items, merged_behaviors, merged_mask = model._clip(
            batch.merged_items, batch.merged_behaviors, batch.merged_mask)
        behaviors = np.where(merged_mask, merged_behaviors, 0)
        states = model.seq_embedding(table, merged_items, behaviors)
        encoded = model.fused_encoder(states, merged_mask)
        attention = model.interest_extractor.attention_weights(encoded, merged_mask)
        users = model.user_representation(batch).numpy()

    k = attention.shape[-1]
    rows = []
    for i, example in enumerate(examples):
        items = merged_items[i]
        valid = merged_mask[i]
        for slot in range(k):
            weights = attention[i, :, slot]
            top = np.argsort(-weights * valid)[:3]
            top_items = [int(items[t]) for t in top if valid[t]]
            top_clusters = sorted({int(clusters[item - 1]) for item in top_items})
            rows.append([f"user {example.user}", f"slot {slot}",
                         str(top_items), str(top_clusters)])
    print()
    print(format_table(["user", "interest", "top attended items", "their clusters"],
                       rows[:16]))

    # How separated are the learned interest prototypes, and how cleanly do
    # the slots specialize to the generator's planted clusters?
    from repro.analysis import cluster_purity, prototype_separation
    proto_cos = prototype_separation(model)
    purity = cluster_purity(attention, merged_items, merged_mask, clusters)
    print(f"\nmean |cosine| between interest prototypes: {proto_cos:.3f}")
    print(f"cluster purity of interest attention: {purity:.3f} "
          f"(1.0 = each slot attends to one planted cluster)")
    print("(the disentanglement penalty drives the prototype cosine down; re-run "
          "with lambda_disent=0 and it rises — see "
          "benchmarks/bench_f6_interest_space.py)")


if __name__ == "__main__":
    main()
