"""Scenario: tuning MISSL with the built-in grid search.

Sweeps the number of interests and the SSL weight, selecting by validation
NDCG@10 (never by test), then reports the winner's test metrics — the
workflow behind the paper's hyper-parameter tables.

    python examples/hyperparameter_search.py
"""

from repro.core import MISSLConfig
from repro.experiments import ExperimentContext, grid_search


def main() -> None:
    context = ExperimentContext.build("taobao", scale=0.3, seed=4)
    print(f"corpus: {context.dataset.num_users} users, "
          f"{context.dataset.num_items} items\n")

    base = MISSLConfig(dim=32)
    grid = {
        "num_interests": [2, 4],
        "lambda_ssl": [0.0, 0.1],
    }
    print(f"searching {2 * 2} configurations "
          f"(axes: {list(grid)}) ...\n")
    result = grid_search(context, grid, base=base, epochs=8, seed=0)

    print(result.summary())
    print(f"\nbest config: num_interests={result.best_config.num_interests}, "
          f"lambda_ssl={result.best_config.lambda_ssl}")
    print(f"test metrics of the winner: {result.test_report}")


if __name__ == "__main__":
    main()
