"""Scenario: why multi-behavior signals matter for cold-start users.

The motivating story of the multi-behavior literature: users with almost no
purchase history still click and browse.  This script groups test users by
target-behavior history length and shows how MISSL's advantage over a
single-behavior model concentrates on the sparsest group.

    python examples/cold_start_analysis.py
"""

import numpy as np

from repro.eval import MetricReport, rank_all
from repro.experiments import ExperimentContext, build_model
from repro.train import TrainConfig, Trainer
from repro.utils import format_table


def main() -> None:
    context = ExperimentContext.build("taobao", scale=0.4, seed=1)
    dataset = context.dataset
    lengths = dataset.target_lengths()
    test_lengths = np.array([lengths[e.user] for e in context.split.test])
    groups = {
        "cold  (<=4 buys)": test_lengths <= 4,
        "warm  (5-6 buys)": (test_lengths > 4) & (test_lengths <= 6),
        "hot   (>6 buys)": test_lengths > 6,
    }
    print("test users per group:",
          {name: int(mask.sum()) for name, mask in groups.items()})

    results = {}
    for name in ("SASRec", "MISSL"):
        print(f"training {name} ...")
        model = build_model(name, context, dim=32, seed=1)
        Trainer(model, context.split, TrainConfig(epochs=12, patience=3)).fit()
        ranks = rank_all(model, context.split.test, context.test_candidates,
                         dataset.schema)
        results[name] = ranks

    rows = []
    for group, mask in groups.items():
        if mask.sum() == 0:
            continue
        sasrec = MetricReport.from_ranks(results["SASRec"][mask], ks=(10,))["NDCG@10"]
        missl = MetricReport.from_ranks(results["MISSL"][mask], ks=(10,))["NDCG@10"]
        gain = (missl - sasrec) / max(sasrec, 1e-9) * 100
        rows.append([group, int(mask.sum()), sasrec, missl, f"{gain:+.1f}%"])

    print()
    print(format_table(["group", "users", "SASRec NDCG@10", "MISSL NDCG@10",
                        "relative gain"], rows))
    print("\nExpected shape (at full scale, averaged over seeds): MISSL's relative")
    print("gain concentrates on the cold group — auxiliary views/carts substitute")
    print("for the missing purchase history.  Individual groups at this demo scale")
    print("hold only a few dozen users, so expect noise.")


if __name__ == "__main__":
    main()
