"""Quickstart: train MISSL on a synthetic Taobao-like corpus and rank items.

Runs in under a minute on a laptop CPU:

    python examples/quickstart.py

Walks the full public API surface: generate data → preprocess → split →
build the hypergraph → train with early stopping → evaluate → inspect one
user's recommendations.
"""

import numpy as np

from repro.core import MISSL, MISSLConfig
from repro.data import (collate, generate, k_core_filter, leave_one_out_split,
                        taobao_like)
from repro.eval import CandidateSets, evaluate_ranking
from repro.hypergraph import build_hypergraph
from repro.nn.tensor import no_grad
from repro.train import TrainConfig, Trainer


def main() -> None:
    # 1. Data: a scaled-down Taobao-like multi-behavior corpus.
    dataset = k_core_filter(generate(taobao_like(scale=0.3), seed=42))
    print(f"dataset: {dataset.num_users} users, {dataset.num_items} items, "
          f"{dataset.num_interactions} interactions")
    print(f"behaviors: {dataset.schema.behaviors} (target={dataset.schema.target})")

    # 2. Leave-one-out split: last buy = test, second-to-last = validation.
    split = leave_one_out_split(dataset, max_len=30)
    print(f"split: {split.summary()}")

    # 3. The multi-behavior hypergraph (training interactions only).
    graph = build_hypergraph(dataset)
    print(f"hypergraph: {graph.num_nodes} nodes, {graph.num_edges} hyperedges")

    # 4. Model + training with early stopping on validation NDCG@10.
    config = MISSLConfig(dim=32, num_interests=4, max_len=30)
    model = MISSL(dataset.num_items, dataset.schema, graph, config, seed=0)
    print(f"MISSL parameters: {model.num_parameters():,}")
    trainer = Trainer(model, split, TrainConfig(epochs=12, patience=3, batch_size=128))
    history = trainer.fit(verbose=True)
    print(f"best epoch: {history.best_epoch} "
          f"(valid NDCG@10 = {history.best_metric:.4f})")

    # 5. Test evaluation under the fixed 99-negative protocol.
    candidates = CandidateSets(dataset, split.test, num_negatives=99, seed=7)
    report = evaluate_ranking(model, split.test, candidates, dataset.schema)
    print(f"test: {report}")

    # 6. Inspect one user's ranking.
    example = split.test[0]
    batch = collate([example], dataset.schema)
    row = candidates.slice(np.array([0]))
    with no_grad():
        scores = model.score_candidates(batch, row).numpy()[0]
    order = np.argsort(-scores)
    ranked = row[0][order]
    position = int(np.flatnonzero(ranked == example.target)[0])
    print(f"user {example.user}: true next buy = item {example.target}, "
          f"ranked #{position + 1} of {len(ranked)}")
    print(f"top-5 among sampled candidates: {ranked[:5].tolist()}")

    # 7. Serving-style API: top-k novel items over the whole catalog.
    from repro.recommend import recommend
    recs = recommend(model, dataset, user=example.user, k=5, max_len=30)
    print("serving top-5 (full catalog, seen items excluded):",
          [(r.item, round(r.score, 2)) for r in recs])


if __name__ == "__main__":
    main()
