"""Scenario: head-to-head model bake-off on one dataset.

Reproduces a single-dataset slice of the paper's overall comparison (T2):
every model family — popularity floor, single-behavior sequence models,
multi-interest models, multi-behavior models, and MISSL — trained under one
pipeline on identical inputs and evaluated on identical candidate sets.

    python examples/compare_models.py [--preset taobao|tmall|yelp] [--scale 0.4]
"""

import argparse

from repro.experiments import (MODEL_FAMILIES, ExperimentContext, build_model,
                               train_and_evaluate)
from repro.experiments.runners import T2_MODELS
from repro.utils import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="taobao", choices=["taobao", "tmall", "yelp"])
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--include-nonsequential", action="store_true",
                        help="also run BPR-MF and LightGCN (outside the paper's "
                             "baseline table; see experiment A3 in EXPERIMENTS.md "
                             "for why graph CF is unusually strong on this "
                             "synthetic substrate)")
    args = parser.parse_args()

    print(f"building {args.preset} context (scale={args.scale}) ...")
    context = ExperimentContext.build(args.preset, scale=args.scale, seed=args.seed)
    stats = context.dataset.stats()
    print(f"{stats.num_users} users / {stats.num_items} items / "
          f"{stats.num_interactions} events\n")

    names = list(T2_MODELS)
    if args.include_nonsequential:
        names = ["BPRMF", "LightGCN"] + names
    rows = []
    for name in names:
        model = build_model(name, context, dim=args.dim, seed=args.seed)
        report, seconds = train_and_evaluate(model, context, epochs=args.epochs,
                                             seed=args.seed)
        rows.append([MODEL_FAMILIES[name], name, report["HR@10"], report["NDCG@10"],
                     report["MRR"], f"{seconds:.1f}s"])
        print(f"  {name:10s} done ({seconds:.1f}s)")

    rows.sort(key=lambda r: r[3], reverse=True)
    print()
    print(format_table(["family", "model", "HR@10", "NDCG@10", "MRR", "time"], rows))
    best = rows[0][1]
    print(f"\nbest model by NDCG@10: {best}")


if __name__ == "__main__":
    main()
