"""Serving demo: freeze a trained MISSL and answer live requests.

Runs in under a minute on a laptop CPU:

    python examples/serving_demo.py

Walks the online subsystem end to end: train → export a frozen artifact →
load it without the autodiff graph → serve micro-batched requests with an
exact index (provably identical to offline ``recommend``) → stream a new
event and watch the answer change → switch to the approximate IVF index and
measure its recall.
"""

import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.core import MISSL, MISSLConfig
from repro.data import generate, k_core_filter, leave_one_out_split, taobao_like
from repro.hypergraph import build_hypergraph
from repro.recommend import recommend
from repro.serve import (HistoryStore, RecommenderService, export_artifact,
                         load_artifact)
from repro.train import TrainConfig, Trainer


def main() -> None:
    # 1. Train a small model (see examples/quickstart.py for this part).
    dataset = k_core_filter(generate(taobao_like(scale=0.25), seed=42))
    split = leave_one_out_split(dataset, max_len=30)
    model = MISSL(dataset.num_items, dataset.schema, build_hypergraph(dataset),
                  MISSLConfig(dim=32, num_interests=4, max_len=30), seed=0)
    Trainer(model, split, TrainConfig(epochs=6, patience=2, batch_size=128)).fit()

    # 2. Freeze it.  The artifact carries the hypergraph-enhanced item table
    #    and the request-path weights — nothing else; loading needs neither
    #    the model class nor the hypergraph.
    path = Path(tempfile.mkdtemp(prefix="repro-serving-")) / "model.npz"
    export_artifact(model, path)
    artifact = load_artifact(path)
    print(f"artifact: {path.stat().st_size / 1024:.0f} KiB, "
          f"{artifact.num_items} items, dim {artifact.dim}, "
          f"{artifact.num_interests} interests per user")

    # 3. Serve with the exact backend: answers match offline recommend().
    history = HistoryStore.from_dataset(dataset)
    user = history.users[0]
    with RecommenderService(artifact, history, index_backend="exact") as service:
        served = service.recommend(user, k=5)
        offline = recommend(model, dataset, user, k=5)
        assert [r.item for r in served] == [r.item for r in offline]
        print(f"\nuser {user} top-5 (served == offline): "
              f"{[r.item for r in served]}")

        # 4. Stream an event: the user's version bumps, their cached
        #    interests drop, and the item disappears from their results.
        novel = served[0].item
        service.append_event(user, novel, dataset.schema.behaviors[0])
        after = service.recommend(user, k=5)
        print(f"after viewing item {novel}: {[r.item for r in after]}")
        assert novel not in [r.item for r in after]

        # 5. Concurrent clients get micro-batched transparently.
        users = history.users[:64]
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda u: service.recommend(u, k=5), users))
        print(f"\n{service.report()}")

    # 6. The approximate backend: probe a few k-means cells per interest,
    #    shadow-score every request against exact to measure recall.
    with RecommenderService(artifact, HistoryStore.from_dataset(dataset),
                            index_backend="ivf", index_options={"seed": 1},
                            recall_probe_every=1) as service:
        for u in history.users[:32]:
            service.recommend(u, k=10)
        stats = service.stats()
        index = stats["index"]
        print(f"\nIVF ({index['nlist']} cells, nprobe={index['nprobe']}): "
              f"recall@10 = {stats['recall']['mean']:.3f} "
              f"over {stats['recall']['samples']} probed requests")


if __name__ == "__main__":
    main()
