"""Scenario: running the pipeline on a real interaction log.

The benchmark suite uses synthetic corpora (no network access to the public
dumps), but the library is built for the real files.  This script shows the
full path: a UserBehavior-format CSV on disk → loader → k-core filtering →
split → train → evaluate.  For the demo it first *writes* a small CSV in
that exact format (exported from the generator), standing in for the file
you would download from Tianchi.

    python examples/real_data_pipeline.py
"""

import csv
import tempfile
from pathlib import Path

from repro.core import MISSL, MISSLConfig
from repro.data import (TAOBAO_SCHEMA, generate, k_core_filter, leave_one_out_split,
                        load_user_behavior_csv, taobao_like)
from repro.eval import CandidateSets, evaluate_ranking
from repro.hypergraph import build_hypergraph
from repro.train import TrainConfig, Trainer

BEHAVIOR_CODES = {"view": "pv", "cart": "cart", "fav": "fav", "buy": "buy"}


def export_user_behavior_csv(path: Path) -> None:
    """Write a UserBehavior-format file: user,item,category,behavior,timestamp."""
    source = generate(taobao_like(scale=0.25), seed=7)
    clusters = source.item_clusters
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for event in source.interactions():
            category = int(clusters[event.item - 1])
            writer.writerow([event.user, event.item, category,
                             BEHAVIOR_CODES[event.behavior], event.timestamp])
    print(f"wrote {path} ({path.stat().st_size // 1024} KiB)")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "UserBehavior_sample.csv"
        export_user_behavior_csv(raw_path)

        # This is the line you would run on the real download:
        dataset = load_user_behavior_csv(raw_path, TAOBAO_SCHEMA)
        print(f"loaded: {dataset.num_users} users, {dataset.num_items} items, "
              f"{dataset.num_interactions} events")

        dataset = k_core_filter(dataset, min_user_targets=3, min_item_interactions=3)
        split = leave_one_out_split(dataset, max_len=30)
        graph = build_hypergraph(dataset)
        print(f"after 3-core: {dataset.num_users} users, {dataset.num_items} items; "
              f"split {split.summary()}")

        model = MISSL(dataset.num_items, dataset.schema, graph,
                      MISSLConfig(dim=32, num_interests=4), seed=0)
        Trainer(model, split, TrainConfig(epochs=8, patience=3)).fit()

        candidates = CandidateSets(dataset, split.test, num_negatives=99, seed=3)
        report = evaluate_ranking(model, split.test, candidates, dataset.schema)
        print(f"test: {report}")


if __name__ == "__main__":
    main()
