"""Fast-vs-reference equivalence and gradient checks for the scatter kernels.

The fast backend (bincount / sort + reduceat, optional precomputed
``SegmentPlan``) must agree with the retained seed kernels (``np.add.at`` /
``np.maximum.at``) on every shape class the model produces: duplicate
indices, empty update sets, empty segments, padding rows, and negative
indices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hypergraph.ops import segment_softmax, segment_sum
from repro.nn.scatter import (SegmentPlan, get_scatter_backend, scatter_add_1d,
                              scatter_add_rows, scatter_backend, segment_max_1d,
                              set_scatter_backend)
from repro.nn.tensor import Tensor
from repro.utils.gradcheck import gradcheck


def _both_backends(fn):
    """Run ``fn()`` under each backend and return (fast, reference)."""
    with scatter_backend("fast"):
        fast = fn()
    with scatter_backend("reference"):
        reference = fn()
    return fast, reference


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown scatter backend"):
            set_scatter_backend("turbo")

    def test_context_manager_restores(self):
        before = get_scatter_backend()
        with scatter_backend("reference"):
            assert get_scatter_backend() == "reference"
        assert get_scatter_backend() == before


class TestScatterAddRows:
    @pytest.mark.parametrize("num_updates,dim,num_rows", [
        (0, 4, 6),       # empty update set
        (1, 3, 1),       # single row
        (7, 5, 3),       # heavy duplicates
        (64, 8, 64),     # mostly unique
        (50, 2, 4),      # all rows hit many times
    ])
    def test_matches_reference_2d(self, rng, num_updates, dim, num_rows):
        indices = rng.integers(0, num_rows, size=num_updates)
        updates = rng.standard_normal((num_updates, dim))
        fast, reference = _both_backends(
            lambda: scatter_add_rows(indices, updates, num_rows))
        assert fast.shape == reference.shape == (num_rows, dim)
        np.testing.assert_allclose(fast, reference, atol=1e-12)

    def test_padding_row_duplicates(self, rng):
        # Embedding backward repeatedly hits row 0 (the padding item).
        indices = np.zeros(20, dtype=np.int64)
        updates = rng.standard_normal((20, 4))
        fast, reference = _both_backends(
            lambda: scatter_add_rows(indices, updates, 5))
        np.testing.assert_allclose(fast, reference, atol=1e-12)
        assert np.all(fast[1:] == 0.0)

    def test_negative_indices_wrap(self, rng):
        indices = np.array([-1, 0, -3, 2])
        updates = rng.standard_normal((4, 3))
        fast, reference = _both_backends(
            lambda: scatter_add_rows(indices, updates, 4))
        np.testing.assert_allclose(fast, reference, atol=1e-12)
        np.testing.assert_allclose(fast[3], updates[0], atol=1e-12)

    def test_multi_dim_indices_flatten(self, rng):
        # take() backward reshapes (B, L, D) grads to rows; 2-D index arrays
        # must flatten consistently.
        indices = rng.integers(0, 6, size=(4, 5))
        updates = rng.standard_normal((20, 3))
        fast, reference = _both_backends(
            lambda: scatter_add_rows(indices, updates, 6))
        np.testing.assert_allclose(fast, reference, atol=1e-12)

    def test_dtype_preserved(self, rng):
        indices = rng.integers(0, 4, size=10)
        updates = rng.standard_normal((10, 2)).astype(np.float32)
        out = scatter_add_rows(indices, updates, 4)
        assert out.dtype == np.float32

    def test_plan_matches_planless(self, rng):
        indices = rng.integers(0, 9, size=40)
        updates = rng.standard_normal((40, 6))
        plan = SegmentPlan(indices, 9)
        with_plan = scatter_add_rows(indices, updates, 9, plan=plan)
        without = scatter_add_rows(indices, updates, 9)
        np.testing.assert_allclose(with_plan, without, atol=1e-12)


class TestScatterAdd1D:
    def test_matches_reference(self, rng):
        indices = rng.integers(0, 8, size=50)
        values = rng.standard_normal(50)
        fast, reference = _both_backends(
            lambda: scatter_add_1d(indices, values, 8))
        np.testing.assert_allclose(fast, reference, atol=1e-12)

    def test_float32_dtype_roundtrip(self, rng):
        # bincount computes in float64 internally; the result must come back
        # in the caller's dtype.
        values = rng.standard_normal(10).astype(np.float32)
        out = scatter_add_1d(np.arange(10) % 3, values, 3)
        assert out.dtype == np.float32

    def test_empty(self):
        out = scatter_add_1d(np.zeros(0, dtype=np.int64), np.zeros(0), 5)
        assert out.shape == (5,)
        assert np.all(out == 0.0)


class TestSegmentMax1D:
    def test_matches_reference_with_empty_segments(self, rng):
        # Segment 2 of 5 receives no entries and must keep the fill value.
        segment_ids = np.array([0, 0, 1, 3, 3, 3, 4])
        values = rng.standard_normal(7)
        fast, reference = _both_backends(
            lambda: segment_max_1d(values, segment_ids, 5))
        np.testing.assert_array_equal(fast, reference)
        assert fast[2] == -np.inf

    def test_custom_fill(self):
        out = segment_max_1d(np.array([1.0, 2.0]), np.array([0, 0]), 3, fill=0.0)
        np.testing.assert_array_equal(out, [2.0, 0.0, 0.0])

    def test_plan_matches_planless(self, rng):
        segment_ids = rng.integers(0, 6, size=30)
        values = rng.standard_normal(30)
        plan = SegmentPlan(segment_ids, 6)
        np.testing.assert_array_equal(
            segment_max_1d(values, segment_ids, 6, plan=plan),
            segment_max_1d(values, segment_ids, 6))


class TestSegmentPlan:
    def test_sorted_ids_skip_gather(self):
        plan = SegmentPlan(np.array([0, 0, 1, 2, 2]), 3)
        assert plan.order is None

    def test_unsorted_ids_get_stable_order(self):
        plan = SegmentPlan(np.array([2, 0, 1, 0]), 3)
        assert plan.order is not None
        np.testing.assert_array_equal(plan.sorted_ids, [0, 0, 1, 2])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            SegmentPlan(np.array([0, 3]), 3)

    def test_mismatched_plan_rejected_by_ops(self, rng):
        values = Tensor(rng.standard_normal((4, 2)))
        plan = SegmentPlan(np.array([0, 1]), 2)
        with pytest.raises(ValueError, match="does not match"):
            segment_sum(values, np.array([0, 1, 0, 1]), 2, plan=plan)


class TestSegmentOpsEquivalence:
    """Tensor-level segment ops: fast and reference paths agree end to end."""

    def _segment_case(self, rng, with_empty=True):
        # Segment 1 is left empty to exercise the reduceat fill path.
        segment_ids = np.array([0, 0, 2, 3, 3, 3, 2, 4])
        num_segments = 5 if with_empty else 4
        values = rng.standard_normal((8, 3))
        return segment_ids, num_segments, values

    def test_segment_sum_forward_backward(self, rng):
        segment_ids, num_segments, values = self._segment_case(rng)

        def run():
            x = Tensor(values.copy(), requires_grad=True)
            out = segment_sum(x, segment_ids, num_segments)
            (out * out).sum().backward()
            return out.data.copy(), x.grad.copy()

        (fast_out, fast_grad), (ref_out, ref_grad) = _both_backends(run)
        np.testing.assert_allclose(fast_out, ref_out, atol=1e-5)
        np.testing.assert_allclose(fast_grad, ref_grad, atol=1e-5)

    def test_segment_softmax_forward_backward(self, rng):
        segment_ids, num_segments, values = self._segment_case(rng)
        scores = values[:, 0]

        def run():
            x = Tensor(scores.copy(), requires_grad=True)
            out = segment_softmax(x, segment_ids, num_segments)
            (out * Tensor(np.arange(8.0))).sum().backward()
            return out.data.copy(), x.grad.copy()

        (fast_out, fast_grad), (ref_out, ref_grad) = _both_backends(run)
        np.testing.assert_allclose(fast_out, ref_out, atol=1e-5)
        np.testing.assert_allclose(fast_grad, ref_grad, atol=1e-5)

    def test_segment_softmax_normalizes_with_plan(self, rng):
        segment_ids = rng.integers(0, 4, size=32)
        plan = SegmentPlan(segment_ids, 4)
        x = Tensor(rng.standard_normal(32))
        out = segment_softmax(x, segment_ids, 4, plan=plan)
        sums = scatter_add_1d(segment_ids, out.data, 4)
        np.testing.assert_allclose(sums, np.ones(4), atol=1e-5)


class TestGradchecks:
    """fp64 finite-difference checks of the scatter-free backward kernels."""

    @pytest.mark.parametrize("backend", ["fast", "reference"])
    def test_segment_sum(self, float64, rng, backend):
        segment_ids = np.array([0, 2, 2, 0, 3])  # segment 1 empty
        x = Tensor(rng.standard_normal((5, 2)), requires_grad=True)
        with scatter_backend(backend):
            assert gradcheck(lambda t: segment_sum(t, segment_ids, 4), [x])

    @pytest.mark.parametrize("backend", ["fast", "reference"])
    def test_segment_sum_with_plan(self, float64, rng, backend):
        segment_ids = rng.integers(0, 3, size=7)
        plan = SegmentPlan(segment_ids, 3)
        x = Tensor(rng.standard_normal((7, 2)), requires_grad=True)
        with scatter_backend(backend):
            assert gradcheck(
                lambda t: segment_sum(t, segment_ids, 3, plan=plan), [x])

    @pytest.mark.parametrize("backend", ["fast", "reference"])
    def test_segment_softmax(self, float64, rng, backend):
        segment_ids = np.array([0, 0, 2, 2, 2, 3])  # segment 1 empty
        x = Tensor(rng.standard_normal(6), requires_grad=True)
        weights = Tensor(rng.standard_normal(6))
        with scatter_backend(backend):
            assert gradcheck(
                lambda t: segment_softmax(t, segment_ids, 4) * weights, [x])

    @pytest.mark.parametrize("backend", ["fast", "reference"])
    def test_take_backward(self, float64, rng, backend):
        # Embedding-style gather: 2-D indices with duplicates and the padding
        # row 0 hit repeatedly.
        indices = np.array([[0, 2, 0], [3, 2, 0]])
        x = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        with scatter_backend(backend):
            assert gradcheck(lambda t: t.take(indices, axis=0), [x])

    @pytest.mark.parametrize("backend", ["fast", "reference"])
    def test_getitem_backward(self, float64, rng, backend):
        indices = np.array([1, 1, 0, 3, 1])
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        with scatter_backend(backend):
            assert gradcheck(lambda t: t[indices], [x])


class TestGatherBackwardEquivalence:
    def test_take_grad_matches_reference(self, rng):
        indices = rng.integers(0, 10, size=(6, 4))

        def run():
            x = Tensor(rng_data.copy(), requires_grad=True)
            out = x.take(indices, axis=0)
            (out * out).sum().backward()
            return x.grad.copy()

        rng_data = rng.standard_normal((10, 5))
        fast, reference = _both_backends(run)
        np.testing.assert_allclose(fast, reference, atol=1e-5)

    def test_getitem_grad_matches_reference(self, rng):
        indices = np.array([0, 0, 0, 2, 5, 5])

        def run():
            x = Tensor(rng_data.copy(), requires_grad=True)
            (x[indices] * 3.0).sum().backward()
            return x.grad.copy()

        rng_data = rng.standard_normal((6, 3))
        fast, reference = _both_backends(run)
        np.testing.assert_allclose(fast, reference, atol=1e-5)
